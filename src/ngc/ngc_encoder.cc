#include "ngc/ngc_encoder.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "codec/deblock.h"
#include "codec/interp.h"
#include "codec/me.h"
#include "codec/refplane.h"
#include "codec/syntax.h"
#include "codec/transform.h"
#include "kernels/kernel_ops.h"
#include "ngc/ngc_bitstream.h"
#include "ngc/ngc_intra.h"
#include "ngc/ngc_residual.h"
#include "ngc/transform8.h"
#include "obs/clock.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace vbench::ngc {

namespace {

using codec::ByteBuffer;
using codec::EncodeResult;
using codec::FrameStats;
using codec::FrameType;
using codec::MbGrid;
using codec::MeContext;
using codec::MeResult;
using codec::MotionVector;
using codec::RateController;
using codec::RefFrame;
using codec::RefPlane;
using codec::SearchKind;
using codec::SyntaxWriter;
using uarch::KernelId;
using video::Frame;
using video::Plane;
using video::Video;

namespace ctx = codec::ctx;

/** Search/tool parameters resolved from (profile, speed). */
struct NgcTools {
    SearchKind search = SearchKind::Hex;
    int range = 16;
    bool subpel = true;
    int subpel_iters = 2;
    int refs = 2;
    int max_depth = 2;       ///< 0: SB only, 1: +16, 2: +8
    double lambda_scale = 1.0;
};

NgcTools
toolsFor(NgcProfile profile, int speed)
{
    NgcTools t;
    switch (std::clamp(speed, 0, 2)) {
      case 0:
        t.range = 32;
        t.subpel_iters = 3;
        t.refs = 3;
        t.max_depth = 2;
        break;
      case 1:
        t.range = 16;
        t.subpel_iters = 2;
        t.refs = 2;
        t.max_depth = 2;
        break;
      case 2:
        t.range = 8;
        t.subpel_iters = 1;
        t.refs = 1;
        t.max_depth = 1;
        break;
    }
    if (profile == NgcProfile::Vp9Like) {
        // VP9-like: even deeper search, slightly lower lambda (spends
        // bits for quality), exhaustive at the slowest speed.
        t.lambda_scale = 0.9;
        if (speed == 0) {
            t.search = SearchKind::Full;
            t.range = 8;
            t.refs = 3;
        }
    }
    return t;
}

/** One node of the partition plan. */
struct CuPlan {
    bool split = false;
    uint32_t cost = UINT32_MAX;
    MeResult me;
    int ref = 0;
    uint32_t inter_cost = UINT32_MAX;
    NgcIntraMode intra_mode = NgcIntraMode::Dc;
    uint32_t intra_cost = UINT32_MAX;
    int child[4] = {-1, -1, -1, -1};
};

/** Sequence encoder for one pass. */
class NgcSequencer
{
  public:
    NgcSequencer(const NgcConfig &config, const NgcTools &tools,
                 const Video &source, RateController &rate)
        : config_(config), tools_(tools), source_(source), rate_(rate),
          probe_(config.probe),
          tracer_(config.tracer ? config.tracer : obs::globalTracer()),
          acc_(tracer_ ? &accum_ : nullptr),
          padded_w_((source.width() + kSbSize - 1) & ~(kSbSize - 1)),
          padded_h_((source.height() + kSbSize - 1) & ~(kSbSize - 1)),
          sb_cols_(padded_w_ / kSbSize), sb_rows_(padded_h_ / kSbSize)
    {
    }

    EncodeResult
    run()
    {
        EncodeResult result;
        NgcStreamHeader header;
        header.width = source_.width();
        header.height = source_.height();
        toRational(source_.fps(), header.fps_num, header.fps_den);
        header.frame_count = static_cast<uint32_t>(source_.frameCount());
        header.profile = config_.profile;
        header.num_refs = static_cast<uint32_t>(tools_.refs);
        writeNgcHeader(result.stream, header);

        for (int i = 0; i < source_.frameCount(); ++i) {
            const uint64_t frame_start = tracer_ ? obs::nowNs() : 0;
            if (acc_)
                accum_.reset();
            const FrameType type = frameTypeFor(i);
            int qp;
            {
                obs::ScopedStage rc(acc_, obs::Stage::RateControl);
                qp = rate_.frameQp(type, i);
            }
            FrameStats stats;
            const ByteBuffer payload =
                encodeFrame(source_.frame(i), type, qp, stats);
            codec::appendU32(result.stream,
                             static_cast<uint32_t>(payload.size() + 1));
            result.stream.push_back(codec::packFrameByte(type, qp));
            result.stream.insert(result.stream.end(), payload.begin(),
                                 payload.end());
            stats.type = type;
            stats.qp = qp;
            stats.bytes = payload.size() + 5;
            result.frames.push_back(stats);
            {
                obs::ScopedStage rc(acc_, obs::Stage::RateControl);
                rate_.frameDone(type, (payload.size() + 5) * 8.0);
            }
            if (tracer_)
                tracer_->addFrame(obs::Track::NgcEncode, i, frame_start,
                                  obs::nowNs(), accum_);
        }
        return result;
    }

  private:
    static void
    toRational(double fps, uint32_t &num, uint32_t &den)
    {
        if (std::abs(fps - std::round(fps)) < 1e-9) {
            num = static_cast<uint32_t>(std::lround(fps));
            den = 1;
        } else {
            num = static_cast<uint32_t>(std::lround(fps * 1000));
            den = 1000;
        }
    }

    FrameType
    frameTypeFor(int index) const
    {
        if (index == 0)
            return FrameType::I;
        if (config_.gop > 0 && index % config_.gop == 0)
            return FrameType::I;
        return FrameType::P;
    }

    ByteBuffer
    encodeFrame(const Frame &original, FrameType type, int qp,
                FrameStats &stats)
    {
        {
            obs::ScopedStage setup(acc_, obs::Stage::FrameSetup);
            src_ = padFrame(original);
            if (type == FrameType::I)
                refs_.clear();
            recon_ = Frame(padded_w_, padded_h_);
            cells_ = CellGrid(padded_w_ / 8, padded_h_ / 8);
            qp_ = qp;
            lambda_sad_ = codec::sadLambda(qp) * tools_.lambda_scale;
        }

        ByteBuffer payload;
        codec::ArithSyntaxWriter writer(payload, nctx::kNumContexts);

        double bits_done = 0;
        for (int sby = 0; sby < sb_rows_; ++sby) {
            for (int sbx = 0; sbx < sb_cols_; ++sbx) {
                int root;
                {
                    obs::ScopedStage ps(acc_,
                                        obs::Stage::PartitionSearch);
                    arena_.clear();
                    root = planCu(sbx * kSbSize, sby * kSbSize, kSbSize,
                                  0, type);
                }
                encodeTree(root, sbx * kSbSize, sby * kSbSize, kSbSize, 0,
                           type, writer, stats);
                if (probe_) {
                    const double bits = writer.bitsWritten();
                    probe_->record(
                        KernelId::EntropyArith,
                        std::max<uint64_t>(
                            1, static_cast<uint64_t>(bits - bits_done)),
                        entropy_hash_, 64);
                    bits_done = bits;
                }
            }
        }
        {
            obs::ScopedStage ec(acc_, obs::Stage::EntropyCoding);
            writer.finish();
        }

        if (probe_) {
            probe_->record(KernelId::RateControl,
                           static_cast<uint64_t>(sb_cols_) * sb_rows_ * 4);
        }

        {
            obs::ScopedStage db(acc_, obs::Stage::Deblock);
            deblockMapped();
        }

        {
            obs::ScopedStage setup(acc_, obs::Stage::FrameSetup);
            refs_.push_front(RefFrame{RefPlane(recon_.y()),
                                      RefPlane(recon_.u()),
                                      RefPlane(recon_.v())});
            while (static_cast<int>(refs_.size()) >
                   std::max(1, tools_.refs))
                refs_.pop_back();
        }
        return payload;
    }

    Frame
    padFrame(const Frame &src) const
    {
        Frame out(padded_w_, padded_h_);
        video::padPlaneInto(src.y(), out.y());
        video::padPlaneInto(src.u(), out.u());
        video::padPlaneInto(src.v(), out.v());
        if (probe_) {
            probe_->record(KernelId::FrameCopy, out.pixelCount() / 64);
        }
        return out;
    }

    /** Map 8x8 cell info onto the 16x16 deblock grid and filter. */
    void
    deblockMapped()
    {
        MbGrid grid(padded_w_ / 16, padded_h_ / 16);
        for (int mby = 0; mby < grid.rows(); ++mby) {
            for (int mbx = 0; mbx < grid.cols(); ++mbx) {
                codec::MbInfo &info = grid.at(mbx, mby);
                bool any_intra = false;
                bool any_coded = false;
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        const CellInfo &cell =
                            cells_.at(mbx * 2 + dx, mby * 2 + dy);
                        any_intra |= cell.mode == CuMode::Intra;
                        any_coded |= cell.coded;
                    }
                }
                const CellInfo &cell = cells_.at(mbx * 2, mby * 2);
                info.mode = any_intra ? codec::MbMode::Intra
                                      : codec::MbMode::Inter16;
                info.mv = cell.mv;
                info.ref = cell.ref;
                info.qp = static_cast<uint8_t>(qp_);
                info.coded = any_coded;
            }
        }
        codec::deblockFrame(recon_, grid, probe_);
    }

    // ----- Partition planning ---------------------------------------

    /** Plan a CU; returns the arena index. Costs are SAD-domain. */
    int
    planCu(int x, int y, int size, int depth, FrameType type)
    {
        const int idx = static_cast<int>(arena_.size());
        arena_.emplace_back();

        uint32_t intra_tried = 0;
        {
            // Intra estimate on the current reconstruction state.
            uint8_t pred[kSbSize * kSbSize];
            CuPlan &node = arena_[idx];
            for (int m = 0; m < kNgcIntraModes; ++m) {
                const NgcIntraMode mode = static_cast<NgcIntraMode>(m);
                if (!ngcIntraAvailable(mode, x, y))
                    continue;
                ngcIntraPredict(mode, recon_.y(), x, y, size, pred);
                ++intra_tried;
                const uint32_t sad = codec::satdBlock(
                    src_.y().row(y) + x, padded_w_, pred, size, size,
                    size);
                const uint32_t cost = sad +
                    static_cast<uint32_t>(lambda_sad_ * 8) +
                    (type == FrameType::P ? sad / 4 : 0);
                if (cost < node.intra_cost) {
                    node.intra_cost = cost;
                    node.intra_mode = mode;
                }
            }
        }
        if (probe_ && intra_tried > 0)
            probe_->record(KernelId::IntraPredict,
                           intra_tried * size * size / 256 + 1);

        if (type == FrameType::P && !refs_.empty()) {
            const MotionVector pred_mv =
                cellMvPredictor(cells_, x / 8, y / 8);
            for (int r = 0;
                 r < static_cast<int>(refs_.size()) && r < tools_.refs;
                 ++r) {
                MeContext me;
                me.src = &src_.y();
                me.ref = &refs_[r].y;
                me.block_x = x;
                me.block_y = y;
                me.block_w = size;
                me.block_h = size;
                me.pred = pred_mv;
                me.lambda = lambda_sad_;
                me.kind = tools_.search;
                me.range = tools_.range;
                me.subpel = tools_.subpel;
                me.subpel_iters = tools_.subpel_iters;
                me.satd_subpel = true;  // next-gen: always SATD subpel
                me.probe = probe_;
                const MeResult res = codec::motionSearch(me);
                CuPlan &node = arena_[idx];
                const uint32_t cost = res.cost +
                    static_cast<uint32_t>(lambda_sad_ * (r == 0 ? 1 : 3));
                if (cost < node.inter_cost) {
                    node.inter_cost = cost;
                    node.me = res;
                    node.ref = r;
                }
            }
        }

        {
            CuPlan &node = arena_[idx];
            node.cost = std::min(node.intra_cost, node.inter_cost);
        }

        const int max_size_for_depth =
            kSbSize >> tools_.max_depth;  // smallest allowed leaf
        if (size > kMinCu && size > max_size_for_depth) {
            const int half = size / 2;
            int children[4];
            uint32_t split_cost =
                static_cast<uint32_t>(lambda_sad_ * 6);  // tree overhead
            for (int q = 0; q < 4; ++q) {
                children[q] = planCu(x + (q & 1) * half,
                                     y + (q >> 1) * half, half, depth + 1,
                                     type);
                split_cost += arena_[children[q]].cost;
            }
            CuPlan &node = arena_[idx];
            if (split_cost < node.cost) {
                node.split = true;
                node.cost = split_cost;
                for (int q = 0; q < 4; ++q)
                    node.child[q] = children[q];
            }
            if (probe_)
                probe_->record(KernelId::ModeDecision, 2,
                               node.split ? 1 : 0, 1);
        }
        return idx;
    }

    // ----- Encoding -------------------------------------------------

    void
    encodeTree(int idx, int x, int y, int size, int depth, FrameType type,
               SyntaxWriter &writer, FrameStats &stats)
    {
        const CuPlan &node = arena_[idx];
        if (size > kMinCu) {
            writer.bit(node.split ? 1 : 0,
                       nctx::kSplit + std::min(depth, 1));
        }
        if (node.split) {
            const int half = size / 2;
            for (int q = 0; q < 4; ++q) {
                encodeTree(node.child[q], x + (q & 1) * half,
                           y + (q >> 1) * half, half, depth + 1, type,
                           writer, stats);
            }
            return;
        }
        encodeLeaf(node, x, y, size, type, writer, stats);
    }

    void
    encodeLeaf(const CuPlan &node, int x, int y, int size, FrameType type,
               SyntaxWriter &writer, FrameStats &stats)
    {
        if (probe_)
            probe_->record(KernelId::Dispatch, size * size / 256 + 1);

        const MotionVector pred_mv = cellMvPredictor(cells_, x / 8, y / 8);
        const bool inter_valid =
            type == FrameType::P && node.inter_cost != UINT32_MAX;

        // Re-evaluate intra against the true reconstruction (the plan
        // estimate may have used stale in-SB neighbors).
        NgcIntraMode intra_mode = NgcIntraMode::Dc;
        uint32_t intra_cost = UINT32_MAX;
        {
            obs::ScopedStage intra_stage(acc_, obs::Stage::IntraDecision);
            uint8_t pred[kSbSize * kSbSize];
            for (int m = 0; m < kNgcIntraModes; ++m) {
                const NgcIntraMode mode = static_cast<NgcIntraMode>(m);
                if (!ngcIntraAvailable(mode, x, y))
                    continue;
                ngcIntraPredict(mode, recon_.y(), x, y, size, pred);
                const uint32_t sad = codec::satdBlock(
                    src_.y().row(y) + x, padded_w_, pred, size, size,
                    size);
                const uint32_t cost = sad +
                    static_cast<uint32_t>(lambda_sad_ * 8) +
                    (type == FrameType::P ? sad / 4 : 0);
                if (cost < intra_cost) {
                    intra_cost = cost;
                    intra_mode = mode;
                }
            }
        }

        const bool use_inter =
            inter_valid && node.inter_cost <= intra_cost;
        if (probe_)
            probe_->record(KernelId::ModeDecision, 2, use_inter ? 1 : 0,
                           1);

        // Predictions and residuals. Declarations stay outside the
        // timing scope; the syntax and reconstruction sections below
        // consume them.
        uint8_t pred_y[kSbSize * kSbSize];
        uint8_t pred_u[16 * 16];
        uint8_t pred_v[16 * 16];
        const int csize = size / 2;
        const int cx = x / 2;
        const int cy = y / 2;
        MotionVector mv{};
        int ref = 0;
        const bool intra = !use_inter;
        const int tus = size / 8;
        // Chroma uses hierarchical TUs when the chroma CU is at least 8
        // wide, plain 4x4 otherwise.
        const int ctus = csize >= 8 ? csize / 8 : 0;
        int16_t dc_y[16][4];
        int16_t ac_y[16][64];
        int16_t dc_c[2][4][4];
        int16_t ac_c[2][4][64];
        int16_t levels4_c[2][16];
        int nonzero = 0;
        // Manual start/stop (no early return below) keeps the large
        // prediction+residual section at its natural indentation.
        const uint64_t tq_start = acc_ ? obs::nowNs() : 0;
        if (use_inter) {
            mv = node.me.mv;
            ref = node.ref;
            codec::motionCompensate(refs_[ref].y, x, y, mv, size, size,
                                    pred_y);
            const MotionVector cmv{static_cast<int16_t>(mv.x >> 1),
                                   static_cast<int16_t>(mv.y >> 1)};
            codec::motionCompensate(refs_[ref].u, cx, cy, cmv, csize,
                                    csize, pred_u);
            codec::motionCompensate(refs_[ref].v, cx, cy, cmv, csize,
                                    csize, pred_v);
        } else {
            ngcIntraPredict(intra_mode, recon_.y(), x, y, size, pred_y);
            const NgcIntraMode cmode =
                ngcIntraAvailable(intra_mode, cx, cy) ? intra_mode
                                                      : NgcIntraMode::Dc;
            ngcIntraPredict(cmode, recon_.u(), cx, cy, csize, pred_u);
            ngcIntraPredict(cmode, recon_.v(), cx, cy, csize, pred_v);
            ++stats.intra_mbs;
        }

        // Residuals.
        for (int ty = 0; ty < tus; ++ty) {
            for (int tx = 0; tx < tus; ++tx) {
                int16_t residual[64];
                kernels::ops().diffBlock(
                    src_.y().row(y + ty * 8) + x + tx * 8,
                    src_.y().width(), pred_y + ty * 8 * size + tx * 8,
                    size, residual, 8, 8, 8);
                nonzero += forwardTransform8x8(residual,
                                               dc_y[ty * tus + tx],
                                               ac_y[ty * tus + tx], qp_,
                                               intra);
            }
        }

        for (int plane = 0; plane < 2; ++plane) {
            const Plane &splane = plane == 0 ? src_.u() : src_.v();
            const uint8_t *pred_c = plane == 0 ? pred_u : pred_v;
            if (ctus > 0) {
                for (int ty = 0; ty < ctus; ++ty) {
                    for (int tx = 0; tx < ctus; ++tx) {
                        int16_t residual[64];
                        kernels::ops().diffBlock(
                            splane.row(cy + ty * 8) + cx + tx * 8,
                            splane.width(),
                            pred_c + ty * 8 * csize + tx * 8, csize,
                            residual, 8, 8, 8);
                        nonzero += forwardTransform8x8(
                            residual, dc_c[plane][ty * ctus + tx],
                            ac_c[plane][ty * ctus + tx], qp_, intra);
                    }
                }
            } else {
                int16_t residual[16];
                kernels::ops().diffBlock(splane.row(cy) + cx,
                                         splane.width(), pred_c, 4,
                                         residual, 4, 4, 4);
                int32_t coefs[16];
                codec::forwardTransform4x4(residual, coefs);
                nonzero += codec::quantize4x4(coefs, levels4_c[plane],
                                              qp_, intra);
            }
        }
        if (probe_) {
            probe_->record(KernelId::TransformFwd,
                           static_cast<uint64_t>(size) * size / 16 + 8);
            probe_->record(KernelId::Quant,
                           static_cast<uint64_t>(size) * size / 16 + 8,
                           nonzero != 0, 1);
        }
        if (acc_)
            acc_->add(obs::Stage::TransformQuant,
                      obs::nowNs() - tq_start);

        const bool coded = nonzero != 0;
        const bool skip = use_inter && ref == 0 && mv == pred_mv && !coded;

        // --- Syntax. ---
        {
            obs::ScopedStage ec(acc_, obs::Stage::EntropyCoding);
            if (type == FrameType::P)
                writer.bit(skip ? 1 : 0, nctx::kSkip);
            if (!skip) {
                if (type == FrameType::P)
                    writer.bit(use_inter ? 1 : 0, nctx::kIsInter);
                if (use_inter) {
                    if (tools_.refs > 1)
                        writer.ue(static_cast<uint32_t>(ref),
                                  ctx::kRefIdx, 2);
                    writer.se(mv.x - pred_mv.x, ctx::kMvX, 4);
                    writer.se(mv.y - pred_mv.y, ctx::kMvY, 4);
                } else {
                    writer.ue(static_cast<int>(intra_mode),
                              nctx::kIntraMode, 3);
                }
                for (int t = 0; t < tus * tus; ++t)
                    writeTu8(writer, dc_y[t], ac_y[t], true);
                for (int plane = 0; plane < 2; ++plane) {
                    if (ctus > 0) {
                        for (int t = 0; t < ctus * ctus; ++t)
                            writeTu8(writer, dc_c[plane][t],
                                     ac_c[plane][t], false);
                    } else {
                        codec::writeResidualBlock(writer,
                                                  levels4_c[plane],
                                                  false);
                    }
                }
            } else {
                ++stats.skip_mbs;
            }
        }

        // --- Reconstruction. ---
        {
            obs::ScopedStage rec(acc_, obs::Stage::Reconstruct);
            reconstructLeaf(x, y, size, pred_y, pred_u, pred_v, skip, tus,
                            dc_y, ac_y, ctus, dc_c, ac_c, levels4_c);
        }

        // --- Cell state. ---
        for (int dy = 0; dy < size / 8; ++dy) {
            for (int dx = 0; dx < size / 8; ++dx) {
                CellInfo &cell = cells_.at(x / 8 + dx, y / 8 + dy);
                cell.mode = skip ? CuMode::Skip
                                 : (use_inter ? CuMode::Inter
                                              : CuMode::Intra);
                cell.mv = use_inter ? mv : MotionVector{};
                cell.ref = static_cast<int8_t>(ref);
                cell.coded = coded;
            }
        }

        entropy_hash_ = entropy_hash_ * 0x9E3779B97F4A7C15ull +
            static_cast<uint64_t>(nonzero);
    }

    void
    reconstructLeaf(int x, int y, int size, const uint8_t *pred_y,
                    const uint8_t *pred_u, const uint8_t *pred_v,
                    bool skip, int tus, const int16_t (*dc_y)[4],
                    const int16_t (*ac_y)[64], int ctus,
                    const int16_t (*dc_c)[4][4],
                    const int16_t (*ac_c)[4][64],
                    const int16_t (*levels4_c)[16])
    {
        const int csize = size / 2;
        const int cx = x / 2;
        const int cy = y / 2;
        int inv_blocks = 0;
        if (skip) {
            copyBlock(recon_.y(), x, y, size, pred_y, size);
            copyBlock(recon_.u(), cx, cy, csize, pred_u, csize);
            copyBlock(recon_.v(), cx, cy, csize, pred_v, csize);
        } else {
            for (int ty = 0; ty < tus; ++ty) {
                for (int tx = 0; tx < tus; ++tx) {
                    int16_t residual[64];
                    inverseTransform8x8(dc_y[ty * tus + tx],
                                        ac_y[ty * tus + tx], qp_,
                                        residual);
                    addBlock(recon_.y(), x + tx * 8, y + ty * 8, 8,
                             pred_y + ty * 8 * size + tx * 8, size,
                             residual, 8);
                    ++inv_blocks;
                }
            }
            for (int plane = 0; plane < 2; ++plane) {
                Plane &rplane = plane == 0 ? recon_.u() : recon_.v();
                const uint8_t *pred_c = plane == 0 ? pred_u : pred_v;
                if (ctus > 0) {
                    for (int ty = 0; ty < ctus; ++ty) {
                        for (int tx = 0; tx < ctus; ++tx) {
                            int16_t residual[64];
                            inverseTransform8x8(
                                dc_c[plane][ty * ctus + tx],
                                ac_c[plane][ty * ctus + tx], qp_,
                                residual);
                            addBlock(rplane, cx + tx * 8, cy + ty * 8, 8,
                                     pred_c + ty * 8 * csize + tx * 8,
                                     csize, residual, 8);
                            ++inv_blocks;
                        }
                    }
                } else {
                    int32_t coefs[16];
                    int16_t residual[16];
                    codec::dequantize4x4(levels4_c[plane], coefs, qp_);
                    codec::inverseTransform4x4(coefs, residual);
                    addBlock(rplane, cx, cy, 4, pred_c, 4, residual, 4);
                    ++inv_blocks;
                }
            }
        }
        if (probe_ && inv_blocks > 0) {
            probe_->record(KernelId::Dequant, inv_blocks * 4);
            probe_->record(KernelId::TransformInv, inv_blocks * 4);
            probe_->record(
                KernelId::Reconstruct,
                static_cast<uint64_t>(size) * size / 16,
                static_cast<uint64_t>(inv_blocks), 6,
                {uarch::MemRegion{recon_.y().row(y) + x,
                                  static_cast<uint32_t>(size),
                                  static_cast<uint32_t>(size),
                                  static_cast<uint32_t>(padded_w_),
                                  true}});
        }
    }

    static void
    copyBlock(Plane &dst, int x, int y, int n, const uint8_t *src,
              int stride)
    {
        kernels::ops().copy2d(src, stride, dst.row(y) + x, dst.width(),
                              n, n);
    }

    /** recon = clamp(pred + residual) over an n x n block. */
    static void
    addBlock(Plane &dst, int x, int y, int n, const uint8_t *pred,
             int pred_stride, const int16_t *residual, int res_stride)
    {
        kernels::ops().addClampBlock(pred, pred_stride, residual,
                                     res_stride, dst.row(y) + x,
                                     dst.width(), n, n);
    }

    const NgcConfig &config_;
    const NgcTools &tools_;
    const Video &source_;
    RateController &rate_;
    uarch::UarchProbe *probe_;
    obs::Tracer *tracer_;
    obs::StageAccum accum_;
    obs::StageAccum *acc_;
    int padded_w_;
    int padded_h_;
    int sb_cols_;
    int sb_rows_;

    Frame src_;
    Frame recon_;
    CellGrid cells_;
    std::deque<RefFrame> refs_;
    std::vector<CuPlan> arena_;
    int qp_ = 26;
    double lambda_sad_ = 1.0;
    uint64_t entropy_hash_ = 0;
};

} // namespace

NgcEncoder::NgcEncoder(const NgcConfig &config) : config_(config) {}

EncodeResult
NgcEncoder::encode(const video::Video &source)
{
    codec::RateControlConfig rc = config_.rc;
    rc.fps = source.fps();
    rc.pixels_per_frame = static_cast<double>(source.pixelsPerFrame());

    const NgcTools tools = toolsFor(config_.profile, config_.speed);

    if (rc.mode == codec::RcMode::TwoPass) {
        NgcConfig pass1_cfg = config_;
        pass1_cfg.speed = 2;
        pass1_cfg.rc.mode = codec::RcMode::Cqp;
        pass1_cfg.rc.qp = 30;
        codec::RateControlConfig pass1_rc = pass1_cfg.rc;
        pass1_rc.fps = source.fps();
        pass1_rc.pixels_per_frame = rc.pixels_per_frame;
        RateController pass1_rate(pass1_rc);
        const NgcTools pass1_tools = toolsFor(config_.profile, 2);
        NgcSequencer pass1(pass1_cfg, pass1_tools, source, pass1_rate);
        const EncodeResult first = pass1.run();

        codec::PassOneStats stats;
        stats.pass_qp = 30;
        for (const FrameStats &f : first.frames)
            stats.frame_bits.push_back(f.bytes * 8.0);

        RateController rate(rc);
        rate.setPassOneStats(stats);
        NgcSequencer pass2(config_, tools, source, rate);
        return pass2.run();
    }

    RateController rate(rc);
    NgcSequencer seq(config_, tools, source, rate);
    return seq.run();
}

} // namespace vbench::ngc
