#include "ngc/ngc_encoder.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "codec/deblock.h"
#include "codec/interp.h"
#include "codec/me.h"
#include "codec/refplane.h"
#include "codec/syntax.h"
#include "codec/transform.h"
#include "core/runtime_config.h"
#include "kernels/kernel_ops.h"
#include "ngc/ngc_bitstream.h"
#include "ngc/ngc_intra.h"
#include "ngc/ngc_residual.h"
#include "ngc/transform8.h"
#include "obs/clock.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sched/frame_threads.h"
#include "sched/wavefront.h"

namespace vbench::ngc {

namespace {

using codec::ByteBuffer;
using codec::EncodeResult;
using codec::FrameStats;
using codec::FrameType;
using codec::MbGrid;
using codec::MeContext;
using codec::MeResult;
using codec::MotionVector;
using codec::RateController;
using codec::RefFrame;
using codec::RefPlane;
using codec::SearchKind;
using codec::SyntaxWriter;
using uarch::KernelId;
using video::Frame;
using video::Plane;
using video::Video;

namespace ctx = codec::ctx;

/** Search/tool parameters resolved from (profile, speed). */
struct NgcTools {
    SearchKind search = SearchKind::Hex;
    int range = 16;
    bool subpel = true;
    int subpel_iters = 2;
    int refs = 2;
    int max_depth = 2;       ///< 0: SB only, 1: +16, 2: +8
    double lambda_scale = 1.0;
};

NgcTools
toolsFor(NgcProfile profile, int speed)
{
    NgcTools t;
    switch (std::clamp(speed, 0, 2)) {
      case 0:
        t.range = 32;
        t.subpel_iters = 3;
        t.refs = 3;
        t.max_depth = 2;
        break;
      case 1:
        t.range = 16;
        t.subpel_iters = 2;
        t.refs = 2;
        t.max_depth = 2;
        break;
      case 2:
        t.range = 8;
        t.subpel_iters = 1;
        t.refs = 1;
        t.max_depth = 1;
        break;
    }
    if (profile == NgcProfile::Vp9Like) {
        // VP9-like: even deeper search, slightly lower lambda (spends
        // bits for quality), exhaustive at the slowest speed.
        t.lambda_scale = 0.9;
        if (speed == 0) {
            t.search = SearchKind::Full;
            t.range = 8;
            t.refs = 3;
        }
    }
    return t;
}

/** One node of the partition plan. */
struct CuPlan {
    bool split = false;
    uint32_t cost = UINT32_MAX;
    MeResult me;
    int ref = 0;
    uint32_t inter_cost = UINT32_MAX;
    NgcIntraMode intra_mode = NgcIntraMode::Dc;
    uint32_t intra_cost = UINT32_MAX;
    int child[4] = {-1, -1, -1, -1};
};

/**
 * Everything the serial entropy pass needs about one analyzed leaf CU.
 * Residual levels live in the owning SbRecord's shared coefficient
 * vector (fixed per-leaf arrays sized for the worst case would cost
 * tens of megabytes per frame), consumed by a sequential cursor in the
 * exact order analysis appended them.
 */
struct LeafRecord {
    uint8_t size = 0;
    bool use_inter = false;
    bool skip = false;
    NgcIntraMode intra_mode = NgcIntraMode::Dc;
    MotionVector mv;
    MotionVector pred_mv;
    int8_t ref = 0;
    int32_t nonzero = 0;   ///< feeds the entropy decision hash
};

/**
 * Analyzed state of one superblock: the quadtree shape (pre-order
 * split flags), its leaves, and their residual levels. Produced —
 * possibly in parallel, in wavefront order — by analysis; replayed
 * strictly in raster order by the entropy pass, which is how the
 * arithmetic-coded stream stays byte-identical for every thread count.
 */
struct SbRecord {
    std::vector<uint8_t> splits;
    std::vector<LeafRecord> leaves;
    std::vector<int16_t> coeffs;

    void
    clear()
    {
        splits.clear();
        leaves.clear();
        coeffs.clear();
    }
};

/** Per-worker scratch: the CU plan arena and stage accumulator. */
struct NgcWorkerCtx {
    obs::StageAccum accum;          ///< per-worker stage nanoseconds
    obs::StageAccum *acc = nullptr; ///< &accum when tracing, else null
    std::vector<CuPlan> arena;
};

/** Sequence encoder for one pass. */
class NgcSequencer
{
  public:
    NgcSequencer(const NgcConfig &config, const NgcTools &tools,
                 const Video &source, RateController &rate)
        : config_(config), tools_(tools), source_(source), rate_(rate),
          probe_(config.probe),
          tracer_(config.tracer ? config.tracer : obs::globalTracer()),
          acc_(tracer_ ? &accum_ : nullptr),
          cancel_(config.cancel),
          padded_w_((source.width() + kSbSize - 1) & ~(kSbSize - 1)),
          padded_h_((source.height() + kSbSize - 1) & ~(kSbSize - 1)),
          sb_cols_(padded_w_ / kSbSize), sb_rows_(padded_h_ / kSbSize)
    {
        int threads = config.frame_threads > 0
            ? std::min(config.frame_threads, sched::kMaxFrameThreads)
            : sched::decideFrameThreads(0).threads;
        // A uarch probe assumes serial, single-writer recording; the
        // wavefront would interleave its kernel stream nondeterministically.
        if (probe_)
            threads = 1;
        frame_threads_ = std::clamp(threads, 1, std::max(1, sb_rows_));
        wctx_ = std::vector<NgcWorkerCtx>(
            static_cast<size_t>(frame_threads_));
        for (NgcWorkerCtx &wc : wctx_)
            wc.acc = tracer_ ? &wc.accum : nullptr;
        if (frame_threads_ > 1)
            runner_ = std::make_unique<sched::WavefrontRunner>(
                frame_threads_);
        if (tracer_)
            row_start_ns_.resize(static_cast<size_t>(sb_rows_), 0);
        sb_records_.resize(static_cast<size_t>(sb_cols_) * sb_rows_);

        int slices = config.slice_count > 0
            ? config.slice_count
            : core::freshRuntimeConfig().slices;
        // The fused probe path interleaves analysis with a single
        // serial entropy writer; slices would change both the bytes
        // and the kernel-record order the uarch models expect.
        if (probe_)
            slices = 1;
        slice_count_ = std::clamp(
            slices, 1,
            std::min(static_cast<int>(codec::kMaxSlices),
                     std::max(1, sb_rows_)));
        slice_row_start_.resize(static_cast<size_t>(slice_count_) + 1);
        for (int s = 0; s <= slice_count_; ++s)
            slice_row_start_[static_cast<size_t>(s)] =
                codec::sliceRowStart(sb_rows_, slice_count_, s);
        slice_top_row_.resize(static_cast<size_t>(sb_rows_), 0);
        for (int s = 0; s < slice_count_; ++s)
            for (int r = slice_row_start_[static_cast<size_t>(s)];
                 r < slice_row_start_[static_cast<size_t>(s) + 1]; ++r)
                slice_top_row_[static_cast<size_t>(r)] =
                    slice_row_start_[static_cast<size_t>(s)];
    }

    EncodeResult
    run()
    {
        EncodeResult result;
        NgcStreamHeader header;
        header.width = source_.width();
        header.height = source_.height();
        toRational(source_.fps(), header.fps_num, header.fps_den);
        header.frame_count = static_cast<uint32_t>(source_.frameCount());
        header.profile = config_.profile;
        header.num_refs = static_cast<uint32_t>(tools_.refs);
        header.slice_count = static_cast<uint32_t>(slice_count_);
        writeNgcHeader(result.stream, header);

        for (int i = 0; i < source_.frameCount(); ++i) {
            if (cancelledNow())
                break;
            const uint64_t frame_start = tracer_ ? obs::nowNs() : 0;
            if (acc_)
                accum_.reset();
            const FrameType type = frameTypeFor(i);
            int qp;
            {
                obs::ScopedStage rc(acc_, obs::Stage::RateControl);
                qp = rate_.frameQp(type, i);
            }
            FrameStats stats;
            const ByteBuffer payload =
                encodeFrame(source_.frame(i), i, type, qp, stats);
            if (cancelled_)
                break;  // truncated payload, result abandoned upstream
            codec::appendU32(result.stream,
                             static_cast<uint32_t>(payload.size() + 1));
            result.stream.push_back(codec::packFrameByte(type, qp));
            result.stream.insert(result.stream.end(), payload.begin(),
                                 payload.end());
            stats.type = type;
            stats.qp = qp;
            stats.bytes = payload.size() + 5;
            result.frames.push_back(stats);
            {
                obs::ScopedStage rc(acc_, obs::Stage::RateControl);
                rate_.frameDone(type, (payload.size() + 5) * 8.0);
            }
            if (tracer_)
                tracer_->addFrame(obs::Track::NgcEncode, i, frame_start,
                                  obs::nowNs(), accum_);
        }
        result.rc_state = rate_.snapshot();
        return result;
    }

  private:
    static void
    toRational(double fps, uint32_t &num, uint32_t &den)
    {
        if (std::abs(fps - std::round(fps)) < 1e-9) {
            num = static_cast<uint32_t>(std::lround(fps));
            den = 1;
        } else {
            num = static_cast<uint32_t>(std::lround(fps * 1000));
            den = 1000;
        }
    }

    bool
    cancelledNow() const
    {
        return cancel_ && cancel_->load(std::memory_order_relaxed);
    }

    FrameType
    frameTypeFor(int index) const
    {
        // Segment boundaries restart the GOP phase (split-and-stitch
        // contract, see codec::EncoderConfig::segment_frames).
        const int phase = config_.segment_frames > 0
            ? index % config_.segment_frames
            : index;
        if (phase == 0)
            return FrameType::I;
        if (config_.gop > 0 && phase % config_.gop == 0)
            return FrameType::I;
        return FrameType::P;
    }

    ByteBuffer
    encodeFrame(const Frame &original, int frame_index, FrameType type,
                int qp, FrameStats &stats)
    {
        {
            obs::ScopedStage setup(acc_, obs::Stage::FrameSetup);
            src_ = padFrame(original);
            if (type == FrameType::I)
                refs_.clear();
            recon_ = Frame(padded_w_, padded_h_);
            cells_ = CellGrid(padded_w_ / 8, padded_h_ / 8);
            qp_ = qp;
            lambda_sad_ = codec::sadLambda(qp) * tools_.lambda_scale;
        }

        ByteBuffer payload;

        if (probe_) {
            // Fused serial path (a probe forces frame_threads = 1 and
            // slice_count = 1): entropy emission interleaves with
            // every superblock, so the probe sees the exact
            // kernel-record ordering the uarch models (I-cache
            // pressure in particular) expect. The stream is identical
            // to the two-phase path — analysis never reads writer
            // state.
            codec::ArithSyntaxWriter writer(payload, nctx::kNumContexts);
            double bits_done = 0;
            for (int sby = 0; sby < sb_rows_; ++sby) {
                for (int sbx = 0; sbx < sb_cols_; ++sbx) {
                    analyzeSuperblock(sbx, sby, type, wctx_[0]);
                    {
                        obs::ScopedStage ec(wctx_[0].acc,
                                            obs::Stage::EntropyCoding);
                        SbCursor cur;
                        writeTree(sb_records_[static_cast<size_t>(sby) *
                                                  sb_cols_ +
                                              sbx],
                                  cur, kSbSize, 0, type, writer, stats);
                    }
                    const double bits = writer.bitsWritten();
                    probe_->record(
                        KernelId::EntropyArith,
                        std::max<uint64_t>(
                            1, static_cast<uint64_t>(bits - bits_done)),
                        entropy_hash_, 64);
                    bits_done = bits;
                }
            }
            if (acc_) {
                accum_.addFrom(wctx_[0].accum);
                wctx_[0].accum.reset();
            }
            {
                obs::ScopedStage ec(acc_, obs::Stage::EntropyCoding);
                writer.finish();
            }
            probe_->record(KernelId::RateControl,
                           static_cast<uint64_t>(sb_cols_) * sb_rows_ * 4);
            finishFrame();
            return payload;
        }

        // ---- Phase 1: analysis, wavefront-parallel across SB rows. --
        const auto cell = [&](int sby, int sbx, int slot) {
            if (tracer_ && sbx == 0)
                row_start_ns_[static_cast<size_t>(sby)] = obs::nowNs();
            analyzeSuperblock(sbx, sby, type,
                              wctx_[static_cast<size_t>(slot)]);
            if (tracer_ && sbx == sb_cols_ - 1)
                tracer_->addSpan(obs::Track::NgcEncode,
                                 obs::Stage::WavefrontRow, frame_index,
                                 row_start_ns_[static_cast<size_t>(sby)],
                                 obs::nowNs());
        };
        bool complete = true;
        if (frame_threads_ > 1) {
            // The diagonal-down-left intra predictor reads the top row
            // out to x + 2*size — one full superblock past the
            // top-right neighbor plus its first column — so row r may
            // trail row r-1 by 3 superblocks.
            complete = runner_->run(
                sb_rows_, sb_cols_, /*lag=*/3,
                [&](int row, int col, int slot) { cell(row, col, slot); },
                cancel_);
        } else {
            for (int sby = 0; sby < sb_rows_ && complete; ++sby) {
                if (cancelledNow()) {
                    complete = false;
                    break;
                }
                for (int sbx = 0; sbx < sb_cols_; ++sbx)
                    cell(sby, sbx, 0);
            }
        }
        if (acc_) {
            for (NgcWorkerCtx &wc : wctx_) {
                accum_.addFrom(wc.accum);
                wc.accum.reset();
            }
        }
        if (!complete) {
            cancelled_ = true;
            return payload;
        }

        // ---- Phase 2: entropy pass. Single-slice emits straight into
        // the frame payload in raster order (byte-identical to the
        // pre-slice format); multi-slice emits each band into its own
        // buffer — the arithmetic contexts restart at every slice
        // head, so bands are independent and run on the wavefront
        // worker set. (A probe never reaches here; it takes the fused
        // path above.) ----
        if (slice_count_ == 1) {
            codec::ArithSyntaxWriter writer(payload, nctx::kNumContexts);
            // Scope ends before finishFrame: deblock and reference
            // bookkeeping must not count toward the entropy tail the
            // slice bench compares against.
            {
                obs::ScopedStage ec(acc_, obs::Stage::EntropyCoding);
                for (int sby = 0; sby < sb_rows_; ++sby) {
                    for (int sbx = 0; sbx < sb_cols_; ++sbx) {
                        SbCursor cur;
                        writeTree(sb_records_[static_cast<size_t>(sby) *
                                                  sb_cols_ +
                                              sbx],
                                  cur, kSbSize, 0, type, writer, stats);
                    }
                }
                writer.finish();
            }
            finishFrame();
            return payload;
        }

        std::vector<ByteBuffer> slice_bufs(
            static_cast<size_t>(slice_count_));
        std::vector<FrameStats> slice_stats(
            static_cast<size_t>(slice_count_));
        const auto write_slice = [&](int s, int slot) {
            const uint64_t start_ns = tracer_ ? obs::nowNs() : 0;
            NgcWorkerCtx &wc = wctx_[static_cast<size_t>(slot)];
            codec::ArithSyntaxWriter slice_writer(
                slice_bufs[static_cast<size_t>(s)], nctx::kNumContexts);
            {
                obs::ScopedStage ec(wc.acc, obs::Stage::EntropyCoding);
                for (int sby = slice_row_start_[static_cast<size_t>(s)];
                     sby < slice_row_start_[static_cast<size_t>(s) + 1];
                     ++sby) {
                    for (int sbx = 0; sbx < sb_cols_; ++sbx) {
                        SbCursor cur;
                        writeTree(
                            sb_records_[static_cast<size_t>(sby) *
                                            sb_cols_ +
                                        sbx],
                            cur, kSbSize, 0, type, slice_writer,
                            slice_stats[static_cast<size_t>(s)]);
                    }
                }
                slice_writer.finish();
            }
            if (tracer_)
                tracer_->addSpan(obs::Track::NgcEncode,
                                 obs::Stage::EntropySlice, frame_index,
                                 start_ns, obs::nowNs());
        };
        if (frame_threads_ > 1) {
            // One "row" per slice, no cross-row dependencies.
            complete = runner_->run(
                slice_count_, 1, /*lag=*/0,
                [&](int row, int, int slot) { write_slice(row, slot); },
                cancel_);
        } else {
            for (int s = 0; s < slice_count_ && complete; ++s) {
                if (cancelledNow()) {
                    complete = false;
                    break;
                }
                write_slice(s, 0);
            }
        }
        if (acc_) {
            for (NgcWorkerCtx &wc : wctx_) {
                accum_.addFrom(wc.accum);
                wc.accum.reset();
            }
        }
        if (!complete) {
            cancelled_ = true;
            return payload;
        }
        for (const FrameStats &ss : slice_stats) {
            stats.intra_mbs += ss.intra_mbs;
            stats.skip_mbs += ss.skip_mbs;
        }
        for (const ByteBuffer &buf : slice_bufs) {
            codec::appendU32(payload, static_cast<uint32_t>(buf.size()));
            payload.insert(payload.end(), buf.begin(), buf.end());
        }

        finishFrame();
        return payload;
    }

    /** Post-entropy frame tail: deblock and reference-list update. */
    void
    finishFrame()
    {
        {
            obs::ScopedStage db(acc_, obs::Stage::Deblock);
            deblockMapped();
        }

        obs::ScopedStage setup(acc_, obs::Stage::FrameSetup);
        refs_.push_front(RefFrame{RefPlane(recon_.y()),
                                  RefPlane(recon_.u()),
                                  RefPlane(recon_.v())});
        while (static_cast<int>(refs_.size()) > std::max(1, tools_.refs))
            refs_.pop_back();
    }

    Frame
    padFrame(const Frame &src) const
    {
        Frame out(padded_w_, padded_h_);
        video::padPlaneInto(src.y(), out.y());
        video::padPlaneInto(src.u(), out.u());
        video::padPlaneInto(src.v(), out.v());
        if (probe_) {
            probe_->record(KernelId::FrameCopy, out.pixelCount() / 64);
        }
        return out;
    }

    /** Map 8x8 cell info onto the 16x16 deblock grid and filter. */
    void
    deblockMapped()
    {
        MbGrid grid(padded_w_ / 16, padded_h_ / 16);
        for (int mby = 0; mby < grid.rows(); ++mby) {
            for (int mbx = 0; mbx < grid.cols(); ++mbx) {
                codec::MbInfo &info = grid.at(mbx, mby);
                bool any_intra = false;
                bool any_coded = false;
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        const CellInfo &cell =
                            cells_.at(mbx * 2 + dx, mby * 2 + dy);
                        any_intra |= cell.mode == CuMode::Intra;
                        any_coded |= cell.coded;
                    }
                }
                const CellInfo &cell = cells_.at(mbx * 2, mby * 2);
                info.mode = any_intra ? codec::MbMode::Intra
                                      : codec::MbMode::Inter16;
                info.mv = cell.mv;
                info.ref = cell.ref;
                info.qp = static_cast<uint8_t>(qp_);
                info.coded = any_coded;
            }
        }
        codec::deblockFrame(recon_, grid, probe_);
    }

    // ----- Superblock analysis (wavefront-parallel) ------------------

    void
    analyzeSuperblock(int sbx, int sby, FrameType type, NgcWorkerCtx &wc)
    {
        SbRecord &rec =
            sb_records_[static_cast<size_t>(sby) * sb_cols_ + sbx];
        rec.clear();
        int root;
        {
            obs::ScopedStage ps(wc.acc, obs::Stage::PartitionSearch);
            wc.arena.clear();
            root = planCu(sbx * kSbSize, sby * kSbSize, kSbSize, 0, type,
                          wc);
        }
        analyzeTree(root, sbx * kSbSize, sby * kSbSize, kSbSize, type, wc,
                    rec);
    }

    // ----- Partition planning ---------------------------------------

    /** Plan a CU; returns the arena index. Costs are SAD-domain. */
    int
    planCu(int x, int y, int size, int depth, FrameType type,
           NgcWorkerCtx &wc)
    {
        std::vector<CuPlan> &arena = wc.arena;
        const int idx = static_cast<int>(arena.size());
        arena.emplace_back();

        // Spatial prediction stops at the slice boundary: intra treats
        // the slice-top row like the frame edge and the cell MV
        // predictor ignores neighbors above it, so every slice decodes
        // with no cross-slice state.
        const int slice_top_px =
            slice_top_row_[static_cast<size_t>(y / kSbSize)] * kSbSize;
        uint32_t intra_tried = 0;
        {
            // Intra estimate on the current reconstruction state.
            uint8_t pred[kSbSize * kSbSize];
            CuPlan &node = arena[idx];
            for (int m = 0; m < kNgcIntraModes; ++m) {
                const NgcIntraMode mode = static_cast<NgcIntraMode>(m);
                if (!ngcIntraAvailable(mode, x, y, slice_top_px))
                    continue;
                ngcIntraPredict(mode, recon_.y(), x, y, size, pred,
                                slice_top_px);
                ++intra_tried;
                const uint32_t sad = codec::satdBlock(
                    src_.y().row(y) + x, padded_w_, pred, size, size,
                    size);
                const uint32_t cost = sad +
                    static_cast<uint32_t>(lambda_sad_ * 8) +
                    (type == FrameType::P ? sad / 4 : 0);
                if (cost < node.intra_cost) {
                    node.intra_cost = cost;
                    node.intra_mode = mode;
                }
            }
        }
        if (probe_ && intra_tried > 0)
            probe_->record(KernelId::IntraPredict,
                           intra_tried * size * size / 256 + 1);

        if (type == FrameType::P && !refs_.empty()) {
            const MotionVector pred_mv =
                cellMvPredictor(cells_, x / 8, y / 8, slice_top_px / 8);
            // CUs on a slice-head row lose their top neighbors for
            // rate prediction; peek across the boundary for a search
            // seed only (encoder-side, never in the bitstream). CUs
            // below the head — and everything at slice_count == 1 —
            // get no seed, so single-slice streams stay bit-identical.
            MotionVector seed_mv;
            bool has_seed = false;
            if (slice_top_px > 0 && y == slice_top_px) {
                seed_mv = cellMvPredictor(cells_, x / 8, y / 8, 0);
                has_seed = seed_mv.x != pred_mv.x ||
                    seed_mv.y != pred_mv.y;
            }
            for (int r = 0;
                 r < static_cast<int>(refs_.size()) && r < tools_.refs;
                 ++r) {
                MeContext me;
                me.src = &src_.y();
                me.ref = &refs_[r].y;
                me.block_x = x;
                me.block_y = y;
                me.block_w = size;
                me.block_h = size;
                me.pred = pred_mv;
                me.seed = seed_mv;
                me.has_seed = has_seed;
                me.lambda = lambda_sad_;
                me.kind = tools_.search;
                me.range = tools_.range;
                me.subpel = tools_.subpel;
                me.subpel_iters = tools_.subpel_iters;
                me.satd_subpel = true;  // next-gen: always SATD subpel
                me.probe = probe_;
                const MeResult res = codec::motionSearch(me);
                CuPlan &node = arena[idx];
                const uint32_t cost = res.cost +
                    static_cast<uint32_t>(lambda_sad_ * (r == 0 ? 1 : 3));
                if (cost < node.inter_cost) {
                    node.inter_cost = cost;
                    node.me = res;
                    node.ref = r;
                }
            }
        }

        {
            CuPlan &node = arena[idx];
            node.cost = std::min(node.intra_cost, node.inter_cost);
        }

        const int max_size_for_depth =
            kSbSize >> tools_.max_depth;  // smallest allowed leaf
        if (size > kMinCu && size > max_size_for_depth) {
            const int half = size / 2;
            int children[4];
            uint32_t split_cost =
                static_cast<uint32_t>(lambda_sad_ * 6);  // tree overhead
            for (int q = 0; q < 4; ++q) {
                children[q] = planCu(x + (q & 1) * half,
                                     y + (q >> 1) * half, half, depth + 1,
                                     type, wc);
                split_cost += arena[children[q]].cost;
            }
            CuPlan &node = arena[idx];
            if (split_cost < node.cost) {
                node.split = true;
                node.cost = split_cost;
                for (int q = 0; q < 4; ++q)
                    node.child[q] = children[q];
            }
            if (probe_)
                probe_->record(KernelId::ModeDecision, 2,
                               node.split ? 1 : 0, 1);
        }
        return idx;
    }

    // ----- Leaf analysis --------------------------------------------

    void
    analyzeTree(int idx, int x, int y, int size, FrameType type,
                NgcWorkerCtx &wc, SbRecord &rec)
    {
        const CuPlan &node = wc.arena[idx];
        if (size > kMinCu)
            rec.splits.push_back(node.split ? 1 : 0);
        if (node.split) {
            const int half = size / 2;
            for (int q = 0; q < 4; ++q) {
                analyzeTree(node.child[q], x + (q & 1) * half,
                            y + (q >> 1) * half, half, type, wc, rec);
            }
            return;
        }
        analyzeLeaf(node, x, y, size, type, wc, rec);
    }

    void
    analyzeLeaf(const CuPlan &node, int x, int y, int size, FrameType type,
                NgcWorkerCtx &wc, SbRecord &rec)
    {
        if (probe_)
            probe_->record(KernelId::Dispatch, size * size / 256 + 1);

        const int slice_top_px =
            slice_top_row_[static_cast<size_t>(y / kSbSize)] * kSbSize;
        const MotionVector pred_mv =
            cellMvPredictor(cells_, x / 8, y / 8, slice_top_px / 8);
        const bool inter_valid =
            type == FrameType::P && node.inter_cost != UINT32_MAX;

        // Re-evaluate intra against the true reconstruction (the plan
        // estimate may have used stale in-SB neighbors).
        NgcIntraMode intra_mode = NgcIntraMode::Dc;
        uint32_t intra_cost = UINT32_MAX;
        {
            obs::ScopedStage intra_stage(wc.acc,
                                         obs::Stage::IntraDecision);
            uint8_t pred[kSbSize * kSbSize];
            for (int m = 0; m < kNgcIntraModes; ++m) {
                const NgcIntraMode mode = static_cast<NgcIntraMode>(m);
                if (!ngcIntraAvailable(mode, x, y, slice_top_px))
                    continue;
                ngcIntraPredict(mode, recon_.y(), x, y, size, pred,
                                slice_top_px);
                const uint32_t sad = codec::satdBlock(
                    src_.y().row(y) + x, padded_w_, pred, size, size,
                    size);
                const uint32_t cost = sad +
                    static_cast<uint32_t>(lambda_sad_ * 8) +
                    (type == FrameType::P ? sad / 4 : 0);
                if (cost < intra_cost) {
                    intra_cost = cost;
                    intra_mode = mode;
                }
            }
        }

        const bool use_inter =
            inter_valid && node.inter_cost <= intra_cost;
        if (probe_)
            probe_->record(KernelId::ModeDecision, 2, use_inter ? 1 : 0,
                           1);

        // Predictions and residuals. Declarations stay outside the
        // timing scope; the reconstruction and record sections below
        // consume them.
        uint8_t pred_y[kSbSize * kSbSize];
        uint8_t pred_u[16 * 16];
        uint8_t pred_v[16 * 16];
        const int csize = size / 2;
        const int cx = x / 2;
        const int cy = y / 2;
        MotionVector mv{};
        int ref = 0;
        const bool intra = !use_inter;
        const int tus = size / 8;
        // Chroma uses hierarchical TUs when the chroma CU is at least 8
        // wide, plain 4x4 otherwise.
        const int ctus = csize >= 8 ? csize / 8 : 0;
        int16_t dc_y[16][4];
        int16_t ac_y[16][64];
        int16_t dc_c[2][4][4];
        int16_t ac_c[2][4][64];
        int16_t levels4_c[2][16];
        int nonzero = 0;
        // Manual start/stop (no early return below) keeps the large
        // prediction+residual section at its natural indentation.
        const uint64_t tq_start = wc.acc ? obs::nowNs() : 0;
        if (use_inter) {
            mv = node.me.mv;
            ref = node.ref;
            codec::motionCompensate(refs_[ref].y, x, y, mv, size, size,
                                    pred_y);
            const MotionVector cmv{static_cast<int16_t>(mv.x >> 1),
                                   static_cast<int16_t>(mv.y >> 1)};
            codec::motionCompensate(refs_[ref].u, cx, cy, cmv, csize,
                                    csize, pred_u);
            codec::motionCompensate(refs_[ref].v, cx, cy, cmv, csize,
                                    csize, pred_v);
        } else {
            const int ctop = slice_top_px / 2;
            ngcIntraPredict(intra_mode, recon_.y(), x, y, size, pred_y,
                            slice_top_px);
            const NgcIntraMode cmode =
                ngcIntraAvailable(intra_mode, cx, cy, ctop)
                    ? intra_mode
                    : NgcIntraMode::Dc;
            ngcIntraPredict(cmode, recon_.u(), cx, cy, csize, pred_u,
                            ctop);
            ngcIntraPredict(cmode, recon_.v(), cx, cy, csize, pred_v,
                            ctop);
        }

        // Residuals.
        for (int ty = 0; ty < tus; ++ty) {
            for (int tx = 0; tx < tus; ++tx) {
                int16_t residual[64];
                kernels::ops().diffBlock(
                    src_.y().row(y + ty * 8) + x + tx * 8,
                    src_.y().width(), pred_y + ty * 8 * size + tx * 8,
                    size, residual, 8, 8, 8);
                nonzero += forwardTransform8x8(residual,
                                               dc_y[ty * tus + tx],
                                               ac_y[ty * tus + tx], qp_,
                                               intra);
            }
        }

        for (int plane = 0; plane < 2; ++plane) {
            const Plane &splane = plane == 0 ? src_.u() : src_.v();
            const uint8_t *pred_c = plane == 0 ? pred_u : pred_v;
            if (ctus > 0) {
                for (int ty = 0; ty < ctus; ++ty) {
                    for (int tx = 0; tx < ctus; ++tx) {
                        int16_t residual[64];
                        kernels::ops().diffBlock(
                            splane.row(cy + ty * 8) + cx + tx * 8,
                            splane.width(),
                            pred_c + ty * 8 * csize + tx * 8, csize,
                            residual, 8, 8, 8);
                        nonzero += forwardTransform8x8(
                            residual, dc_c[plane][ty * ctus + tx],
                            ac_c[plane][ty * ctus + tx], qp_, intra);
                    }
                }
            } else {
                int16_t residual[16];
                kernels::ops().diffBlock(splane.row(cy) + cx,
                                         splane.width(), pred_c, 4,
                                         residual, 4, 4, 4);
                int32_t coefs[16];
                codec::forwardTransform4x4(residual, coefs);
                nonzero += codec::quantize4x4(coefs, levels4_c[plane],
                                              qp_, intra);
            }
        }
        if (probe_) {
            probe_->record(KernelId::TransformFwd,
                           static_cast<uint64_t>(size) * size / 16 + 8);
            probe_->record(KernelId::Quant,
                           static_cast<uint64_t>(size) * size / 16 + 8,
                           nonzero != 0, 1);
        }
        if (wc.acc)
            wc.acc->add(obs::Stage::TransformQuant,
                        obs::nowNs() - tq_start);

        const bool coded = nonzero != 0;
        const bool skip = use_inter && ref == 0 && mv == pred_mv && !coded;

        // --- Record for the serial entropy pass. ---
        LeafRecord leaf;
        leaf.size = static_cast<uint8_t>(size);
        leaf.use_inter = use_inter;
        leaf.skip = skip;
        leaf.intra_mode = intra_mode;
        leaf.mv = mv;
        leaf.pred_mv = pred_mv;
        leaf.ref = static_cast<int8_t>(ref);
        leaf.nonzero = nonzero;
        rec.leaves.push_back(leaf);
        if (!skip) {
            // Coefficient layout (matches writeLeaf's cursor walk):
            // luma TUs as 4 DC + 64 AC each, then per chroma plane
            // either its TUs in the same shape or one 16-level block.
            for (int t = 0; t < tus * tus; ++t) {
                rec.coeffs.insert(rec.coeffs.end(), dc_y[t], dc_y[t] + 4);
                rec.coeffs.insert(rec.coeffs.end(), ac_y[t],
                                  ac_y[t] + 64);
            }
            for (int plane = 0; plane < 2; ++plane) {
                if (ctus > 0) {
                    for (int t = 0; t < ctus * ctus; ++t) {
                        rec.coeffs.insert(rec.coeffs.end(),
                                          dc_c[plane][t],
                                          dc_c[plane][t] + 4);
                        rec.coeffs.insert(rec.coeffs.end(),
                                          ac_c[plane][t],
                                          ac_c[plane][t] + 64);
                    }
                } else {
                    rec.coeffs.insert(rec.coeffs.end(), levels4_c[plane],
                                      levels4_c[plane] + 16);
                }
            }
        }

        // --- Reconstruction. ---
        {
            obs::ScopedStage recon(wc.acc, obs::Stage::Reconstruct);
            reconstructLeaf(x, y, size, pred_y, pred_u, pred_v, skip, tus,
                            dc_y, ac_y, ctus, dc_c, ac_c, levels4_c);
        }

        // --- Cell state. ---
        for (int dy = 0; dy < size / 8; ++dy) {
            for (int dx = 0; dx < size / 8; ++dx) {
                CellInfo &cell = cells_.at(x / 8 + dx, y / 8 + dy);
                cell.mode = skip ? CuMode::Skip
                                 : (use_inter ? CuMode::Inter
                                              : CuMode::Intra);
                cell.mv = use_inter ? mv : MotionVector{};
                cell.ref = static_cast<int8_t>(ref);
                cell.coded = coded;
            }
        }
    }

    // ----- Serial entropy pass --------------------------------------

    /** Cursors into one SbRecord during replay. */
    struct SbCursor {
        size_t split = 0;
        size_t leaf = 0;
        size_t coeff = 0;
    };

    /**
     * Replay one analyzed quadtree in the exact traversal order the
     * analysis recorded it. The only raster-order coder state — the
     * arithmetic contexts, frame stats, and the entropy hash — is
     * touched here, which is what makes the stream thread-count
     * invariant.
     */
    void
    writeTree(SbRecord &rec, SbCursor &cur, int size, int depth,
              FrameType type, SyntaxWriter &writer, FrameStats &stats)
    {
        bool split = false;
        if (size > kMinCu) {
            split = rec.splits[cur.split++] != 0;
            writer.bit(split ? 1 : 0, nctx::kSplit + std::min(depth, 1));
        }
        if (split) {
            for (int q = 0; q < 4; ++q)
                writeTree(rec, cur, size / 2, depth + 1, type, writer,
                          stats);
            return;
        }
        writeLeaf(rec, cur, type, writer, stats);
    }

    void
    writeLeaf(SbRecord &rec, SbCursor &cur, FrameType type,
              SyntaxWriter &writer, FrameStats &stats)
    {
        const LeafRecord &leaf = rec.leaves[cur.leaf++];
        const int size = leaf.size;
        const int tus = size / 8;
        const int csize = size / 2;
        const int ctus = csize >= 8 ? csize / 8 : 0;

        if (type == FrameType::P)
            writer.bit(leaf.skip ? 1 : 0, nctx::kSkip);
        if (!leaf.skip) {
            if (type == FrameType::P)
                writer.bit(leaf.use_inter ? 1 : 0, nctx::kIsInter);
            if (leaf.use_inter) {
                if (tools_.refs > 1)
                    writer.ue(static_cast<uint32_t>(leaf.ref),
                              ctx::kRefIdx, 2);
                writer.se(leaf.mv.x - leaf.pred_mv.x, ctx::kMvX, 4);
                writer.se(leaf.mv.y - leaf.pred_mv.y, ctx::kMvY, 4);
            } else {
                writer.ue(static_cast<int>(leaf.intra_mode),
                          nctx::kIntraMode, 3);
            }
            const int16_t *coeffs = rec.coeffs.data();
            for (int t = 0; t < tus * tus; ++t) {
                writeTu8(writer, coeffs + cur.coeff,
                         coeffs + cur.coeff + 4, true);
                cur.coeff += 68;
            }
            for (int plane = 0; plane < 2; ++plane) {
                if (ctus > 0) {
                    for (int t = 0; t < ctus * ctus; ++t) {
                        writeTu8(writer, coeffs + cur.coeff,
                                 coeffs + cur.coeff + 4, false);
                        cur.coeff += 68;
                    }
                } else {
                    codec::writeResidualBlock(writer, coeffs + cur.coeff,
                                              false);
                    cur.coeff += 16;
                }
            }
        } else {
            ++stats.skip_mbs;
        }
        if (!leaf.use_inter)
            ++stats.intra_mbs;

        // Probe-only decision hash. Guarded because the probe path is
        // the only reader and the only serial caller — slice-parallel
        // replay must not share mutable state across workers.
        if (probe_)
            entropy_hash_ = entropy_hash_ * 0x9E3779B97F4A7C15ull +
                static_cast<uint64_t>(leaf.nonzero);
    }

    void
    reconstructLeaf(int x, int y, int size, const uint8_t *pred_y,
                    const uint8_t *pred_u, const uint8_t *pred_v,
                    bool skip, int tus, const int16_t (*dc_y)[4],
                    const int16_t (*ac_y)[64], int ctus,
                    const int16_t (*dc_c)[4][4],
                    const int16_t (*ac_c)[4][64],
                    const int16_t (*levels4_c)[16])
    {
        const int csize = size / 2;
        const int cx = x / 2;
        const int cy = y / 2;
        int inv_blocks = 0;
        if (skip) {
            copyBlock(recon_.y(), x, y, size, pred_y, size);
            copyBlock(recon_.u(), cx, cy, csize, pred_u, csize);
            copyBlock(recon_.v(), cx, cy, csize, pred_v, csize);
        } else {
            for (int ty = 0; ty < tus; ++ty) {
                for (int tx = 0; tx < tus; ++tx) {
                    int16_t residual[64];
                    inverseTransform8x8(dc_y[ty * tus + tx],
                                        ac_y[ty * tus + tx], qp_,
                                        residual);
                    addBlock(recon_.y(), x + tx * 8, y + ty * 8, 8,
                             pred_y + ty * 8 * size + tx * 8, size,
                             residual, 8);
                    ++inv_blocks;
                }
            }
            for (int plane = 0; plane < 2; ++plane) {
                Plane &rplane = plane == 0 ? recon_.u() : recon_.v();
                const uint8_t *pred_c = plane == 0 ? pred_u : pred_v;
                if (ctus > 0) {
                    for (int ty = 0; ty < ctus; ++ty) {
                        for (int tx = 0; tx < ctus; ++tx) {
                            int16_t residual[64];
                            inverseTransform8x8(
                                dc_c[plane][ty * ctus + tx],
                                ac_c[plane][ty * ctus + tx], qp_,
                                residual);
                            addBlock(rplane, cx + tx * 8, cy + ty * 8, 8,
                                     pred_c + ty * 8 * csize + tx * 8,
                                     csize, residual, 8);
                            ++inv_blocks;
                        }
                    }
                } else {
                    int32_t coefs[16];
                    int16_t residual[16];
                    codec::dequantize4x4(levels4_c[plane], coefs, qp_);
                    codec::inverseTransform4x4(coefs, residual);
                    addBlock(rplane, cx, cy, 4, pred_c, 4, residual, 4);
                    ++inv_blocks;
                }
            }
        }
        if (probe_ && inv_blocks > 0) {
            probe_->record(KernelId::Dequant, inv_blocks * 4);
            probe_->record(KernelId::TransformInv, inv_blocks * 4);
            probe_->record(
                KernelId::Reconstruct,
                static_cast<uint64_t>(size) * size / 16,
                static_cast<uint64_t>(inv_blocks), 6,
                {uarch::MemRegion{recon_.y().row(y) + x,
                                  static_cast<uint32_t>(size),
                                  static_cast<uint32_t>(size),
                                  static_cast<uint32_t>(padded_w_),
                                  true}});
        }
    }

    static void
    copyBlock(Plane &dst, int x, int y, int n, const uint8_t *src,
              int stride)
    {
        kernels::ops().copy2d(src, stride, dst.row(y) + x, dst.width(),
                              n, n);
    }

    /** recon = clamp(pred + residual) over an n x n block. */
    static void
    addBlock(Plane &dst, int x, int y, int n, const uint8_t *pred,
             int pred_stride, const int16_t *residual, int res_stride)
    {
        kernels::ops().addClampBlock(pred, pred_stride, residual,
                                     res_stride, dst.row(y) + x,
                                     dst.width(), n, n);
    }

    const NgcConfig &config_;
    const NgcTools &tools_;
    const Video &source_;
    RateController &rate_;
    uarch::UarchProbe *probe_;
    obs::Tracer *tracer_;
    obs::StageAccum accum_;
    obs::StageAccum *acc_;
    const std::atomic<bool> *cancel_;
    int padded_w_;
    int padded_h_;
    int sb_cols_;
    int sb_rows_;

    int frame_threads_ = 1;
    std::unique_ptr<sched::WavefrontRunner> runner_;
    std::vector<NgcWorkerCtx> wctx_;
    std::vector<SbRecord> sb_records_;
    std::vector<uint64_t> row_start_ns_;
    bool cancelled_ = false;

    int slice_count_ = 1;
    /// Band boundaries: slice s spans SB rows [start[s], start[s+1]).
    std::vector<int> slice_row_start_;
    /// Per SB row, the first row of its slice (spatial prediction must
    /// not read above it — slices decode independently).
    std::vector<int> slice_top_row_;

    Frame src_;
    Frame recon_;
    CellGrid cells_;
    std::deque<RefFrame> refs_;
    int qp_ = 26;
    double lambda_sad_ = 1.0;
    uint64_t entropy_hash_ = 0;
};

} // namespace

NgcEncoder::NgcEncoder(const NgcConfig &config) : config_(config) {}

namespace {

/** First pass: fast speed, fixed quantizer, gather complexity. */
EncodeResult
ngcEncodeFirstPass(const NgcConfig &config, const video::Video &source)
{
    NgcConfig pass1_cfg = config;
    pass1_cfg.speed = 2;
    pass1_cfg.rc.mode = codec::RcMode::Cqp;
    pass1_cfg.rc.qp = 30;
    pass1_cfg.rc.fps = source.fps();
    pass1_cfg.rc.pixels_per_frame =
        static_cast<double>(source.pixelsPerFrame());
    pass1_cfg.rc_in.reset();
    pass1_cfg.pass_one = nullptr;
    RateController pass1_rate(pass1_cfg.rc);
    const NgcTools pass1_tools = toolsFor(config.profile, 2);
    NgcSequencer pass1(pass1_cfg, pass1_tools, source, pass1_rate);
    return pass1.run();
}

codec::PassOneStats
ngcStatsFromFirstPass(const EncodeResult &first)
{
    codec::PassOneStats stats;
    stats.pass_qp = 30;
    for (const FrameStats &f : first.frames)
        stats.frame_bits.push_back(f.bytes * 8.0);
    return stats;
}

} // namespace

codec::PassOneStats
collectNgcPassOneStats(const NgcConfig &config, const video::Video &source)
{
    return ngcStatsFromFirstPass(ngcEncodeFirstPass(config, source));
}

EncodeResult
NgcEncoder::encode(const video::Video &source)
{
    codec::RateControlConfig rc = config_.rc;
    rc.fps = source.fps();
    rc.pixels_per_frame = static_cast<double>(source.pixelsPerFrame());

    const NgcTools tools = toolsFor(config_.profile, config_.speed);

    if (rc.mode == codec::RcMode::TwoPass) {
        codec::PassOneStats stats;
        if (config_.pass_one) {
            stats = *config_.pass_one;
        } else {
            const EncodeResult first =
                ngcEncodeFirstPass(config_, source);
            if (config_.cancel &&
                config_.cancel->load(std::memory_order_relaxed))
                return first;  // abandoned upstream; skip second pass
            stats = ngcStatsFromFirstPass(first);
        }

        RateController rate(rc);
        rate.setPassOneStats(stats);
        // Whole-clip stats shift local indices by frames already
        // encoded; segment-local stats index from this segment's 0.
        if (config_.rc_in)
            rate.restore(*config_.rc_in,
                         config_.pass_one ? config_.rc_in->frames_done : 0);
        NgcSequencer pass2(config_, tools, source, rate);
        return pass2.run();
    }

    RateController rate(rc);
    if (config_.rc_in)
        rate.restore(*config_.rc_in);
    NgcSequencer seq(config_, tools, source, rate);
    return seq.run();
}

} // namespace vbench::ngc
