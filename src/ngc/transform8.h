#pragma once

/**
 * @file
 * NGC's hierarchical 8x8 transform: four 4x4 core transforms whose DC
 * coefficients are further decorrelated by a 2x2 Hadamard transform
 * (the construction H.264 uses for Intra-16x16 DC, applied here as the
 * standard transform unit). Larger effective support than a flat 4x4
 * improves energy compaction on smooth content while keeping all
 * arithmetic exactly integral.
 */

#include <cstdint>

namespace vbench::ngc {

/**
 * Forward transform + quantization of one 8x8 residual block.
 *
 * @param residual 64 residual samples, row-major.
 * @param[out] dc_levels 4 quantized Hadamard-domain DC levels (in
 *        sub-block raster order).
 * @param[out] ac_levels 4 sub-blocks x 16 levels; position 0 of each
 *        sub-block is always zero (its energy lives in dc_levels).
 * @param qp quantizer.
 * @param intra rounding mode.
 * @return number of nonzero levels across DC and AC.
 */
int forwardTransform8x8(const int16_t residual[64], int16_t dc_levels[4],
                        int16_t ac_levels[64], int qp, bool intra);

/**
 * Dequantize + inverse transform back to a residual block.
 */
void inverseTransform8x8(const int16_t dc_levels[4],
                         const int16_t ac_levels[64], int qp,
                         int16_t residual[64]);

} // namespace vbench::ngc
