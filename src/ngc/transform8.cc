#include "ngc/transform8.h"

#include "codec/transform.h"
#include "kernels/kernel_ops.h"

namespace vbench::ngc {

namespace {

/** 2x2 Hadamard butterfly (self-inverse up to a factor of 4). */
void
hadamard2x2(const int32_t in[4], int32_t out[4])
{
    out[0] = in[0] + in[1] + in[2] + in[3];
    out[1] = in[0] - in[1] + in[2] - in[3];
    out[2] = in[0] + in[1] - in[2] - in[3];
    out[3] = in[0] - in[1] - in[2] + in[3];
}

} // namespace

int
forwardTransform8x8(const int16_t residual[64], int16_t dc_levels[4],
                    int16_t ac_levels[64], int qp, bool intra)
{
    int32_t coefs[4][16];
    kernels::ops().fwdTx8x8(residual, &coefs[0][0]);

    // Second-level transform over the four DC coefficients.
    const int32_t dc[4] = {coefs[0][0], coefs[1][0], coefs[2][0],
                           coefs[3][0]};
    int32_t had[4];
    hadamard2x2(dc, had);

    const int rem = qp % 6;
    const int qbits = 15 + qp / 6;
    const int64_t f = (1ll << qbits) / (intra ? 3 : 6);
    const int mf = codec::quantMfDc(rem);
    int nonzero = 0;
    for (int i = 0; i < 4; ++i) {
        const int64_t w = had[i];
        // The Hadamard has gain 4, so quantize with one extra shift
        // (an effective step of 2x) to stay in the same scale family.
        const int64_t mag = ((w < 0 ? -w : w) * mf + 2 * f) >> (qbits + 1);
        dc_levels[i] = static_cast<int16_t>(w < 0 ? -mag : mag);
        if (dc_levels[i] != 0)
            ++nonzero;
    }

    for (int sb = 0; sb < 4; ++sb) {
        coefs[sb][0] = 0;  // energy moved into the DC transform
        nonzero += codec::quantize4x4(coefs[sb], ac_levels + sb * 16, qp,
                                      intra);
    }
    return nonzero;
}

void
inverseTransform8x8(const int16_t dc_levels[4], const int16_t ac_levels[64],
                    int qp, int16_t residual[64])
{
    const int rem = qp % 6;
    const int shift = qp / 6;
    const int v = codec::dequantVDc(rem);

    int32_t had[4];
    for (int i = 0; i < 4; ++i)
        had[i] = (static_cast<int32_t>(dc_levels[i]) * v) << (shift + 1);
    int32_t dc[4];
    hadamard2x2(had, dc);
    for (int i = 0; i < 4; ++i)
        dc[i] = (dc[i] + 2) >> 2;  // inverse Hadamard normalization

    int32_t coefs[4][16];
    for (int sb = 0; sb < 4; ++sb) {
        codec::dequantize4x4(ac_levels + sb * 16, coefs[sb], qp);
        coefs[sb][0] = dc[sb];
    }
    kernels::ops().invTx8x8(&coefs[0][0], residual);
}

} // namespace vbench::ngc
