#pragma once

/**
 * @file
 * The polymorphic encoder-backend seam. Every encoder vbench
 * evaluates — the VBC software encoder, the two NGC next-generation
 * profiles, and the fixed-function hardware pipeline models — presents
 * the same three operations:
 *
 *   create:       build a configured backend from a TranscodeRequest.
 *   encode:       frames in, bitstream + per-frame stats out, plus the
 *                 modeled pipeline seconds for hardware backends.
 *   decodeOutput: decode a stream this backend produced, for the
 *                 quality measurement.
 *
 * core::transcode() drives any backend through this interface, and the
 * parallel scheduler (vbench::sched) gets one clean dispatch point
 * instead of an EncoderKind switch per call site. A backend instance
 * encodes one clip at a time; distinct instances are independent, so
 * workers may run one backend each concurrently.
 */

#include <memory>
#include <optional>
#include <string>

#include "codec/encoder.h"
#include "core/transcoder.h"
#include "video/video.h"

namespace vbench::core {

/** What a backend's encode produced. */
struct BackendEncodeResult {
    codec::EncodeResult encoded;
    /**
     * Modeled pipeline seconds (fixed-function backends only): the
     * hardware model's decode + encode time, which replaces the
     * simulation wall clock in the reported measurement. Software
     * backends leave this unset and the caller reports wall clock.
     */
    std::optional<double> modeled_seconds;
};

/** One encoder back-end behind a uniform interface. */
class EncoderBackend
{
  public:
    virtual ~EncoderBackend() = default;
    EncoderBackend(const EncoderBackend &) = delete;
    EncoderBackend &operator=(const EncoderBackend &) = delete;

    /**
     * Build the backend a request names, carrying over its rate
     * control, dials, probe, and tracer. `request.validate()` must
     * have passed; create() itself never clamps or repairs.
     */
    static std::unique_ptr<EncoderBackend>
    create(const TranscodeRequest &request, obs::Tracer *tracer);

    /** Encode a clip. One encode at a time per instance. */
    virtual BackendEncodeResult encode(const video::Video &input) = 0;

    /** Decode a stream produced by this backend's encode(). */
    virtual std::optional<video::Video>
    decodeOutput(const codec::ByteBuffer &stream) const = 0;

    /** One-line human description, e.g. "vbc(effort=5, rc=crf)". */
    virtual std::string describe() const = 0;

    /** The request kind this backend realizes. */
    EncoderKind kind() const { return kind_; }

  protected:
    explicit EncoderBackend(EncoderKind kind) : kind_(kind) {}

  private:
    EncoderKind kind_;
};

} // namespace vbench::core
