#pragma once

/**
 * @file
 * The five vbench scoring scenarios (paper §4.2, Table 1). Each
 * reflects one real transcoding pipeline of a video sharing service:
 *
 *   Upload   - first-touch transcode to the universal format; needs
 *              speed and fidelity, bitrate nearly free (B > 0.2),
 *              score S x Q.
 *   Live     - real-time constraint (speed >= output pixel rate),
 *              score B x Q.
 *   Vod      - the average two-pass archival transcode; quality must
 *              hold (Q >= 1 or visually lossless), score S x B.
 *   Popular  - high-effort re-transcode of head content; must improve
 *              both size and quality (B, Q >= 1, S >= 0.1),
 *              score B x Q.
 *   Platform - same software, different machine; B = Q = 1 required,
 *              score S.
 */

namespace vbench::core {

enum class Scenario {
    Upload = 0,
    Live,
    Vod,
    Popular,
    Platform,
};

inline constexpr int kNumScenarios = 5;

const char *toString(Scenario scenario);

} // namespace vbench::core
