#pragma once

/**
 * @file
 * Reference transcode operations (§4.2): for each scenario, the
 * baseline VBC configuration "comparable with operations performed at
 * providers like YouTube". Reference measurements are the measuring
 * stick every candidate is scored against.
 *
 *   Upload  - single-pass, constant quality (CRF 18).
 *   Live    - single-pass ABR at the resolution's ladder bitrate, with
 *             effort *inversely proportional to resolution* so the
 *             real-time bound holds.
 *   Vod     - two-pass ABR at the ladder bitrate, default effort.
 *   Popular - two-pass at the ladder bitrate, maximum effort.
 *   Platform- identical to Vod (only the machine changes).
 */

#include <map>
#include <string>

#include "core/scenario.h"
#include "core/transcoder.h"
#include "video/video.h"

namespace vbench::core {

/**
 * The per-resolution target bitrate ladder, expressed in bits per
 * pixel per frame (multiply by the pixel rate for bits/second).
 * Smaller frames get relatively more bits, as real ladders do.
 */
double ladderBitsPerPixel(int width, int height);

/** Ladder target in bits/second for a clip's geometry. */
double ladderBitrateBps(int width, int height, double fps);

/**
 * Live-reference effort: inversely proportional to resolution so the
 * software reference meets its latency bound (§4.2).
 */
int liveReferenceEffort(int width, int height);

/** Build the reference TranscodeRequest for a scenario and geometry. */
TranscodeRequest referenceRequest(Scenario scenario, int width, int height,
                                  double fps);

/**
 * Computes and caches reference transcodes per (clip name, scenario).
 * References are always VBC software encodes measured on this machine,
 * exactly as the vbench reference data was measured on the paper's
 * i7-6700K.
 */
class ReferenceStore
{
  public:
    /**
     * Reference outcome for a clip + scenario. The universal input
     * stream must already be the clip's upload (see
     * makeUniversalStream); it is reused across scenarios.
     */
    const TranscodeOutcome &get(const std::string &clip_name,
                                Scenario scenario,
                                const codec::ByteBuffer &universal,
                                const video::Video &original);

  private:
    std::map<std::pair<std::string, Scenario>, TranscodeOutcome> cache_;
};

} // namespace vbench::core
