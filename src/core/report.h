#pragma once

/**
 * @file
 * Fixed-width table / series formatting for benchmark output, so each
 * bench binary prints rows shaped like the paper's tables and figure
 * series — plus the machine-readable RunReport every transcode / bench
 * run can emit as one JSON document per line (VBENCH_METRICS_OUT).
 */

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/measure.h"
#include "obs/metrics.h"
#include "obs/stage.h"

namespace vbench::core {

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 2);

/** Simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with column auto-sizing and a header rule. */
    void print(std::ostream &out) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Print a named data series (figure reproduction format): one
 * "# series: <name>" line then "x y" pairs, easily gnuplot-able.
 */
void printSeries(std::ostream &out, const std::string &name,
                 const std::vector<std::pair<double, double>> &points);

/**
 * One machine-readable record of a transcode or bench run: the
 * measurement triple, wall-clock / modeled seconds, output size, the
 * per-stage time breakdown, and free-form extra numbers.
 */
struct RunReport {
    std::string label;    ///< clip / row identifier, caller-chosen
    std::string backend;  ///< encoder name (toString(EncoderKind), ...)
    std::string kernel_isa;  ///< active pixel-kernel ISA (scalar/sse2/avx2)
    Measurement m;
    double seconds = 0;
    size_t stream_bytes = 0;
    /// Effective intra-frame wavefront width of the encode (1 =
    /// serial; see TranscodeRequest::frame_threads).
    int frame_threads = 1;
    obs::StageTotals stages;
    std::vector<std::pair<std::string, double>> extra;
    /// Free-form extra strings ("trace_id" linking the report line to
    /// its span tree in the Chrome trace, exemplar labels, ...).
    std::vector<std::pair<std::string, std::string>> extra_str;
};

/**
 * Serialize a report as a single-line JSON object. Only nonzero stage
 * entries are included. When `metrics` is given, its full dump is
 * embedded under a "metrics" key.
 */
std::string toJson(const RunReport &report,
                   const obs::MetricsRegistry *metrics = nullptr);

/**
 * Append `toJson(report)` as one line to the VBENCH_METRICS_OUT
 * destination ("-" for stdout). Returns false (and writes nothing)
 * when run reporting is disabled or the file cannot be opened.
 */
bool emitRunReport(const RunReport &report);

} // namespace vbench::core
