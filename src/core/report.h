#pragma once

/**
 * @file
 * Fixed-width table / series formatting for benchmark output, so each
 * bench binary prints rows shaped like the paper's tables and figure
 * series.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace vbench::core {

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 2);

/** Simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with column auto-sizing and a header rule. */
    void print(std::ostream &out) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Print a named data series (figure reproduction format): one
 * "# series: <name>" line then "x y" pairs, easily gnuplot-able.
 */
void printSeries(std::ostream &out, const std::string &name,
                 const std::vector<std::pair<double, double>> &points);

} // namespace vbench::core
