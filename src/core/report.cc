#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace vbench::core {

std::string
fmt(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &out) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                << row[c];
        }
        out << "\n";
    };

    printRow(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
}

void
printSeries(std::ostream &out, const std::string &name,
            const std::vector<std::pair<double, double>> &points)
{
    out << "# series: " << name << "\n";
    for (const auto &[x, y] : points)
        out << x << " " << y << "\n";
    out << "\n";
}

} // namespace vbench::core
