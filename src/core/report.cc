#include "core/report.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/obs.h"

namespace vbench::core {

std::string
fmt(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &out) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                << row[c];
        }
        out << "\n";
    };

    printRow(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
}

void
printSeries(std::ostream &out, const std::string &name,
            const std::vector<std::pair<double, double>> &points)
{
    out << "# series: " << name << "\n";
    for (const auto &[x, y] : points)
        out << x << " " << y << "\n";
    out << "\n";
}

std::string
toJson(const RunReport &report, const obs::MetricsRegistry *metrics)
{
    std::ostringstream ss;
    ss << "{" << obs::jsonString("label") << ":"
       << obs::jsonString(report.label) << ","
       << obs::jsonString("backend") << ":"
       << obs::jsonString(report.backend) << ",";
    if (!report.kernel_isa.empty())
        ss << obs::jsonString("kernel_isa") << ":"
           << obs::jsonString(report.kernel_isa) << ",";
    ss << obs::jsonString("seconds") << ":"
       << obs::jsonNumber(report.seconds) << ","
       << obs::jsonString("stream_bytes") << ":" << report.stream_bytes
       << "," << obs::jsonString("frame_threads") << ":"
       << report.frame_threads << "," << obs::jsonString("speed_mpix_s") << ":"
       << obs::jsonNumber(report.m.speed_mpix_s) << ","
       << obs::jsonString("bitrate_bpps") << ":"
       << obs::jsonNumber(report.m.bitrate_bpps) << ","
       << obs::jsonString("psnr_db") << ":"
       << obs::jsonNumber(report.m.psnr_db);

    ss << "," << obs::jsonString("stages") << ":{";
    bool first = true;
    for (int i = 0; i < obs::kNumStages; ++i) {
        const auto stage = static_cast<obs::Stage>(i);
        if (report.stages.get(stage) == 0.0)
            continue;
        if (!first)
            ss << ",";
        first = false;
        ss << obs::jsonString(obs::toString(stage)) << ":"
           << obs::jsonNumber(report.stages.get(stage));
    }
    ss << "}";

    if (!report.extra.empty()) {
        ss << "," << obs::jsonString("extra") << ":{";
        first = true;
        for (const auto &[key, value] : report.extra) {
            if (!first)
                ss << ",";
            first = false;
            ss << obs::jsonString(key) << ":" << obs::jsonNumber(value);
        }
        ss << "}";
    }

    if (!report.extra_str.empty()) {
        ss << "," << obs::jsonString("extra_str") << ":{";
        first = true;
        for (const auto &[key, value] : report.extra_str) {
            if (!first)
                ss << ",";
            first = false;
            ss << obs::jsonString(key) << ":" << obs::jsonString(value);
        }
        ss << "}";
    }

    if (metrics) {
        ss << "," << obs::jsonString("metrics") << ":";
        metrics->writeJson(ss);
    }
    ss << "}";
    return ss.str();
}

bool
emitRunReport(const RunReport &report)
{
    if (!obs::metricsEnabled())
        return false;
    const std::string &path = obs::config().metrics_path;
    const std::string line = toJson(report);
    if (path == "-") {
        std::cout << line << "\n";
        return true;
    }
    std::ofstream out(path, std::ios::app);
    if (!out)
        return false;
    out << line << "\n";
    return static_cast<bool>(out);
}

} // namespace vbench::core
