#pragma once

/**
 * @file
 * vbench scoring functions and constraints (paper Table 1).
 */

#include <optional>
#include <string>

#include "core/measure.h"
#include "core/scenario.h"

namespace vbench::core {

/**
 * Improvement ratios against a reference transcode. Values above 1
 * mean the new solution is better in that dimension:
 *   S = speed_new / speed_ref
 *   B = bitrate_ref / bitrate_new
 *   Q = quality_new / quality_ref   (PSNR in dB)
 */
struct Ratios {
    double s = 0;
    double b = 0;
    double q = 0;
};

/** Compute S/B/Q ratios from two measurements. */
Ratios computeRatios(const Measurement &reference,
                     const Measurement &candidate);

/** Outcome of scoring: either a score or the violated constraint. */
struct ScoreResult {
    bool valid = false;
    double score = 0;
    std::string reason;  ///< violated constraint when !valid
};

/** PSNR above which a transcode is considered visually lossless. */
inline constexpr double kVisuallyLosslessDb = 50.0;

/** Tolerance band for the Platform scenario's B = Q = 1 requirement. */
inline constexpr double kPlatformTolerance = 0.02;

/**
 * Apply a scenario's constraint and scoring function (Table 1).
 *
 * @param scenario which pipeline is being scored.
 * @param ratios S/B/Q against the scenario reference.
 * @param candidate the candidate's raw measurement (for the Live
 *        real-time test and the VOD visually-lossless escape hatch).
 * @param output_mpix_s the output video's pixel rate, i.e. the
 *        real-time bar a Live transcode must clear.
 */
ScoreResult scoreScenario(Scenario scenario, const Ratios &ratios,
                          const Measurement &candidate,
                          double output_mpix_s);

} // namespace vbench::core
