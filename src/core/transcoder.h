#pragma once

/**
 * @file
 * The unified transcoder driver: decode a VBC "universal format"
 * stream and re-encode it with any of the encoders vbench evaluates —
 * the VBC software encoder at an effort level, the two NGC
 * next-generation profiles, or a fixed-function hardware model.
 * Software paths report wall-clock time; hardware paths report the
 * pipeline model's time.
 */

#include <atomic>
#include <optional>
#include <string>

#include "codec/preset.h"
#include "codec/ratecontrol.h"
#include "codec/types.h"
#include "core/measure.h"
#include "core/report.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "uarch/probe.h"
#include "video/video.h"

namespace vbench::core {

/** The encoder back-ends a transcode can target. */
enum class EncoderKind {
    Vbc = 0,      ///< the reference software encoder (libx264 analogue)
    NgcHevc,      ///< next-gen codec, HEVC-like profile
    NgcVp9,       ///< next-gen codec, VP9-like profile
    NvencLike,    ///< fixed-function hardware model
    QsvLike,      ///< fixed-function hardware model
};

const char *toString(EncoderKind kind);

/** What to run. */
struct TranscodeRequest {
    EncoderKind kind = EncoderKind::Vbc;
    codec::RateControlConfig rc;
    int effort = 5;     ///< VBC effort dial
    int ngc_speed = 0;  ///< NGC speed dial
    int gop = 30;
    /// VBC entropy backend override (-1 auto): the Live reference
    /// forces the arithmetic coder even at fast efforts, as real fast
    /// presets keep CABAC.
    int entropy_override = -1;
    /// VBC deblocking override (-1 auto, else 0/1), for ablations.
    int deblock_override = -1;
    /// Explicit VBC tool set bypassing the effort dial (ablations and
    /// the frozen-silicon hardware models).
    std::optional<codec::ToolPreset> tools_override;
    uarch::UarchProbe *probe = nullptr;
    /**
     * Intra-frame wavefront threads for the software encoders (VBC and
     * NGC). 0 resolves VBENCH_FRAME_THREADS; either way the request
     * passes through the sched::decideFrameThreads() oversubscription
     * guard, which clamps the width so frame_threads x active_jobs
     * never exceeds the shared pool budget. Bit-exact: the emitted
     * stream is byte-identical for every effective value. Hardware
     * model backends ignore it.
     */
    int frame_threads = 0;
    /**
     * Entropy slice bands per frame for the software encoders (VBC and
     * NGC). 0 resolves VBENCH_SLICES (core::RuntimeConfig); 1 is the
     * legacy single-segment payload, byte-identical to pre-slice
     * streams. Values above 1 cut each frame into that many
     * independently coded horizontal bands so the entropy pass runs
     * slice-parallel on the wavefront worker set — a small bitrate
     * overhead (reset contexts, slice length prefixes) buys scaling
     * past the Amdahl ceiling of the serial entropy tail. Clamped to
     * the frame's MB/SB row count. Hardware model backends ignore it.
     */
    int slice_count = 0;
    /// Cooperative cancellation: when set and it becomes true, the
    /// transcode aborts at the next phase boundary with
    /// `error == "cancelled"`. The scheduler wires each job's handle
    /// here; a finished phase is never rolled back. The software
    /// encoders also poll it between wavefront rows mid-frame.
    const std::atomic<bool> *cancel = nullptr;
    /// Stage tracer. Null falls back to the process-wide tracer
    /// (enabled via VBENCH_TRACE); when that is also null, every
    /// instrumentation point costs one predictable branch.
    obs::Tracer *tracer = nullptr;
    /**
     * Request-scoped span identity. Invalid (the default) means this
     * transcode is not part of a distributed trace and costs nothing.
     * The service mints one context per client request and derives a
     * child per segment; the scheduler propagates it into the worker's
     * encode slice and flow arrows, so one request renders as a single
     * connected tree across threads (obs/span.h).
     */
    obs::SpanContext span;
    /// Metrics sink. Null falls back to the global registry when
    /// VBENCH_METRICS_OUT is set, else metrics are skipped entirely.
    obs::MetricsRegistry *metrics = nullptr;
    /**
     * Split-and-stitch: force an IDR and restart the GOP phase every N
     * source frames (<= 0 off). A segment encoded with this set plus
     * `rc_in` chained from the previous segment stitches into a stream
     * identical to the whole-file closed-GOP encode (codec/stitch.h).
     * Hardware model backends ignore it (their silicon pipelines are
     * driven per whole request).
     */
    int segment_frames = 0;
    /// Rate-controller state carried in from the preceding segment of
    /// a split-and-stitch chain; empty starts fresh.
    std::optional<codec::RcSnapshot> rc_in;
    /// Two-pass only: whole-clip pass-1 stats collected externally
    /// (codec::collectPassOneStats / ngc::collectNgcPassOneStats per
    /// segment, concatenated); skips the internal analysis pass.
    const codec::PassOneStats *pass_one = nullptr;

    /**
     * Check the request for out-of-range knobs and inconsistent rate
     * control before any work happens. Returns the empty string when
     * the request is runnable, else a descriptive one-line error.
     * transcode() and the scheduler call this first and fail fast with
     * `TranscodeOutcome::error` — nothing is silently clamped.
     */
    std::string validate() const;
};

/** What happened. */
struct TranscodeOutcome {
    Measurement m;
    codec::ByteBuffer stream;
    double seconds = 0;
    bool ok = false;
    std::string error;
    /// Per-stage time breakdown. Phase stages (decode_input, encode,
    /// decode_output, measure, hw_pipeline) are always populated; leaf
    /// stages only when a tracer was active for the run.
    obs::StageTotals stages;
    /// Effective intra-frame wavefront width the encode ran with,
    /// after the oversubscription guard (1 = serial analysis).
    int frame_threads = 1;
    /// Effective entropy slice count the encode ran with (1 = legacy
    /// single-segment payloads, serial entropy).
    int slice_count = 1;
    /// Rate-controller state after the encode — feed into the next
    /// segment's TranscodeRequest::rc_in to chain a split-and-stitch
    /// transcode.
    codec::RcSnapshot rc_state;
    /**
     * Where this request's latency went (milliseconds). transcode()
     * fills encode_ms (its own wall clock); the scheduler adds
     * queue_wait_ms and the service adds rc_chain_ms / stitch_ms, so
     * a service segment's components sum to its measured latency.
     */
    obs::CriticalPath critical_path;
};

/**
 * Run one transcode.
 *
 * @param input a VBC universal-format stream (decoded as the first
 *        half of the transcode; its time is part of the measurement).
 * @param original pristine frames for the quality measurement.
 */
TranscodeOutcome transcode(const codec::ByteBuffer &input,
                           const video::Video &original,
                           const TranscodeRequest &request);

/**
 * Produce the "universal format" upload stream for a clip: the
 * high-quality single-pass intermediate every later transcode decodes
 * (§2.5's first pipeline stage). A positive `segment_frames` forces
 * IDRs on segment boundaries so the stream can be cut into
 * independently decodable segments with codec::splitStream (the
 * service's ingest path).
 */
codec::ByteBuffer makeUniversalStream(const video::Video &original,
                                      int segment_frames = 0);

/** Build the machine-readable record of one finished transcode. */
RunReport makeRunReport(std::string label, const TranscodeRequest &request,
                        const TranscodeOutcome &outcome);

} // namespace vbench::core
