#include "core/scoring.h"

#include <cmath>

namespace vbench::core {

const char *
toString(Scenario scenario)
{
    switch (scenario) {
      case Scenario::Upload: return "upload";
      case Scenario::Live: return "live";
      case Scenario::Vod: return "vod";
      case Scenario::Popular: return "popular";
      case Scenario::Platform: return "platform";
    }
    return "unknown";
}

Ratios
computeRatios(const Measurement &reference, const Measurement &candidate)
{
    Ratios r;
    if (reference.speed_mpix_s > 0)
        r.s = candidate.speed_mpix_s / reference.speed_mpix_s;
    if (candidate.bitrate_bpps > 0)
        r.b = reference.bitrate_bpps / candidate.bitrate_bpps;
    if (reference.psnr_db > 0)
        r.q = candidate.psnr_db / reference.psnr_db;
    return r;
}

ScoreResult
scoreScenario(Scenario scenario, const Ratios &r,
              const Measurement &candidate, double output_mpix_s)
{
    ScoreResult result;
    switch (scenario) {
      case Scenario::Upload:
        // Temporary file: bitrate nearly free, but bounded at 5x.
        if (r.b <= 0.2) {
            result.reason = "bitrate more than 5x reference (B <= 0.2)";
            return result;
        }
        result.valid = true;
        result.score = r.s * r.q;
        return result;

      case Scenario::Live:
        // Must not lag behind the output pixel rate.
        if (candidate.speed_mpix_s < output_mpix_s) {
            result.reason = "slower than real time";
            return result;
        }
        result.valid = true;
        result.score = r.b * r.q;
        return result;

      case Scenario::Vod:
        // Quality must hold unless visually lossless anyway.
        if (r.q < 1.0 && candidate.psnr_db < kVisuallyLosslessDb) {
            result.reason = "quality below reference (Q < 1)";
            return result;
        }
        result.valid = true;
        result.score = r.s * r.b;
        return result;

      case Scenario::Popular:
        if (r.b < 1.0) {
            result.reason = "bitrate above reference (B < 1)";
            return result;
        }
        if (r.q < 1.0) {
            result.reason = "quality below reference (Q < 1)";
            return result;
        }
        if (r.s < 0.1) {
            result.reason = "more than 10x slower (S < 0.1)";
            return result;
        }
        result.valid = true;
        result.score = r.b * r.q;
        return result;

      case Scenario::Platform:
        if (std::abs(r.b - 1.0) > kPlatformTolerance ||
            std::abs(r.q - 1.0) > kPlatformTolerance) {
            result.reason = "bitstream not identical (B, Q != 1)";
            return result;
        }
        result.valid = true;
        result.score = r.s;
        return result;
    }
    result.reason = "unknown scenario";
    return result;
}

} // namespace vbench::core
