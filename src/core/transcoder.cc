#include "core/transcoder.h"

#include <cassert>
#include <sstream>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/preset.h"
#include "core/encoder_backend.h"
#include "core/runtime_config.h"
#include "kernels/kernel_ops.h"
#include "obs/clock.h"
#include "obs/obs.h"
#include "sched/frame_threads.h"

namespace vbench::core {

const char *
toString(EncoderKind kind)
{
    switch (kind) {
      case EncoderKind::Vbc: return "vbc";
      case EncoderKind::NgcHevc: return "ngc-hevc";
      case EncoderKind::NgcVp9: return "ngc-vp9";
      case EncoderKind::NvencLike: return "nvenc-like";
      case EncoderKind::QsvLike: return "qsv-like";
    }
    return "unknown";
}

std::string
TranscodeRequest::validate() const
{
    std::ostringstream err;
    switch (kind) {
      case EncoderKind::Vbc:
      case EncoderKind::NgcHevc:
      case EncoderKind::NgcVp9:
      case EncoderKind::NvencLike:
      case EncoderKind::QsvLike:
        break;
      default:
        err << "unknown encoder kind "
            << static_cast<int>(kind);
        return err.str();
    }
    if (effort < 0 || effort >= codec::kNumEfforts) {
        err << "effort " << effort << " out of range [0, "
            << codec::kNumEfforts - 1 << "]";
        return err.str();
    }
    if (ngc_speed < 0 || ngc_speed > 2) {
        err << "ngc_speed " << ngc_speed << " out of range [0, 2]";
        return err.str();
    }
    if (gop < 0) {
        err << "gop " << gop
            << " is negative (use 0 for a single leading I frame)";
        return err.str();
    }
    if (entropy_override != -1 &&
        entropy_override != static_cast<int>(codec::EntropyMode::Vlc) &&
        entropy_override != static_cast<int>(codec::EntropyMode::Arith)) {
        err << "entropy_override " << entropy_override
            << " is not -1 (auto), 0 (vlc), or 1 (arith)";
        return err.str();
    }
    if (deblock_override < -1 || deblock_override > 1) {
        err << "deblock_override " << deblock_override
            << " is not -1 (auto), 0 (off), or 1 (on)";
        return err.str();
    }
    if (frame_threads < 0 || frame_threads > sched::kMaxFrameThreads) {
        err << "frame_threads " << frame_threads << " out of range [0, "
            << sched::kMaxFrameThreads << "] (0 = VBENCH_FRAME_THREADS)";
        return err.str();
    }
    if (slice_count < 0 ||
        slice_count > static_cast<int>(codec::kMaxSlices)) {
        err << "slice_count " << slice_count << " out of range [0, "
            << codec::kMaxSlices << "] (0 = VBENCH_SLICES)";
        return err.str();
    }
    // Rate-control sanity: the knob the selected mode reads must be in
    // range; knobs other modes read are ignored and not judged.
    switch (rc.mode) {
      case codec::RcMode::Cqp:
        if (rc.qp < codec::kMinQp || rc.qp > codec::kMaxQp) {
            err << "rc.qp " << rc.qp << " out of range ["
                << codec::kMinQp << ", " << codec::kMaxQp << "]";
            return err.str();
        }
        break;
      case codec::RcMode::Crf:
        if (rc.crf < codec::kMinQp || rc.crf > codec::kMaxQp) {
            err << "rc.crf " << rc.crf << " out of range ["
                << codec::kMinQp << ", " << codec::kMaxQp << "]";
            return err.str();
        }
        break;
      case codec::RcMode::Abr:
      case codec::RcMode::TwoPass:
        if (!(rc.bitrate_bps > 0)) {
            err << "rc.bitrate_bps " << rc.bitrate_bps
                << " must be positive for bitrate-driven modes";
            return err.str();
        }
        break;
      default:
        err << "unknown rc mode " << static_cast<int>(rc.mode);
        return err.str();
    }
    if (!(rc.fps > 0)) {
        err << "rc.fps " << rc.fps << " must be positive";
        return err.str();
    }
    if (rc.min_qp < codec::kMinQp || rc.min_qp > codec::kMaxQp) {
        err << "rc.min_qp " << rc.min_qp << " out of range ["
            << codec::kMinQp << ", " << codec::kMaxQp << "]";
        return err.str();
    }
    if (segment_frames < 0) {
        err << "segment_frames " << segment_frames
            << " is negative (use 0 for a whole-file encode)";
        return err.str();
    }
    if (pass_one && rc.mode != codec::RcMode::TwoPass) {
        err << "pass_one stats supplied but rc mode is not two-pass";
        return err.str();
    }
    return std::string();
}

codec::ByteBuffer
makeUniversalStream(const video::Video &original, int segment_frames)
{
    // High-quality single-pass intermediate: fast effort, fine
    // quantizer, so downstream transcodes see a faithful master.
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Crf;
    cfg.rc.crf = 14;
    cfg.effort = 3;
    cfg.gop = 30;
    cfg.segment_frames = segment_frames;
    codec::Encoder encoder(cfg);
    return encoder.encode(original).stream;
}

TranscodeOutcome
transcode(const codec::ByteBuffer &input, const video::Video &original,
          const TranscodeRequest &request)
{
    TranscodeOutcome outcome;
    // Fail fast on malformed requests: no clamping, no partial work.
    if (std::string invalid = request.validate(); !invalid.empty()) {
        outcome.error = "invalid request: " + invalid;
        return outcome;
    }
    const auto cancelled = [&request] {
        return request.cancel &&
            request.cancel->load(std::memory_order_relaxed);
    };
    if (cancelled()) {
        outcome.error = "cancelled";
        return outcome;
    }

    // Explicit sinks win; otherwise the env-configured globals apply.
    // NOTE: the global fallback assumes this is the only transcode
    // recording (see obs/obs.h); parallel callers pass per-worker
    // sinks, as sched::Scheduler does.
    obs::Tracer *tracer =
        request.tracer ? request.tracer : obs::globalTracer();
    obs::MetricsRegistry *metrics = request.metrics
        ? request.metrics
        : (obs::metricsEnabled() ? &obs::globalMetrics() : nullptr);
    // Detect the contract violation the fallback can't survive: two
    // transcodes attributing against the global sinks at once. The
    // guard only observes (the counter lands in the global registry);
    // debug builds additionally trip the assert so the misuse is loud
    // where it's cheap to be.
    const bool uses_global_fallback =
        (tracer && !request.tracer) || (metrics && !request.metrics);
    obs::GlobalAttributionGuard attribution_guard(uses_global_fallback);
    assert(!attribution_guard.contended() &&
           "concurrent transcode() calls must pass per-worker "
           "tracer/metrics sinks (see obs/obs.h)");
    const obs::StageTotals leaf_before =
        tracer ? tracer->stageTotals() : obs::StageTotals{};

    // Resolve the wavefront width through the oversubscription guard
    // now, while this job's ActiveJobScope (if scheduled) is counted,
    // and hand the backend the decided width so the encoders don't
    // re-run the guard.
    const sched::FrameThreadDecision ft_decision =
        sched::decideFrameThreads(request.frame_threads);
    outcome.frame_threads = ft_decision.threads;
    TranscodeRequest resolved = request;
    resolved.frame_threads = ft_decision.threads;
    // Resolve the slice count the same way (0 = the env knob) so the
    // outcome reports the effective value and the backends don't each
    // re-read the environment. Per-frame clamping to the MB/SB row
    // count still happens inside the encoders.
    resolved.slice_count = request.slice_count > 0
        ? request.slice_count
        : freshRuntimeConfig().slices;
    outcome.slice_count = resolved.slice_count;

    std::unique_ptr<EncoderBackend> backend =
        EncoderBackend::create(resolved, tracer);

    const double start = obs::nowSeconds();

    codec::DecoderConfig dec_cfg;
    dec_cfg.probe = request.probe;
    dec_cfg.tracer = tracer;
    std::optional<video::Video> decoded_input;
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::DecodeInput);
        decoded_input = codec::decode(input, dec_cfg);
    }
    outcome.stages.set(obs::Stage::DecodeInput,
                       obs::nowSeconds() - start);
    if (!decoded_input) {
        outcome.error = "input stream undecodable";
        return outcome;
    }
    if (cancelled()) {
        outcome.error = "cancelled";
        return outcome;
    }

    // Frame statistics survive the encode for the metrics sink.
    std::vector<codec::FrameStats> frame_stats;
    const double encode_start = obs::nowSeconds();
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::Encode);
        BackendEncodeResult enc = backend->encode(*decoded_input);
        outcome.stream = std::move(enc.encoded.stream);
        frame_stats = std::move(enc.encoded.frames);
        outcome.rc_state = enc.encoded.rc_state;
        if (enc.modeled_seconds) {
            // Fixed-function pipeline: report the model's time, and
            // expose it as its own phase stage.
            outcome.seconds = *enc.modeled_seconds;
            outcome.stages.set(obs::Stage::HwPipeline, outcome.seconds);
        } else {
            outcome.seconds = obs::nowSeconds() - start;
        }
    }
    outcome.stages.set(obs::Stage::Encode,
                       obs::nowSeconds() - encode_start);
    if (cancelled()) {
        outcome.error = "cancelled";
        return outcome;
    }

    // Decode our own output to measure true quality. This is
    // measurement overhead, not transcode work: it runs after the
    // `seconds` snapshot and stays off the tracer, so traced leaf
    // totals remain comparable to the reported wall clock.
    const double decode_out_start = obs::nowSeconds();
    std::optional<video::Video> decoded_output;
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::DecodeOutput);
        decoded_output = backend->decodeOutput(outcome.stream);
    }
    outcome.stages.set(obs::Stage::DecodeOutput,
                       obs::nowSeconds() - decode_out_start);
    if (!decoded_output) {
        outcome.error = "produced stream undecodable";
        return outcome;
    }

    const double measure_start = obs::nowSeconds();
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::Measure);
        outcome.m = measure(original, *decoded_output,
                            outcome.stream.size(), outcome.seconds);
    }
    outcome.stages.set(obs::Stage::Measure,
                       obs::nowSeconds() - measure_start);
    outcome.ok = true;
    // The on-worker share of the critical path; the scheduler and
    // service layer in queue_wait / rc_chain / stitch around it.
    outcome.critical_path.encode_ms = outcome.seconds * 1e3;

    if (tracer) {
        // This run's leaf-stage share of the tracer's accumulation
        // (single writer per tracer assumed — see obs/obs.h).
        const obs::StageTotals delta =
            tracer->stageTotals().minus(leaf_before);
        for (int i = 0; i < obs::kNumStages; ++i) {
            const auto stage = static_cast<obs::Stage>(i);
            if (obs::isLeafStage(stage))
                outcome.stages.set(stage, delta.get(stage));
        }
    }

    if (metrics) {
        metrics->counter("transcode.runs").add();
        metrics->counter(std::string("transcode.runs.") +
                         toString(request.kind)).add();
        metrics->counter("encode.frames").add(frame_stats.size());
        obs::Histogram &frame_bytes =
            metrics->histogram("encode.frame_bytes");
        obs::Histogram &frame_qp = metrics->histogram("encode.frame_qp");
        uint64_t intra_mbs = 0;
        uint64_t skip_mbs = 0;
        for (const codec::FrameStats &f : frame_stats) {
            frame_bytes.observe(f.bytes);
            frame_qp.observe(static_cast<uint64_t>(f.qp));
            intra_mbs += f.intra_mbs;
            skip_mbs += f.skip_mbs;
        }
        metrics->counter("encode.intra_mbs").add(intra_mbs);
        metrics->counter("encode.skip_mbs").add(skip_mbs);
        if (ft_decision.clamped)
            metrics->counter("encode.frame_threads_clamped").add();
        metrics->histogram("transcode.seconds_ms")
            .observe(static_cast<uint64_t>(outcome.seconds * 1e3));
    }

    return outcome;
}

RunReport
makeRunReport(std::string label, const TranscodeRequest &request,
              const TranscodeOutcome &outcome)
{
    RunReport report;
    report.label = std::move(label);
    report.backend = toString(request.kind);
    report.kernel_isa = kernels::isaName(kernels::activeIsa());
    report.m = outcome.m;
    report.seconds = outcome.seconds;
    report.stream_bytes = outcome.stream.size();
    report.stages = outcome.stages;
    report.frame_threads = outcome.frame_threads;
    report.extra.emplace_back("ok", outcome.ok ? 1.0 : 0.0);
    report.extra.emplace_back("slice_count", outcome.slice_count);
    if (request.span.valid())
        report.extra_str.emplace_back(
            "trace_id", std::to_string(request.span.trace_id));
    if (request.kind == EncoderKind::Vbc)
        report.extra.emplace_back("effort", request.effort);
    if (request.kind == EncoderKind::NgcHevc ||
        request.kind == EncoderKind::NgcVp9)
        report.extra.emplace_back("ngc_speed", request.ngc_speed);
    return report;
}

} // namespace vbench::core
