#include "core/transcoder.h"

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "hwenc/hwenc.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "obs/clock.h"
#include "obs/obs.h"

namespace vbench::core {

namespace {

/** Modeled fixed-function decode throughput, Mpixels/second. */
constexpr double kHwDecodeMpixS = 1600.0;

} // namespace

const char *
toString(EncoderKind kind)
{
    switch (kind) {
      case EncoderKind::Vbc: return "vbc";
      case EncoderKind::NgcHevc: return "ngc-hevc";
      case EncoderKind::NgcVp9: return "ngc-vp9";
      case EncoderKind::NvencLike: return "nvenc-like";
      case EncoderKind::QsvLike: return "qsv-like";
    }
    return "unknown";
}

codec::ByteBuffer
makeUniversalStream(const video::Video &original)
{
    // High-quality single-pass intermediate: fast effort, fine
    // quantizer, so downstream transcodes see a faithful master.
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Crf;
    cfg.rc.crf = 14;
    cfg.effort = 3;
    cfg.gop = 30;
    codec::Encoder encoder(cfg);
    return encoder.encode(original).stream;
}

TranscodeOutcome
transcode(const codec::ByteBuffer &input, const video::Video &original,
          const TranscodeRequest &request)
{
    TranscodeOutcome outcome;
    // Explicit sinks win; otherwise the env-configured globals apply.
    obs::Tracer *tracer =
        request.tracer ? request.tracer : obs::globalTracer();
    obs::MetricsRegistry *metrics = request.metrics
        ? request.metrics
        : (obs::metricsEnabled() ? &obs::globalMetrics() : nullptr);
    const obs::StageTotals leaf_before =
        tracer ? tracer->stageTotals() : obs::StageTotals{};

    const double start = obs::nowSeconds();

    codec::DecoderConfig dec_cfg;
    dec_cfg.probe = request.probe;
    dec_cfg.tracer = tracer;
    std::optional<video::Video> decoded_input;
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::DecodeInput);
        decoded_input = codec::decode(input, dec_cfg);
    }
    outcome.stages.set(obs::Stage::DecodeInput,
                       obs::nowSeconds() - start);
    if (!decoded_input) {
        outcome.error = "input stream undecodable";
        return outcome;
    }

    // Frame statistics survive the encode for the metrics sink.
    std::vector<codec::FrameStats> frame_stats;
    const double encode_start = obs::nowSeconds();
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::Encode);
        switch (request.kind) {
          case EncoderKind::Vbc: {
            codec::EncoderConfig cfg;
            cfg.rc = request.rc;
            cfg.effort = request.effort;
            cfg.gop = request.gop;
            cfg.entropy_override = request.entropy_override;
            cfg.probe = request.probe;
            cfg.tracer = tracer;
            codec::Encoder encoder(cfg);
            codec::EncodeResult enc = encoder.encode(*decoded_input);
            outcome.stream = std::move(enc.stream);
            frame_stats = std::move(enc.frames);
            outcome.seconds = obs::nowSeconds() - start;
            break;
          }
          case EncoderKind::NgcHevc:
          case EncoderKind::NgcVp9: {
            ngc::NgcConfig cfg;
            cfg.rc = request.rc;
            cfg.profile = request.kind == EncoderKind::NgcHevc
                ? ngc::NgcProfile::HevcLike
                : ngc::NgcProfile::Vp9Like;
            cfg.speed = request.ngc_speed;
            cfg.gop = request.gop;
            cfg.probe = request.probe;
            cfg.tracer = tracer;
            ngc::NgcEncoder encoder(cfg);
            codec::EncodeResult enc = encoder.encode(*decoded_input);
            outcome.stream = std::move(enc.stream);
            frame_stats = std::move(enc.frames);
            outcome.seconds = obs::nowSeconds() - start;
            break;
          }
          case EncoderKind::NvencLike:
          case EncoderKind::QsvLike: {
            const hwenc::HwEncoderSpec spec =
                request.kind == EncoderKind::NvencLike
                ? hwenc::nvencLikeSpec()
                : hwenc::qsvLikeSpec();
            hwenc::HwEncodeResult hw =
                hwenc::hwEncode(spec, *decoded_input, request.rc, tracer);
            outcome.stream = std::move(hw.encoded.stream);
            frame_stats = std::move(hw.encoded.frames);
            // Hardware time is the pipeline model's, not the
            // simulation's wall clock: modeled decode plus modeled
            // encode.
            outcome.seconds = hw.seconds +
                static_cast<double>(decoded_input->totalPixels()) /
                    (kHwDecodeMpixS * 1e6);
            outcome.stages.set(obs::Stage::HwPipeline, outcome.seconds);
            break;
          }
        }
    }
    outcome.stages.set(obs::Stage::Encode,
                       obs::nowSeconds() - encode_start);

    // Decode our own output to measure true quality. This is
    // measurement overhead, not transcode work: it runs after the
    // `seconds` snapshot and stays off the tracer, so traced leaf
    // totals remain comparable to the reported wall clock.
    const double decode_out_start = obs::nowSeconds();
    std::optional<video::Video> decoded_output;
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::DecodeOutput);
        if (request.kind == EncoderKind::NgcHevc ||
            request.kind == EncoderKind::NgcVp9) {
            decoded_output = ngc::ngcDecode(outcome.stream);
        } else {
            decoded_output = codec::decode(outcome.stream);
        }
    }
    outcome.stages.set(obs::Stage::DecodeOutput,
                       obs::nowSeconds() - decode_out_start);
    if (!decoded_output) {
        outcome.error = "produced stream undecodable";
        return outcome;
    }

    const double measure_start = obs::nowSeconds();
    {
        obs::ScopedSpan span(tracer, obs::Track::Transcode,
                             obs::Stage::Measure);
        outcome.m = measure(original, *decoded_output,
                            outcome.stream.size(), outcome.seconds);
    }
    outcome.stages.set(obs::Stage::Measure,
                       obs::nowSeconds() - measure_start);
    outcome.ok = true;

    if (tracer) {
        // This run's leaf-stage share of the tracer's accumulation.
        const obs::StageTotals delta =
            tracer->stageTotals().minus(leaf_before);
        for (int i = 0; i < obs::kNumStages; ++i) {
            const auto stage = static_cast<obs::Stage>(i);
            if (obs::isLeafStage(stage))
                outcome.stages.set(stage, delta.get(stage));
        }
    }

    if (metrics) {
        metrics->counter("transcode.runs").add();
        metrics->counter(std::string("transcode.runs.") +
                         toString(request.kind)).add();
        metrics->counter("encode.frames").add(frame_stats.size());
        obs::Histogram &frame_bytes =
            metrics->histogram("encode.frame_bytes");
        obs::Histogram &frame_qp = metrics->histogram("encode.frame_qp");
        uint64_t intra_mbs = 0;
        uint64_t skip_mbs = 0;
        for (const codec::FrameStats &f : frame_stats) {
            frame_bytes.observe(f.bytes);
            frame_qp.observe(static_cast<uint64_t>(f.qp));
            intra_mbs += f.intra_mbs;
            skip_mbs += f.skip_mbs;
        }
        metrics->counter("encode.intra_mbs").add(intra_mbs);
        metrics->counter("encode.skip_mbs").add(skip_mbs);
        metrics->histogram("transcode.seconds_ms")
            .observe(static_cast<uint64_t>(outcome.seconds * 1e3));
    }

    return outcome;
}

RunReport
makeRunReport(std::string label, const TranscodeRequest &request,
              const TranscodeOutcome &outcome)
{
    RunReport report;
    report.label = std::move(label);
    report.backend = toString(request.kind);
    report.m = outcome.m;
    report.seconds = outcome.seconds;
    report.stream_bytes = outcome.stream.size();
    report.stages = outcome.stages;
    report.extra.emplace_back("ok", outcome.ok ? 1.0 : 0.0);
    if (request.kind == EncoderKind::Vbc)
        report.extra.emplace_back("effort", request.effort);
    if (request.kind == EncoderKind::NgcHevc ||
        request.kind == EncoderKind::NgcVp9)
        report.extra.emplace_back("ngc_speed", request.ngc_speed);
    return report;
}

} // namespace vbench::core
