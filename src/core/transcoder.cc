#include "core/transcoder.h"

#include <chrono>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "hwenc/hwenc.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"

namespace vbench::core {

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Modeled fixed-function decode throughput, Mpixels/second. */
constexpr double kHwDecodeMpixS = 1600.0;

} // namespace

const char *
toString(EncoderKind kind)
{
    switch (kind) {
      case EncoderKind::Vbc: return "vbc";
      case EncoderKind::NgcHevc: return "ngc-hevc";
      case EncoderKind::NgcVp9: return "ngc-vp9";
      case EncoderKind::NvencLike: return "nvenc-like";
      case EncoderKind::QsvLike: return "qsv-like";
    }
    return "unknown";
}

codec::ByteBuffer
makeUniversalStream(const video::Video &original)
{
    // High-quality single-pass intermediate: fast effort, fine
    // quantizer, so downstream transcodes see a faithful master.
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Crf;
    cfg.rc.crf = 14;
    cfg.effort = 3;
    cfg.gop = 30;
    codec::Encoder encoder(cfg);
    return encoder.encode(original).stream;
}

TranscodeOutcome
transcode(const codec::ByteBuffer &input, const video::Video &original,
          const TranscodeRequest &request)
{
    TranscodeOutcome outcome;
    const double start = now();

    codec::DecoderConfig dec_cfg;
    dec_cfg.probe = request.probe;
    const auto decoded_input = codec::decode(input, dec_cfg);
    if (!decoded_input) {
        outcome.error = "input stream undecodable";
        return outcome;
    }

    switch (request.kind) {
      case EncoderKind::Vbc: {
        codec::EncoderConfig cfg;
        cfg.rc = request.rc;
        cfg.effort = request.effort;
        cfg.gop = request.gop;
        cfg.entropy_override = request.entropy_override;
        cfg.probe = request.probe;
        codec::Encoder encoder(cfg);
        outcome.stream = encoder.encode(*decoded_input).stream;
        outcome.seconds = now() - start;
        break;
      }
      case EncoderKind::NgcHevc:
      case EncoderKind::NgcVp9: {
        ngc::NgcConfig cfg;
        cfg.rc = request.rc;
        cfg.profile = request.kind == EncoderKind::NgcHevc
            ? ngc::NgcProfile::HevcLike
            : ngc::NgcProfile::Vp9Like;
        cfg.speed = request.ngc_speed;
        cfg.gop = request.gop;
        cfg.probe = request.probe;
        ngc::NgcEncoder encoder(cfg);
        outcome.stream = encoder.encode(*decoded_input).stream;
        outcome.seconds = now() - start;
        break;
      }
      case EncoderKind::NvencLike:
      case EncoderKind::QsvLike: {
        const hwenc::HwEncoderSpec spec =
            request.kind == EncoderKind::NvencLike
            ? hwenc::nvencLikeSpec()
            : hwenc::qsvLikeSpec();
        const hwenc::HwEncodeResult hw =
            hwenc::hwEncode(spec, *decoded_input, request.rc);
        outcome.stream = hw.encoded.stream;
        // Hardware time is the pipeline model's, not the simulation's
        // wall clock: modeled decode plus modeled encode.
        outcome.seconds = hw.seconds +
            static_cast<double>(decoded_input->totalPixels()) /
                (kHwDecodeMpixS * 1e6);
        break;
      }
    }

    // Decode our own output to measure true quality.
    std::optional<video::Video> decoded_output;
    if (request.kind == EncoderKind::NgcHevc ||
        request.kind == EncoderKind::NgcVp9) {
        decoded_output = ngc::ngcDecode(outcome.stream);
    } else {
        decoded_output = codec::decode(outcome.stream);
    }
    if (!decoded_output) {
        outcome.error = "produced stream undecodable";
        return outcome;
    }

    outcome.m = measure(original, *decoded_output, outcome.stream.size(),
                        outcome.seconds);
    outcome.ok = true;
    return outcome;
}

} // namespace vbench::core
