#include "core/encoder_backend.h"

#include <sstream>

#include "codec/decoder.h"
#include "hwenc/hwenc.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"

namespace vbench::core {

namespace {

/** Modeled fixed-function decode throughput, Mpixels/second. */
constexpr double kHwDecodeMpixS = 1600.0;

const char *
rcName(codec::RcMode mode)
{
    switch (mode) {
      case codec::RcMode::Cqp: return "cqp";
      case codec::RcMode::Crf: return "crf";
      case codec::RcMode::Abr: return "abr";
      case codec::RcMode::TwoPass: return "twopass";
    }
    return "unknown";
}

/** The reference software encoder at an effort level. */
class VbcBackend final : public EncoderBackend
{
  public:
    VbcBackend(const TranscodeRequest &request, obs::Tracer *tracer)
        : EncoderBackend(EncoderKind::Vbc)
    {
        config_.rc = request.rc;
        config_.effort = request.effort;
        config_.gop = request.gop;
        config_.entropy_override = request.entropy_override;
        config_.deblock_override = request.deblock_override;
        config_.tools_override = request.tools_override;
        config_.probe = request.probe;
        config_.tracer = tracer;
        config_.frame_threads = request.frame_threads;
        config_.slice_count = request.slice_count;
        config_.cancel = request.cancel;
        config_.segment_frames = request.segment_frames;
        config_.rc_in = request.rc_in;
        config_.pass_one = request.pass_one;
    }

    BackendEncodeResult
    encode(const video::Video &input) override
    {
        codec::Encoder encoder(config_);
        return {encoder.encode(input), std::nullopt};
    }

    std::optional<video::Video>
    decodeOutput(const codec::ByteBuffer &stream) const override
    {
        return codec::decode(stream);
    }

    std::string
    describe() const override
    {
        std::ostringstream ss;
        ss << "vbc(effort=" << config_.effort
           << ", rc=" << rcName(config_.rc.mode) << ")";
        return ss.str();
    }

  private:
    codec::EncoderConfig config_;
};

/** The next-generation software encoder, either profile. */
class NgcBackend final : public EncoderBackend
{
  public:
    NgcBackend(const TranscodeRequest &request, obs::Tracer *tracer)
        : EncoderBackend(request.kind)
    {
        config_.rc = request.rc;
        config_.profile = request.kind == EncoderKind::NgcHevc
            ? ngc::NgcProfile::HevcLike
            : ngc::NgcProfile::Vp9Like;
        config_.speed = request.ngc_speed;
        config_.gop = request.gop;
        config_.probe = request.probe;
        config_.tracer = tracer;
        config_.frame_threads = request.frame_threads;
        config_.slice_count = request.slice_count;
        config_.cancel = request.cancel;
        config_.segment_frames = request.segment_frames;
        config_.rc_in = request.rc_in;
        config_.pass_one = request.pass_one;
    }

    BackendEncodeResult
    encode(const video::Video &input) override
    {
        ngc::NgcEncoder encoder(config_);
        return {encoder.encode(input), std::nullopt};
    }

    std::optional<video::Video>
    decodeOutput(const codec::ByteBuffer &stream) const override
    {
        return ngc::ngcDecode(stream);
    }

    std::string
    describe() const override
    {
        std::ostringstream ss;
        ss << toString(kind()) << "(speed=" << config_.speed
           << ", rc=" << rcName(config_.rc.mode) << ")";
        return ss.str();
    }

  private:
    ngc::NgcConfig config_;
};

/** A fixed-function hardware pipeline model. */
class HwBackend final : public EncoderBackend
{
  public:
    HwBackend(const TranscodeRequest &request, obs::Tracer *tracer)
        : EncoderBackend(request.kind),
          spec_(request.kind == EncoderKind::NvencLike
                    ? hwenc::nvencLikeSpec()
                    : hwenc::qsvLikeSpec()),
          rc_(request.rc), tracer_(tracer)
    {
    }

    BackendEncodeResult
    encode(const video::Video &input) override
    {
        hwenc::HwEncodeResult hw =
            hwenc::hwEncode(spec_, input, rc_, tracer_);
        // Hardware time is the pipeline model's, not the simulation's
        // wall clock: modeled decode plus modeled encode.
        const double seconds = hw.seconds +
            static_cast<double>(input.totalPixels()) /
                (kHwDecodeMpixS * 1e6);
        return {std::move(hw.encoded), seconds};
    }

    std::optional<video::Video>
    decodeOutput(const codec::ByteBuffer &stream) const override
    {
        return codec::decode(stream);
    }

    std::string
    describe() const override
    {
        std::ostringstream ss;
        ss << toString(kind()) << "(rc=" << rcName(rc_.mode) << ")";
        return ss.str();
    }

  private:
    hwenc::HwEncoderSpec spec_;
    codec::RateControlConfig rc_;
    obs::Tracer *tracer_;
};

} // namespace

std::unique_ptr<EncoderBackend>
EncoderBackend::create(const TranscodeRequest &request,
                       obs::Tracer *tracer)
{
    switch (request.kind) {
      case EncoderKind::Vbc:
        return std::make_unique<VbcBackend>(request, tracer);
      case EncoderKind::NgcHevc:
      case EncoderKind::NgcVp9:
        return std::make_unique<NgcBackend>(request, tracer);
      case EncoderKind::NvencLike:
      case EncoderKind::QsvLike:
        return std::make_unique<HwBackend>(request, tracer);
    }
    return nullptr;
}

} // namespace vbench::core
