#include "core/reference.h"

namespace vbench::core {

double
ladderBitsPerPixel(int width, int height)
{
    const double pixels = static_cast<double>(width) * height;
    if (pixels <= 430e3)
        return 0.045;  // <= 480p
    if (pixels <= 1.0e6)
        return 0.035;  // 720p
    if (pixels <= 2.2e6)
        return 0.028;  // 1080p
    if (pixels <= 4.0e6)
        return 0.022;  // 1440p
    return 0.018;      // 4K
}

double
ladderBitrateBps(int width, int height, double fps)
{
    return ladderBitsPerPixel(width, height) *
        static_cast<double>(width) * height * fps;
}

int
liveReferenceEffort(int width, int height)
{
    // Calibrated to what this machine's single-pass encoder sustains
    // at each output pixel rate, mirroring the paper's "effort
    // inversely proportional to resolution" rule.
    const double pixels = static_cast<double>(width) * height;
    if (pixels <= 430e3)
        return 5;  // <= 480p
    if (pixels <= 1.0e6)
        return 5;  // 720p
    if (pixels <= 2.2e6)
        return 3;  // 1080p
    return 0;      // 4K: everything off to keep up
}

TranscodeRequest
referenceRequest(Scenario scenario, int width, int height, double fps)
{
    TranscodeRequest req;
    req.kind = EncoderKind::Vbc;
    req.gop = 30;
    switch (scenario) {
      case Scenario::Upload:
        req.rc.mode = codec::RcMode::Crf;
        req.rc.crf = 18;
        req.effort = 4;
        break;
      case Scenario::Live:
        req.rc.mode = codec::RcMode::Abr;
        req.rc.bitrate_bps = ladderBitrateBps(width, height, fps);
        req.effort = liveReferenceEffort(width, height);
        // HD and below leave headroom for CABAC-class entropy
        // coding; only the 4K real-time bound forces the cheap VLC
        // coder, like x264's ultrafast tier.
        if (req.effort >= 3) {
            req.entropy_override =
                static_cast<int>(codec::EntropyMode::Arith);
        }
        // Live streams keyframe frequently so viewers can join; the
        // software reference pays the same I-frame tax the hardware
        // pipelines do.
        req.gop = 6;
        break;
      case Scenario::Vod:
      case Scenario::Platform:
        req.rc.mode = codec::RcMode::TwoPass;
        req.rc.bitrate_bps = ladderBitrateBps(width, height, fps);
        req.effort = 5;
        break;
      case Scenario::Popular:
        req.rc.mode = codec::RcMode::TwoPass;
        req.rc.bitrate_bps = ladderBitrateBps(width, height, fps);
        req.effort = 9;
        break;
    }
    return req;
}

const TranscodeOutcome &
ReferenceStore::get(const std::string &clip_name, Scenario scenario,
                    const codec::ByteBuffer &universal,
                    const video::Video &original)
{
    const auto key = std::make_pair(clip_name, scenario);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    const TranscodeRequest req = referenceRequest(
        scenario, original.width(), original.height(), original.fps());
    TranscodeOutcome outcome = transcode(universal, original, req);
    return cache_.emplace(key, std::move(outcome)).first->second;
}

} // namespace vbench::core
