#pragma once

/**
 * @file
 * One home for every VBENCH_* environment knob (docs/SERVICE.md,
 * docs/FLEET.md). Before this header the knobs were parsed in six
 * different translation units with six slightly different ideas of
 * what a malformed value means (silently ignore, warn, clamp). Now:
 *
 *   VBENCH_JOBS            scheduler worker threads (positive int)
 *   VBENCH_FRAME_THREADS   intra-frame wavefront width (positive int)
 *   VBENCH_SLICES          entropy slice bands per frame (positive
 *                          int; 1 = legacy single-segment payloads)
 *   VBENCH_SEGMENT_FRAMES  frames per service segment (positive int)
 *   VBENCH_ARRIVAL_RATE    workload arrivals/second (positive float)
 *   VBENCH_ZIPF_S          workload Zipf popularity exponent
 *                          (positive float; higher = more head-heavy)
 *   VBENCH_ISA             kernel ISA pin (scalar|sse2|avx2|native)
 *   VBENCH_TRACE           Chrome trace output path
 *   VBENCH_METRICS_OUT     run-report JSONL path ("-" for stdout)
 *   VBENCH_PROM_OUT        Prometheus/OpenMetrics snapshot path
 *   VBENCH_FLEET           fleet topology spec (fleet::parseFleetSpec)
 *   VBENCH_FLEET_POLICY    fleet placement policy name
 *   VBENCH_FLEET_CALIB     fleet perf-model calibration cache path
 *   VBENCH_CACHE_MB        transcode output cache size, MB (positive
 *                          float; unset/0 = no cache, docs/CACHE.md)
 *   VBENCH_CACHE_POLICY    cache store-vs-recompute policy
 *                          (lru|always_store|always_recompute|
 *                          cost_aware)
 *   VBENCH_CACHE_GB_HOUR   cache storage price, $/GB-hour (positive
 *                          float; unset = the CacheConfig default)
 *   VBENCH_WORKERS         segment execution mode (local|proc):
 *                          local = in-process scheduler pool, proc =
 *                          fork/exec'd vbench_worker child processes
 *                          behind rpc::RemotePool (docs/RPC.md)
 *   VBENCH_RPC_TIMEOUT_MS  per-job deadline on a child worker
 *                          (positive int, ms; unset = 30000)
 *   VBENCH_RPC_RETRIES     re-dispatches after a worker death /
 *                          timeout / protocol error before degrading
 *                          to in-process (non-negative int; unset = 2)
 *   VBENCH_HEDGE_PCT       straggler-hedging percentile over
 *                          completed attempt latencies (float in
 *                          (0, 100]; unset = 99)
 *   VBENCH_WORKER_BIN      vbench_worker binary path override (path;
 *                          existence is checked at spawn time)
 *
 * RuntimeConfig::fromEnv() parses and validates all of them in one
 * pass and reports every malformed value. The cached runtimeConfig()
 * accessor and the per-call freshRuntimeConfig() helper fail fast —
 * print each error and exit(2) — instead of silently ignoring a typo
 * the way the old per-site parsers did. A bad VBENCH_JOBS now stops
 * the run with a message naming the variable, the value, and what
 * would have been accepted.
 *
 * Header-only on purpose, with std-only dependencies: vbench_obs,
 * vbench_kernels, and sched/frame_threads.h (itself header-only so
 * vbench_codec can use it) all consume this without a link edge to
 * vbench_core.
 *
 * Two deliberate exceptions keep validation honest without circular
 * knowledge: VBENCH_FLEET's topology grammar belongs to
 * fleet::parseFleetSpec (still fail-fast, at fleet construction), and
 * an ISA pin naming a level the host lacks degrades with a warning —
 * the value is well-formed, the machine just cannot honor it
 * (kernels/dispatch.cc).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace vbench::core {

/** Upper bound on VBENCH_JOBS: a typo must not fork-bomb the host. */
inline constexpr int kMaxRuntimeJobs = 512;
/** Upper bound on VBENCH_FRAME_THREADS, same rationale. */
inline constexpr int kMaxRuntimeFrameThreads = 64;
/** Upper bound on VBENCH_SLICES (mirrors codec::kMaxSlices). */
inline constexpr int kMaxRuntimeSlices = 64;

/** Every VBENCH_* knob, parsed and validated together. */
struct RuntimeConfig {
    int jobs = 0;             ///< VBENCH_JOBS; 0 = auto (hardware)
    int frame_threads = 1;    ///< VBENCH_FRAME_THREADS; default serial
    int slices = 1;           ///< VBENCH_SLICES; default single slice
    int segment_frames = 0;   ///< VBENCH_SEGMENT_FRAMES; 0 = caller's
    double arrival_rate_hz = 0;  ///< VBENCH_ARRIVAL_RATE; 0 = caller's
    double zipf_s = 0;        ///< VBENCH_ZIPF_S; 0 = caller's default
    std::string isa;          ///< VBENCH_ISA; empty = auto-detect
    std::string trace_path;   ///< VBENCH_TRACE; empty = tracing off
    std::string metrics_path; ///< VBENCH_METRICS_OUT; empty = off
    std::string prom_path;    ///< VBENCH_PROM_OUT; empty = off
    std::string fleet_spec;   ///< VBENCH_FLEET; empty = default fleet
    std::string fleet_policy; ///< VBENCH_FLEET_POLICY; empty = default
    std::string fleet_calib_path;  ///< VBENCH_FLEET_CALIB; empty = none
    double cache_mb = 0;      ///< VBENCH_CACHE_MB; 0 = no cache
    std::string cache_policy; ///< VBENCH_CACHE_POLICY; empty = default
    double cache_gb_hour = 0; ///< VBENCH_CACHE_GB_HOUR; 0 = default
    std::string workers_mode; ///< VBENCH_WORKERS; empty = local
    int rpc_timeout_ms = 0;   ///< VBENCH_RPC_TIMEOUT_MS; 0 = default
    int rpc_retries = -1;     ///< VBENCH_RPC_RETRIES; -1 = default
    double hedge_pct = 0;     ///< VBENCH_HEDGE_PCT; 0 = default
    std::string worker_bin;   ///< VBENCH_WORKER_BIN; empty = built-in

    static RuntimeConfig fromEnv(std::vector<std::string> *errors);
};

namespace detail {

inline void
configError(std::vector<std::string> *errors, const std::string &msg)
{
    if (errors)
        errors->push_back(msg);
}

/** Strict positive integer: whole string must parse, value > 0. */
inline bool
parsePositiveInt(const char *name, const char *value, int max_value,
                 int *out, std::vector<std::string> *errors)
{
    char *end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed <= 0) {
        configError(errors,
                    std::string(name) + "=" + value +
                        " is not a positive integer");
        return false;
    }
    // Over-the-top widths clamp (documented cap), they don't error: a
    // huge-but-well-formed request means "as wide as allowed".
    *out = static_cast<int>(parsed < max_value ? parsed : max_value);
    return true;
}

/** Strict non-negative integer: whole string parses, value >= 0. */
inline bool
parseNonNegativeInt(const char *name, const char *value, int max_value,
                    int *out, std::vector<std::string> *errors)
{
    char *end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0) {
        configError(errors,
                    std::string(name) + "=" + value +
                        " is not a non-negative integer");
        return false;
    }
    *out = static_cast<int>(parsed < max_value ? parsed : max_value);
    return true;
}

/** Strict positive float: whole string must parse, value > 0. */
inline bool
parsePositiveDouble(const char *name, const char *value, double *out,
                    std::vector<std::string> *errors)
{
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || !(parsed > 0)) {
        configError(errors,
                    std::string(name) + "=" + value +
                        " is not a positive number");
        return false;
    }
    *out = parsed;
    return true;
}

inline bool
knownIsaName(const std::string &value)
{
    std::string lower;
    lower.reserve(value.size());
    for (const char c : value)
        lower.push_back(c >= 'A' && c <= 'Z'
                            ? static_cast<char>(c - 'A' + 'a')
                            : c);
    return lower == "scalar" || lower == "sse2" || lower == "avx2" ||
        lower == "native";
}

inline bool
knownFleetPolicyName(const std::string &value)
{
    return value == "round_robin" || value == "random" ||
        value == "least_loaded" || value == "cheapest" ||
        value == "cost_aware";
}

/** Mirrors cache::parseCachePolicyName (no link edge to vbench_cache). */
inline bool
knownCachePolicyName(const std::string &value)
{
    return value == "lru" || value == "always_store" ||
        value == "always_recompute" || value == "cost_aware";
}

inline bool
knownWorkersModeName(const std::string &value)
{
    return value == "local" || value == "proc";
}

inline const char *
envOrEmpty(const char *name)
{
    const char *value = std::getenv(name);
    return value != nullptr ? value : "";
}

} // namespace detail

/**
 * Parse every knob from the environment. Unset / empty variables keep
 * their defaults; every malformed value appends one message to
 * `errors` (pass null to just get the best-effort config). This is the
 * single place VBENCH_* values are interpreted — call sites receive
 * the result, they do not getenv.
 */
inline RuntimeConfig
RuntimeConfig::fromEnv(std::vector<std::string> *errors)
{
    RuntimeConfig cfg;
    if (const char *v = detail::envOrEmpty("VBENCH_JOBS"); v[0])
        detail::parsePositiveInt("VBENCH_JOBS", v, kMaxRuntimeJobs,
                                 &cfg.jobs, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_FRAME_THREADS"); v[0])
        detail::parsePositiveInt("VBENCH_FRAME_THREADS", v,
                                 kMaxRuntimeFrameThreads,
                                 &cfg.frame_threads, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_SLICES"); v[0])
        detail::parsePositiveInt("VBENCH_SLICES", v, kMaxRuntimeSlices,
                                 &cfg.slices, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_SEGMENT_FRAMES");
        v[0])
        detail::parsePositiveInt("VBENCH_SEGMENT_FRAMES", v,
                                 1 << 20, &cfg.segment_frames, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_ARRIVAL_RATE"); v[0])
        detail::parsePositiveDouble("VBENCH_ARRIVAL_RATE", v,
                                    &cfg.arrival_rate_hz, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_ZIPF_S"); v[0])
        detail::parsePositiveDouble("VBENCH_ZIPF_S", v, &cfg.zipf_s,
                                    errors);
    if (const char *v = detail::envOrEmpty("VBENCH_ISA"); v[0]) {
        cfg.isa = v;
        if (!detail::knownIsaName(cfg.isa))
            detail::configError(errors,
                                "VBENCH_ISA=" + cfg.isa +
                                    " is not one of "
                                    "scalar|sse2|avx2|native");
    }
    cfg.trace_path = detail::envOrEmpty("VBENCH_TRACE");
    cfg.metrics_path = detail::envOrEmpty("VBENCH_METRICS_OUT");
    cfg.prom_path = detail::envOrEmpty("VBENCH_PROM_OUT");
    cfg.fleet_spec = detail::envOrEmpty("VBENCH_FLEET");
    if (const char *v = detail::envOrEmpty("VBENCH_FLEET_POLICY");
        v[0]) {
        cfg.fleet_policy = v;
        if (!detail::knownFleetPolicyName(cfg.fleet_policy))
            detail::configError(
                errors,
                "VBENCH_FLEET_POLICY=" + cfg.fleet_policy +
                    " is not one of round_robin|random|least_loaded|"
                    "cheapest|cost_aware");
    }
    cfg.fleet_calib_path = detail::envOrEmpty("VBENCH_FLEET_CALIB");
    if (const char *v = detail::envOrEmpty("VBENCH_CACHE_MB"); v[0])
        detail::parsePositiveDouble("VBENCH_CACHE_MB", v,
                                    &cfg.cache_mb, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_CACHE_POLICY");
        v[0]) {
        cfg.cache_policy = v;
        if (!detail::knownCachePolicyName(cfg.cache_policy))
            detail::configError(
                errors,
                "VBENCH_CACHE_POLICY=" + cfg.cache_policy +
                    " is not one of lru|always_store|"
                    "always_recompute|cost_aware");
    }
    if (const char *v = detail::envOrEmpty("VBENCH_CACHE_GB_HOUR");
        v[0])
        detail::parsePositiveDouble("VBENCH_CACHE_GB_HOUR", v,
                                    &cfg.cache_gb_hour, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_WORKERS"); v[0]) {
        cfg.workers_mode = v;
        if (!detail::knownWorkersModeName(cfg.workers_mode))
            detail::configError(errors,
                                "VBENCH_WORKERS=" + cfg.workers_mode +
                                    " is not one of local|proc");
    }
    if (const char *v = detail::envOrEmpty("VBENCH_RPC_TIMEOUT_MS");
        v[0])
        detail::parsePositiveInt("VBENCH_RPC_TIMEOUT_MS", v,
                                 1 << 30, &cfg.rpc_timeout_ms, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_RPC_RETRIES"); v[0])
        detail::parseNonNegativeInt("VBENCH_RPC_RETRIES", v, 1 << 20,
                                    &cfg.rpc_retries, errors);
    if (const char *v = detail::envOrEmpty("VBENCH_HEDGE_PCT"); v[0]) {
        if (detail::parsePositiveDouble("VBENCH_HEDGE_PCT", v,
                                        &cfg.hedge_pct, errors) &&
            cfg.hedge_pct > 100) {
            detail::configError(errors,
                                "VBENCH_HEDGE_PCT=" +
                                    std::string(v) +
                                    " is not a percentile in "
                                    "(0, 100]");
            cfg.hedge_pct = 0;
        }
    }
    cfg.worker_bin = detail::envOrEmpty("VBENCH_WORKER_BIN");
    return cfg;
}

/**
 * Re-parse the environment, failing fast on any malformed value:
 * every error is printed to stderr and the process exits with 2.
 * Call sites that must observe setenv() between calls (the
 * frame-thread guard, workload defaults) go through this; everything
 * else uses the cached runtimeConfig() below.
 */
inline RuntimeConfig
freshRuntimeConfig()
{
    std::vector<std::string> errors;
    RuntimeConfig cfg = RuntimeConfig::fromEnv(&errors);
    if (!errors.empty()) {
        for (const std::string &e : errors)
            std::fprintf(stderr, "vbench: %s\n", e.c_str());
        std::exit(2);
    }
    return cfg;
}

/** The process-wide config: parsed and validated once, fail-fast. */
inline const RuntimeConfig &
runtimeConfig()
{
    static const RuntimeConfig cfg = freshRuntimeConfig();
    return cfg;
}

} // namespace vbench::core
