#pragma once

/**
 * @file
 * The three normalized measurements every vbench transcode reports
 * (paper §2.3): speed (Mpixel/s), bitrate (bits/pixel/s), and quality
 * (average YCbCr PSNR, dB).
 */

#include <cstddef>

#include "metrics/psnr.h"
#include "metrics/rates.h"
#include "video/video.h"

namespace vbench::core {

/** One transcode's normalized measurements. */
struct Measurement {
    double speed_mpix_s = 0;
    double bitrate_bpps = 0;
    double psnr_db = 0;
};

/**
 * Assemble a Measurement from raw observations.
 *
 * @param original pristine frames (quality baseline).
 * @param decoded decoded output of the transcode under test.
 * @param compressed_bytes size of the produced stream.
 * @param elapsed_seconds wall-clock (or modeled) transcode time.
 */
inline Measurement
measure(const video::Video &original, const video::Video &decoded,
        size_t compressed_bytes, double elapsed_seconds)
{
    Measurement m;
    m.speed_mpix_s = metrics::megapixelsPerSecond(
        original.width(), original.height(), original.frameCount(),
        elapsed_seconds);
    m.bitrate_bpps = metrics::bitsPerPixelPerSecond(
        compressed_bytes, original.width(), original.height(),
        original.frameCount(), original.fps());
    m.psnr_db = metrics::videoPsnr(original, decoded);
    return m;
}

} // namespace vbench::core
