#pragma once

/**
 * @file
 * The online fleet: the service dispatcher's view of a heterogeneous
 * worker pool. Every segment is *executed* on the real local scheduler
 * (streams stay placement-invariant), but each one is also *placed* on
 * a modeled fleet worker, which charges the modeled execution time and
 * dollar cost of the machine type the placement chose.
 *
 * Protocol per segment:
 *   1. place(meta, now)   - before submit: the policy books the job
 *                           onto a worker, returns a Ticket.
 *   2. settle(ticket, s)  - after the real transcode: renormalize the
 *                           booking with the measured seconds (the
 *                           model's tier ratios applied to real work,
 *                           not the a-priori pixel estimate) and
 *                           return the final dollar cost.
 *
 * Thread-safe: the dispatcher places from its loop; settles may come
 * from any order of completions.
 */

#include <mutex>
#include <string>
#include <vector>

#include "fleet/placement.h"

namespace vbench::fleet {

/** One booked job: placement plus what settle() needs. */
struct Ticket {
    int worker = -1;  ///< -1 = not placed (empty fleet)
    int type = -1;
    double start_s = 0;
    double exec_s = 0;     ///< modeled seconds as booked
    double finish_s = 0;
    double cost_dollars = 0;

    bool valid() const { return worker >= 0; }
};

/** Per-type rollup for reports and gauges. */
struct TypeUsage {
    std::string name;
    Tier tier = Tier::Scalar;
    int count = 0;
    int jobs = 0;
    double busy_seconds = 0;
    double cost_dollars = 0;
};

class Fleet
{
  public:
    /**
     * Build the fleet. `config` must pass validateFleetConfig; an
     * invalid config yields a zero-worker fleet whose place() returns
     * invalid tickets (callers fall back to unmodeled dispatch).
     */
    Fleet(FleetConfig config, PerfModel model);

    /** Book a job. `now_s` is the fleet clock (service seconds). */
    Ticket place(const JobMeta &meta, double now_s);

    /**
     * Replace the booking's a-priori execution estimate with one
     * derived from the measured wall seconds of the real transcode:
     * the measurement is mapped back to scalar-tier work through the
     * host's native tier, then forward to the booked worker's tier.
     * Returns the final cost (also re-accumulated on the worker).
     */
    double settle(const Ticket &ticket, double measured_s);

    /** Modeled busy fraction per type over [0, now_s]. */
    std::vector<double> typeUtilization(double now_s) const;

    /** Per-type totals (jobs, busy seconds, dollars). */
    std::vector<TypeUsage> typeUsage() const;

    /** Total modeled dollars across the fleet. */
    double totalCost() const;

    const FleetConfig &config() const { return config_; }
    const PerfModel &model() const { return model_; }
    int workerCount() const
    {
        return static_cast<int>(workers_.size());
    }

  private:
    FleetConfig config_;
    PerfModel model_;
    mutable std::mutex mu_;
    std::vector<FleetWorker> workers_;
    std::unique_ptr<PlacementPolicy> policy_;
};

} // namespace vbench::fleet
