#include "fleet/fleet.h"

#include <algorithm>
#include <utility>

namespace vbench::fleet {

Fleet::Fleet(FleetConfig config, PerfModel model)
    : config_(std::move(config)), model_(model)
{
    if (validateFleetConfig(config_).empty())
        workers_ = makeWorkers(config_);
    policy_ = makePolicy(config_.policy, config_.seed);
}

Ticket
Fleet::place(const JobMeta &meta, double now_s)
{
    std::lock_guard<std::mutex> lock(mu_);
    const Placement p =
        placeJob(*policy_, workers_, config_, model_, meta, now_s);
    Ticket t;
    t.worker = p.worker;
    t.type = p.type;
    t.start_s = p.start_s;
    t.exec_s = p.exec_s;
    t.finish_s = p.finish_s;
    t.cost_dollars = p.cost_dollars;
    return t;
}

double
Fleet::settle(const Ticket &ticket, double measured_s)
{
    if (!ticket.valid())
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    FleetWorker &w = workers_[static_cast<size_t>(ticket.worker)];
    const WorkerTypeSpec &type =
        config_.types[static_cast<size_t>(ticket.type)];
    // Measured wall seconds ran at the host's native tier; convert to
    // scalar work, then re-model on the booked tier.
    const double native_speed =
        model_.tier_speed[static_cast<size_t>(model_.native_tier)];
    const double work_scalar_s =
        std::max(0.0, measured_s) * native_speed;
    const double exec_s = model_.execSeconds(
        type.tier, work_scalar_s, type.per_job_overhead_ms);
    const double cost = exec_s * type.price_per_hour / 3600.0;

    // Re-book: shift this worker's horizon and totals by the delta
    // between the estimate and the measurement-derived time.
    const double delta_s = exec_s - ticket.exec_s;
    w.busy_until_s = std::max(ticket.start_s + exec_s,
                              w.busy_until_s + delta_s);
    w.busy_seconds += delta_s;
    w.cost_dollars += cost - ticket.cost_dollars;
    return cost;
}

std::vector<double>
Fleet::typeUtilization(double now_s) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<double> util(config_.types.size(), 0.0);
    if (now_s <= 0)
        return util;
    for (const FleetWorker &w : workers_)
        util[static_cast<size_t>(w.type)] += w.busy_seconds;
    for (size_t t = 0; t < config_.types.size(); ++t) {
        const int count = config_.types[t].count;
        if (count > 0)
            util[t] /= static_cast<double>(count) * now_s;
    }
    return util;
}

std::vector<TypeUsage>
Fleet::typeUsage() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TypeUsage> usage;
    for (const WorkerTypeSpec &t : config_.types) {
        TypeUsage u;
        u.name = t.name;
        u.tier = t.tier;
        u.count = t.count;
        usage.push_back(std::move(u));
    }
    for (const FleetWorker &w : workers_) {
        TypeUsage &u = usage[static_cast<size_t>(w.type)];
        u.jobs += w.jobs;
        u.busy_seconds += w.busy_seconds;
        u.cost_dollars += w.cost_dollars;
    }
    return usage;
}

double
Fleet::totalCost() const
{
    std::lock_guard<std::mutex> lock(mu_);
    double total = 0;
    for (const FleetWorker &w : workers_)
        total += w.cost_dollars;
    return total;
}

} // namespace vbench::fleet
