#include "fleet/sim.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

namespace vbench::fleet {

namespace {

/** A job that is ready to place, ordered by ready time then id. */
struct ReadyJob {
    double ready_s;
    int index;  ///< into the jobs vector

    bool operator>(const ReadyJob &o) const
    {
        return ready_s != o.ready_s ? ready_s > o.ready_s
                                    : index > o.index;
    }
};

} // namespace

SimResult
simulateFleet(const FleetConfig &config, const PerfModel &model,
              const std::vector<SimJob> &jobs)
{
    SimResult result;
    result.workers = makeWorkers(config);
    const std::unique_ptr<PlacementPolicy> policy =
        makePolicy(config.policy, config.seed);

    // Chain topology: successors of each job id, and which jobs wait.
    std::unordered_map<int, int> index_by_id;
    for (size_t i = 0; i < jobs.size(); ++i)
        index_by_id.emplace(jobs[i].id, static_cast<int>(i));
    std::unordered_map<int, std::vector<int>> successors;
    std::vector<char> blocked(jobs.size(), 0);
    for (size_t i = 0; i < jobs.size(); ++i) {
        const SimJob &job = jobs[i];
        if (job.chain_prev >= 0 && job.chain_prev != job.id &&
            index_by_id.count(job.chain_prev)) {
            successors[job.chain_prev].push_back(static_cast<int>(i));
            blocked[i] = 1;
        }
    }

    // Ready-time min-heap: placement happens in the order jobs become
    // ready, which is the order the online dispatcher would see them.
    std::priority_queue<ReadyJob, std::vector<ReadyJob>,
                        std::greater<ReadyJob>>
        ready;
    for (size_t i = 0; i < jobs.size(); ++i)
        if (!blocked[i])
            ready.push({jobs[i].avail_s, static_cast<int>(i)});

    std::array<std::set<int>, core::kNumScenarios> streams_seen;
    std::vector<double> finish(jobs.size(), 0.0);

    while (!ready.empty()) {
        const ReadyJob next = ready.top();
        ready.pop();
        const SimJob &job = jobs[static_cast<size_t>(next.index)];

        JobMeta meta;
        meta.pixels = job.pixels;
        meta.work_scalar_s = job.work_scalar_s;
        meta.ready_s = next.ready_s;
        meta.deadline_s = job.deadline_s;
        meta.scenario = job.scenario;
        const Placement p =
            placeJob(*policy, result.workers, config, model, meta,
                     next.ready_s);
        if (p.worker < 0)
            continue; // empty fleet: job never runs
        finish[static_cast<size_t>(next.index)] = p.finish_s;

        const size_t s = static_cast<size_t>(job.scenario);
        SimScenario &sc = result.scenarios[s];
        ++sc.jobs;
        ++result.jobs;
        sc.cost_dollars += p.cost_dollars;
        result.total_cost_dollars += p.cost_dollars;
        const double latency = p.finish_s - job.avail_s;
        sc.sum_latency_s += latency;
        sc.max_latency_s = std::max(sc.max_latency_s, latency);
        if (p.finish_s <= job.deadline_s) {
            ++sc.hits;
            ++result.hits;
        }
        if (job.stream >= 0 && streams_seen[s].insert(job.stream).second)
            ++sc.streams;
        result.makespan_s = std::max(result.makespan_s, p.finish_s);

        if (const auto it = successors.find(job.id);
            it != successors.end())
            for (const int succ : it->second)
                ready.push({std::max(jobs[static_cast<size_t>(succ)]
                                         .avail_s,
                                     p.finish_s),
                            succ});
    }
    return result;
}

} // namespace vbench::fleet
