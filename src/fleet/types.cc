#include "fleet/types.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace vbench::fleet {

namespace {

std::string
lowered(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Tier list prices, $/hour — roughly proportional to capability. */
constexpr std::array<double, kNumTiers> kListPrice = {0.40, 0.90, 1.60,
                                                      5.00};

bool
parseCount(std::string_view s, int *out)
{
    int v = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size() || v <= 0)
        return false;
    *out = v;
    return true;
}

bool
parsePrice(std::string_view s, double *out)
{
    // from_chars for double is not universally available; strtod on a
    // bounded copy keeps this std-only and whole-string strict.
    const std::string copy(s);
    char *end = nullptr;
    const double v = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || copy.empty() ||
        !std::isfinite(v) || v <= 0)
        return false;
    *out = v;
    return true;
}

} // namespace

const char *
tierName(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return "scalar";
    case Tier::Sse2:
        return "sse2";
    case Tier::Avx2:
        return "avx2";
    case Tier::Hwenc:
        return "hwenc";
    }
    return "scalar";
}

std::optional<Tier>
parseTierName(std::string_view name)
{
    const std::string lower = lowered(name);
    if (lower == "scalar")
        return Tier::Scalar;
    if (lower == "sse2")
        return Tier::Sse2;
    if (lower == "avx2")
        return Tier::Avx2;
    if (lower == "hwenc")
        return Tier::Hwenc;
    return std::nullopt;
}

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
    case PolicyKind::RoundRobin:
        return "round_robin";
    case PolicyKind::Random:
        return "random";
    case PolicyKind::LeastLoaded:
        return "least_loaded";
    case PolicyKind::CheapestFeasible:
        return "cheapest";
    case PolicyKind::CostAware:
        return "cost_aware";
    }
    return "round_robin";
}

std::optional<PolicyKind>
parsePolicyName(std::string_view name)
{
    const std::string lower = lowered(name);
    if (lower == "round_robin")
        return PolicyKind::RoundRobin;
    if (lower == "random")
        return PolicyKind::Random;
    if (lower == "least_loaded")
        return PolicyKind::LeastLoaded;
    if (lower == "cheapest")
        return PolicyKind::CheapestFeasible;
    if (lower == "cost_aware")
        return PolicyKind::CostAware;
    return std::nullopt;
}

double
PerfModel::execSeconds(Tier t, double work_scalar_s,
                       double overhead_ms) const
{
    const double speed = tier_speed[static_cast<size_t>(t)];
    const double run = speed > 0 ? work_scalar_s / speed : work_scalar_s;
    return run + overhead_ms * 1e-3;
}

double
PerfModel::scalarWorkSeconds(double pixels) const
{
    return base_mpix_s > 0 ? pixels / 1e6 / base_mpix_s : 0.0;
}

int
FleetConfig::workerCount() const
{
    int n = 0;
    for (const WorkerTypeSpec &t : types)
        n += t.count;
    return n;
}

std::optional<std::vector<WorkerTypeSpec>>
parseFleetSpec(std::string_view spec, std::string *error)
{
    const auto fail = [error](std::string msg) {
        if (error)
            *error = std::move(msg);
        return std::nullopt;
    };
    std::vector<WorkerTypeSpec> types;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t plus = spec.find('+', pos);
        std::string_view term = spec.substr(
            pos, plus == std::string_view::npos ? spec.size() - pos
                                                : plus - pos);
        if (term.empty())
            return fail("fleet spec: empty term (grammar: "
                        "tier[:count][@price]+...)");

        std::string_view price_part;
        if (const size_t at = term.find('@');
            at != std::string_view::npos) {
            price_part = term.substr(at + 1);
            term = term.substr(0, at);
        }
        std::string_view count_part;
        if (const size_t colon = term.find(':');
            colon != std::string_view::npos) {
            count_part = term.substr(colon + 1);
            term = term.substr(0, colon);
        }

        const std::optional<Tier> tier = parseTierName(term);
        if (!tier)
            return fail("fleet spec: unknown worker type '" +
                        std::string(term) +
                        "' (want scalar|sse2|avx2|hwenc)");
        WorkerTypeSpec t;
        t.tier = *tier;
        t.name = tierName(*tier);
        t.price_per_hour = kListPrice[static_cast<size_t>(*tier)];
        if (!count_part.empty() && !parseCount(count_part, &t.count))
            return fail("fleet spec: bad count '" +
                        std::string(count_part) + "' for type '" +
                        t.name + "' (want a positive integer)");
        if (!price_part.empty() &&
            !parsePrice(price_part, &t.price_per_hour))
            return fail("fleet spec: bad price '" +
                        std::string(price_part) + "' for type '" +
                        t.name + "' (want a positive $/hour)");
        types.push_back(std::move(t));

        if (plus == std::string_view::npos)
            break;
        pos = plus + 1;
        if (pos == spec.size())
            return fail("fleet spec: trailing '+'");
    }
    if (types.empty())
        return fail("fleet spec: empty");
    return types;
}

std::string
formatFleetSpec(const std::vector<WorkerTypeSpec> &types)
{
    std::string out;
    for (const WorkerTypeSpec &t : types) {
        if (!out.empty())
            out += "+";
        out += tierName(t.tier);
        out += ":" + std::to_string(t.count);
        char price[32];
        std::snprintf(price, sizeof(price), "@%.2f", t.price_per_hour);
        out += price;
    }
    return out;
}

std::string
validateFleetConfig(const FleetConfig &config)
{
    if (config.types.empty())
        return "fleet: no worker types";
    int workers = 0;
    for (const WorkerTypeSpec &t : config.types) {
        if (t.count < 0)
            return "fleet: type '" + t.name + "' has negative count";
        if (!(t.price_per_hour > 0) ||
            !std::isfinite(t.price_per_hour))
            return "fleet: type '" + t.name +
                "' needs a positive $/hour";
        if (t.per_job_overhead_ms < 0 ||
            !std::isfinite(t.per_job_overhead_ms))
            return "fleet: type '" + t.name +
                "' has a bad per-job overhead";
        workers += t.count;
    }
    if (workers == 0)
        return "fleet: zero total capacity (every type has count 0)";
    return "";
}

FleetConfig
defaultFleetConfig()
{
    FleetConfig config;
    const auto types = parseFleetSpec(
        "scalar:4@0.40+sse2:2@0.90+avx2:2@1.60+hwenc:1@5.00", nullptr);
    config.types = *types;
    return config;
}

} // namespace vbench::fleet
