#pragma once

/**
 * @file
 * Placement: assign one job to one fleet worker. A PlacementPolicy
 * only *chooses* the worker; the shared placeJob() helper does the
 * bookkeeping (start = max(ready, worker free), modeled execution
 * time, dollar cost) identically for every policy, so policies differ
 * in choice quality alone and their cost numbers are comparable.
 *
 * All times are seconds on the fleet clock (the service clock for the
 * online fleet, virtual time in the simulator).
 */

#include <limits>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "fleet/types.h"

namespace vbench::fleet {

/** What the policy knows about a job before running it. */
struct JobMeta {
    double pixels = 0;  ///< luma pixels the job will encode
    /// Modeled scalar-tier execution seconds
    /// (PerfModel::scalarWorkSeconds of `pixels`, or measured).
    double work_scalar_s = 0;
    double ready_s = 0;  ///< earliest possible start (availability)
    /// Absolute deadline on the fleet clock; infinity when unbounded.
    double deadline_s = std::numeric_limits<double>::infinity();
    core::Scenario scenario = core::Scenario::Upload;
};

/** One machine in the fleet. */
struct FleetWorker {
    int id = 0;
    int type = 0;  ///< index into FleetConfig::types
    double busy_until_s = 0;
    double busy_seconds = 0;  ///< accumulated modeled busy time
    double cost_dollars = 0;  ///< accumulated modeled cost
    int jobs = 0;
};

/** Where a job landed and what it costs. */
struct Placement {
    int worker = -1;  ///< -1 = no worker available (empty fleet)
    int type = -1;
    double start_s = 0;
    double exec_s = 0;    ///< modeled on-worker seconds
    double finish_s = 0;  ///< start_s + exec_s
    double cost_dollars = 0;
};

/**
 * A placement strategy. choose() returns a worker index (or -1 on an
 * empty fleet) and must not mutate the workers — placeJob() applies
 * the booking. Policies are stateful (round-robin cursor, RNG) but
 * single-threaded; the online Fleet serializes calls under its lock.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    virtual int choose(const std::vector<FleetWorker> &workers,
                       const FleetConfig &config, const PerfModel &model,
                       const JobMeta &job, double now_s) = 0;

    virtual const char *name() const = 0;
};

/** Instantiate a policy. `seed` feeds the Random baseline. */
std::unique_ptr<PlacementPolicy> makePolicy(PolicyKind kind,
                                            uint64_t seed);

/**
 * Choose a worker via `policy` and book the job onto it: advances the
 * worker's busy horizon, accumulates its busy time / cost / job count,
 * and returns the booking. Returns worker = -1 (and books nothing) on
 * an empty fleet.
 */
Placement placeJob(PlacementPolicy &policy,
                   std::vector<FleetWorker> &workers,
                   const FleetConfig &config, const PerfModel &model,
                   const JobMeta &job, double now_s);

/** Build the worker array for a config (type-major, ids 0..N-1). */
std::vector<FleetWorker> makeWorkers(const FleetConfig &config);

} // namespace vbench::fleet
