#pragma once

/**
 * @file
 * Discrete-event fleet simulator: replay a profiled workload against a
 * fleet topology and placement policy in virtual time. One profiling
 * pass measures each segment's real work once; the simulator then
 * scores any number of (topology x policy) combinations in
 * microseconds, which is what lets bench_fleet sweep policies on
 * identical work.
 *
 * Jobs honor split-and-stitch chain precedence: a job with
 * `chain_prev` set becomes ready only when that job finishes (the
 * RcSnapshot carry), at its own availability at the earliest.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "fleet/placement.h"

namespace vbench::fleet {

/** One profiled segment transcode to replay. */
struct SimJob {
    int id = 0;
    double pixels = 0;
    double work_scalar_s = 0;  ///< modeled scalar-tier seconds
    double avail_s = 0;        ///< availability on the virtual clock
    /// Absolute deadline (virtual clock); infinity when unbounded.
    double deadline_s = std::numeric_limits<double>::infinity();
    core::Scenario scenario = core::Scenario::Upload;
    /// Chain precedence: id of the segment whose RC state this one
    /// consumes; -1 = chain head / unchained.
    int chain_prev = -1;
    /// Stream (request x rung) this segment belongs to, for $/stream;
    /// -1 = unattributed.
    int stream = -1;
};

/** Per-scenario slice of a simulation. */
struct SimScenario {
    uint64_t jobs = 0;
    uint64_t hits = 0;
    uint64_t streams = 0;  ///< distinct stream ids seen
    double cost_dollars = 0;
    double max_latency_s = 0;
    double sum_latency_s = 0;

    double hitRate() const
    {
        return jobs > 0
            ? static_cast<double>(hits) / static_cast<double>(jobs)
            : 1.0;
    }
    double dollarsPerStream() const
    {
        return streams > 0
            ? cost_dollars / static_cast<double>(streams)
            : 0.0;
    }
};

/** What one (topology, policy) run produced. */
struct SimResult {
    uint64_t jobs = 0;
    uint64_t hits = 0;
    double total_cost_dollars = 0;
    double makespan_s = 0;  ///< last finish time
    std::array<SimScenario, core::kNumScenarios> scenarios;
    /// Final worker states (busy time / cost / job counts by worker).
    std::vector<FleetWorker> workers;

    double hitRate() const
    {
        return jobs > 0
            ? static_cast<double>(hits) / static_cast<double>(jobs)
            : 1.0;
    }
};

/**
 * Run the simulation. Jobs may arrive in any order; chains are
 * resolved by id. A `chain_prev` pointing at a missing id is treated
 * as unchained. Deterministic in (jobs, config, model, config.seed).
 */
SimResult simulateFleet(const FleetConfig &config, const PerfModel &model,
                        const std::vector<SimJob> &jobs);

} // namespace vbench::fleet
