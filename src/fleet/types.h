#pragma once

/**
 * @file
 * Fleet vocabulary: worker tiers, worker-type specs with prices, the
 * shared per-type performance model, and the topology spec grammar.
 *
 * A fleet is a set of worker *types* — machine families with distinct
 * throughput and $/hour — each instantiated `count` times. Tiers stand
 * in for real instance families the way vbench's ISA levels stand in
 * for microarchitectures: Scalar/Sse2/Avx2 are successively wider CPU
 * generations, Hwenc is a fixed-function-encoder node. Encodes always
 * run through the real encoder path (streams are placement-invariant);
 * only the *modeled* execution time and dollar cost differ by type.
 *
 * Topology spec grammar (VBENCH_FLEET, bench_fleet --fleet):
 *
 *     type[xN][@price] ( "+" type[xN][@price] )*
 *     e.g. "scalar:4@0.40+sse2:2@0.90+avx2:2@1.60+hwenc:1@5.00"
 *
 * where `type` is scalar|sse2|avx2|hwenc, `:N` is the instance count
 * (default 1) and `@price` is $/hour (default the tier's list price).
 */

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vbench::fleet {

/** Machine families a worker type can belong to. */
enum class Tier {
    Scalar = 0,  ///< narrow CPU (kernel ISA: scalar)
    Sse2,        ///< 128-bit SIMD CPU
    Avx2,        ///< 256-bit SIMD CPU
    Hwenc,       ///< fixed-function hardware encoder node
};

inline constexpr int kNumTiers = 4;

const char *tierName(Tier tier);
std::optional<Tier> parseTierName(std::string_view name);

/** One worker type: a machine family at a price, times `count`. */
struct WorkerTypeSpec {
    std::string name;             ///< display name; defaults to tier
    Tier tier = Tier::Scalar;
    int count = 1;                ///< instances of this type
    double price_per_hour = 0.4;  ///< $/hour while a job runs
    /// Fixed per-job dispatch cost (RPC + context), milliseconds.
    double per_job_overhead_ms = 2.0;
};

/** Placement strategies (VBENCH_FLEET_POLICY). */
enum class PolicyKind {
    RoundRobin = 0,    ///< baseline: cycle through workers
    Random,            ///< baseline: seeded uniform choice
    LeastLoaded,       ///< earliest-free worker
    CheapestFeasible,  ///< cheapest type that meets the deadline
                       ///< ignoring backlog (naive feasibility)
    CostAware,         ///< cheapest type whose *actual* finish time
                       ///< (backlog included) meets the deadline
};

inline constexpr int kNumPolicies = 5;

const char *policyName(PolicyKind kind);
/** round_robin | random | least_loaded | cheapest | cost_aware. */
std::optional<PolicyKind> parsePolicyName(std::string_view name);

/**
 * Measured per-type performance model. Execution time for a job whose
 * scalar-tier cost is `work_scalar_s` on a tier-T worker is
 *
 *     exec_s = work_scalar_s / tier_speed[T] + overhead_ms / 1e3
 *
 * and its cost is exec_s x price / 3600. `tier_speed` is relative to
 * Scalar = 1; defaults approximate the repo's measured ISA speedups
 * and the hwenc pipeline model, and fleet::calibratePerfModel replaces
 * them with numbers profiled on this host (cached per build).
 */
struct PerfModel {
    /// Scalar-tier software-encode throughput, megapixels/second.
    double base_mpix_s = 2.0;
    std::array<double, kNumTiers> tier_speed = {1.0, 1.6, 2.6, 40.0};
    /// Tier this host's real encoder path runs at — the bridge from
    /// measured seconds back to modeled scalar work.
    Tier native_tier = Tier::Scalar;
    std::string source = "default";  ///< default | calibrated | cache

    /** Modeled on-worker seconds for a job on a tier-`t` worker. */
    double execSeconds(Tier t, double work_scalar_s,
                       double overhead_ms) const;

    /** Modeled scalar-tier seconds for `pixels` luma pixels of work. */
    double scalarWorkSeconds(double pixels) const;
};

/** A whole fleet: the types, the policy, and the policy's seed. */
struct FleetConfig {
    std::vector<WorkerTypeSpec> types;
    PolicyKind policy = PolicyKind::CostAware;
    uint64_t seed = 1;

    int workerCount() const;
};

/**
 * Parse a topology spec (grammar above). Returns nullopt and sets
 * `error` on malformed input — unknown tier, bad count, bad price,
 * empty terms.
 */
std::optional<std::vector<WorkerTypeSpec>>
parseFleetSpec(std::string_view spec, std::string *error);

/** Inverse of parseFleetSpec (canonical form). */
std::string formatFleetSpec(const std::vector<WorkerTypeSpec> &types);

/**
 * Check a fleet config is runnable: at least one type with count > 0,
 * positive prices, finite overheads. Returns "" when valid, else a
 * one-line error.
 */
std::string validateFleetConfig(const FleetConfig &config);

/** The reference mixed fleet used by bench_fleet and the service. */
FleetConfig defaultFleetConfig();

} // namespace vbench::fleet
