#include "fleet/placement.h"

#include <algorithm>
#include <cmath>

namespace vbench::fleet {

namespace {

double
execFor(const FleetConfig &config, const PerfModel &model,
        const FleetWorker &w, const JobMeta &job)
{
    const WorkerTypeSpec &type =
        config.types[static_cast<size_t>(w.type)];
    return model.execSeconds(type.tier, job.work_scalar_s,
                             type.per_job_overhead_ms);
}

double
costFor(const FleetConfig &config, const FleetWorker &w, double exec_s)
{
    const WorkerTypeSpec &type =
        config.types[static_cast<size_t>(w.type)];
    return exec_s * type.price_per_hour / 3600.0;
}

double
startFor(const FleetWorker &w, const JobMeta &job, double now_s)
{
    return std::max({now_s, job.ready_s, w.busy_until_s});
}

class RoundRobinPolicy final : public PlacementPolicy
{
  public:
    int choose(const std::vector<FleetWorker> &workers,
               const FleetConfig &, const PerfModel &, const JobMeta &,
               double) override
    {
        if (workers.empty())
            return -1;
        return static_cast<int>(next_++ % workers.size());
    }
    const char *name() const override { return "round_robin"; }

  private:
    size_t next_ = 0;
};

class RandomPolicy final : public PlacementPolicy
{
  public:
    explicit RandomPolicy(uint64_t seed)
        : state_(seed ? seed : 0x9E3779B97F4A7C15ull)
    {
    }

    int choose(const std::vector<FleetWorker> &workers,
               const FleetConfig &, const PerfModel &, const JobMeta &,
               double) override
    {
        if (workers.empty())
            return -1;
        // xorshift64*: deterministic in the seed, no <random> needed.
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        const uint64_t r = state_ * 0x2545F4914F6CDD1Dull;
        return static_cast<int>(r % workers.size());
    }
    const char *name() const override { return "random"; }

  private:
    uint64_t state_;
};

class LeastLoadedPolicy final : public PlacementPolicy
{
  public:
    int choose(const std::vector<FleetWorker> &workers,
               const FleetConfig &, const PerfModel &, const JobMeta &,
               double) override
    {
        int best = -1;
        for (size_t i = 0; i < workers.size(); ++i)
            if (best < 0 ||
                workers[i].busy_until_s <
                    workers[static_cast<size_t>(best)].busy_until_s)
                best = static_cast<int>(i);
        return best;
    }
    const char *name() const override { return "least_loaded"; }
};

/**
 * Cheapest type that could meet the deadline if it started the moment
 * the job is ready — naive feasibility that ignores worker backlog
 * (the classic mistake the cost-aware policy corrects). Within the
 * chosen type, the earliest-free worker.
 */
class CheapestFeasiblePolicy final : public PlacementPolicy
{
  public:
    int choose(const std::vector<FleetWorker> &workers,
               const FleetConfig &config, const PerfModel &model,
               const JobMeta &job, double now_s) override
    {
        int best = -1;
        double best_cost = 0;
        bool best_feasible = false;
        for (size_t i = 0; i < workers.size(); ++i) {
            const FleetWorker &w = workers[i];
            const double exec = execFor(config, model, w, job);
            const double cost = costFor(config, w, exec);
            const bool feasible =
                std::max(now_s, job.ready_s) + exec <= job.deadline_s;
            const double tie =
                w.busy_until_s; // within a type, prefer idler
            const bool better = best < 0 ||
                (feasible && !best_feasible) ||
                (feasible == best_feasible &&
                 (cost < best_cost ||
                  (cost == best_cost &&
                   tie < workers[static_cast<size_t>(best)]
                             .busy_until_s)));
            if (better) {
                best = static_cast<int>(i);
                best_cost = cost;
                best_feasible = feasible;
            }
        }
        return best;
    }
    const char *name() const override { return "cheapest"; }
};

/**
 * Backlog-aware cost minimizer: among workers whose *actual* finish
 * time (queueing included) meets the deadline, the cheapest; ties go
 * to the earliest finish. When no worker can meet the deadline, the
 * earliest finish overall — miss by as little as possible.
 */
class CostAwarePolicy final : public PlacementPolicy
{
  public:
    int choose(const std::vector<FleetWorker> &workers,
               const FleetConfig &config, const PerfModel &model,
               const JobMeta &job, double now_s) override
    {
        int best = -1;
        double best_cost = 0, best_finish = 0;
        bool best_feasible = false;
        for (size_t i = 0; i < workers.size(); ++i) {
            const FleetWorker &w = workers[i];
            const double exec = execFor(config, model, w, job);
            const double finish = startFor(w, job, now_s) + exec;
            const double cost = costFor(config, w, exec);
            const bool feasible = finish <= job.deadline_s;
            bool better = false;
            if (best < 0) {
                better = true;
            } else if (feasible != best_feasible) {
                better = feasible;
            } else if (feasible) {
                better = cost < best_cost ||
                    (cost == best_cost && finish < best_finish);
            } else {
                better = finish < best_finish;
            }
            if (better) {
                best = static_cast<int>(i);
                best_cost = cost;
                best_finish = finish;
                best_feasible = feasible;
            }
        }
        return best;
    }
    const char *name() const override { return "cost_aware"; }
};

} // namespace

std::unique_ptr<PlacementPolicy>
makePolicy(PolicyKind kind, uint64_t seed)
{
    switch (kind) {
    case PolicyKind::RoundRobin:
        return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(seed);
    case PolicyKind::LeastLoaded:
        return std::make_unique<LeastLoadedPolicy>();
    case PolicyKind::CheapestFeasible:
        return std::make_unique<CheapestFeasiblePolicy>();
    case PolicyKind::CostAware:
        return std::make_unique<CostAwarePolicy>();
    }
    return std::make_unique<RoundRobinPolicy>();
}

std::vector<FleetWorker>
makeWorkers(const FleetConfig &config)
{
    std::vector<FleetWorker> workers;
    int id = 0;
    for (size_t t = 0; t < config.types.size(); ++t)
        for (int i = 0; i < config.types[t].count; ++i) {
            FleetWorker w;
            w.id = id++;
            w.type = static_cast<int>(t);
            workers.push_back(w);
        }
    return workers;
}

Placement
placeJob(PlacementPolicy &policy, std::vector<FleetWorker> &workers,
         const FleetConfig &config, const PerfModel &model,
         const JobMeta &job, double now_s)
{
    Placement p;
    const int chosen =
        policy.choose(workers, config, model, job, now_s);
    if (chosen < 0 || static_cast<size_t>(chosen) >= workers.size())
        return p;
    FleetWorker &w = workers[static_cast<size_t>(chosen)];
    p.worker = w.id;
    p.type = w.type;
    p.exec_s = execFor(config, model, w, job);
    p.start_s = startFor(w, job, now_s);
    p.finish_s = p.start_s + p.exec_s;
    p.cost_dollars = costFor(config, w, p.exec_s);
    w.busy_until_s = p.finish_s;
    w.busy_seconds += p.exec_s;
    w.cost_dollars += p.cost_dollars;
    ++w.jobs;
    return p;
}

} // namespace vbench::fleet
