#pragma once

/**
 * @file
 * Performance-model calibration: measure the per-tier speed ratios on
 * this host instead of trusting the defaults. One short profiling pass
 * encodes a tiny synthetic clip once per available kernel ISA level
 * (via kernels::ScopedKernelIsa) and once through the hardware-encoder
 * model; the ratios and the scalar baseline throughput become the
 * fleet's PerfModel.
 *
 * The result is cached in a small text file keyed by the host's best
 * ISA (a different machine or build invalidates it), so repeated bench
 * runs skip the ~second of profiling. VBENCH_FLEET_CALIB names the
 * cache path; empty disables caching.
 */

#include <string>

#include "fleet/types.h"

namespace vbench::fleet {

/**
 * Load the cached model if `cache_path` exists and matches this host,
 * else profile and (best-effort) write the cache. Never fails: on any
 * problem the default PerfModel comes back with source == "default".
 * `log` (optional) receives a one-line description of what happened.
 */
PerfModel calibratePerfModel(const std::string &cache_path,
                             std::string *log = nullptr);

/** Parse/serialize the cache format (exposed for tests). */
bool parseCalibration(const std::string &text, PerfModel *model);
std::string formatCalibration(const PerfModel &model);

} // namespace vbench::fleet
