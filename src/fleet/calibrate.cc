#include "fleet/calibrate.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/transcoder.h"
#include "kernels/kernel_ops.h"
#include "video/suite.h"

namespace vbench::fleet {

namespace {

constexpr const char *kCalibHeader = "vbench-fleet-calib v1";

Tier
tierForIsa(kernels::Isa isa)
{
    switch (isa) {
    case kernels::Isa::Scalar:
        return Tier::Scalar;
    case kernels::Isa::Sse2:
        return Tier::Sse2;
    case kernels::Isa::Avx2:
        return Tier::Avx2;
    }
    return Tier::Scalar;
}

/** The profiling workload: tiny but long enough to time reliably. */
video::Video
calibClip()
{
    video::ClipSpec spec;
    spec.name = "fleet-calib";
    spec.width = 128;
    spec.height = 96;
    spec.fps = 30.0;
    spec.seed = 7;
    return video::synthesizeClip(spec, 24);
}

/** Best-of-2 transcode seconds for one request on the current ISA. */
double
timedSeconds(const codec::ByteBuffer &input, const video::Video &clip,
             const core::TranscodeRequest &request)
{
    double best = 0;
    for (int rep = 0; rep < 2; ++rep) {
        const core::TranscodeOutcome outcome =
            core::transcode(input, clip, request);
        if (!outcome.ok || outcome.seconds <= 0)
            return 0;
        best = best == 0 ? outcome.seconds
                         : std::min(best, outcome.seconds);
    }
    return best;
}

} // namespace

std::string
formatCalibration(const PerfModel &model)
{
    std::ostringstream out;
    out << kCalibHeader << "\n";
    out << "isa " << tierName(model.native_tier) << "\n";
    out << "base_mpix_s " << model.base_mpix_s << "\n";
    for (int t = 0; t < kNumTiers; ++t)
        out << "speed " << tierName(static_cast<Tier>(t)) << " "
            << model.tier_speed[static_cast<size_t>(t)] << "\n";
    return out.str();
}

bool
parseCalibration(const std::string &text, PerfModel *model)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kCalibHeader)
        return false;
    PerfModel parsed;
    bool saw_isa = false, saw_base = false;
    int saw_speeds = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "isa") {
            std::string name;
            fields >> name;
            const std::optional<Tier> tier = parseTierName(name);
            if (!tier || fields.fail())
                return false;
            parsed.native_tier = *tier;
            saw_isa = true;
        } else if (key == "base_mpix_s") {
            fields >> parsed.base_mpix_s;
            if (fields.fail() || parsed.base_mpix_s <= 0)
                return false;
            saw_base = true;
        } else if (key == "speed") {
            std::string name;
            double v = 0;
            fields >> name >> v;
            const std::optional<Tier> tier = parseTierName(name);
            if (!tier || fields.fail() || v <= 0)
                return false;
            parsed.tier_speed[static_cast<size_t>(*tier)] = v;
            ++saw_speeds;
        } else {
            return false;
        }
    }
    if (!saw_isa || !saw_base || saw_speeds < kNumTiers)
        return false;
    parsed.source = "cache";
    *model = parsed;
    return true;
}

PerfModel
calibratePerfModel(const std::string &cache_path, std::string *log)
{
    const Tier native = tierForIsa(kernels::detectBestIsa());

    if (!cache_path.empty()) {
        if (std::ifstream in(cache_path); in) {
            std::ostringstream text;
            text << in.rdbuf();
            PerfModel cached;
            if (parseCalibration(text.str(), &cached) &&
                cached.native_tier == native) {
                if (log)
                    *log = "fleet calibration loaded from " + cache_path;
                return cached;
            }
        }
    }

    PerfModel model;
    model.native_tier = native;

    const video::Video clip = calibClip();
    const codec::ByteBuffer input = core::makeUniversalStream(clip);
    core::TranscodeRequest request;
    request.kind = core::EncoderKind::Vbc;
    request.effort = 5;
    request.frame_threads = 1;

    // Software tiers: pin each ISA level and time the same transcode.
    std::array<double, kNumTiers> seconds = {0, 0, 0, 0};
    for (const kernels::Isa isa :
         {kernels::Isa::Scalar, kernels::Isa::Sse2,
          kernels::Isa::Avx2}) {
        if (kernels::opsFor(isa) == nullptr)
            continue; // host/build lacks this level; default ratio stays
        kernels::ScopedKernelIsa pin(isa);
        seconds[static_cast<size_t>(tierForIsa(isa))] =
            timedSeconds(input, clip, request);
    }
    // Hardware tier: the hwenc pipeline model's own (modeled) time.
    core::TranscodeRequest hw = request;
    hw.kind = core::EncoderKind::NvencLike;
    seconds[static_cast<size_t>(Tier::Hwenc)] =
        timedSeconds(input, clip, hw);

    const double scalar_s = seconds[static_cast<size_t>(Tier::Scalar)];
    if (scalar_s <= 0) {
        if (log)
            *log = "fleet calibration failed; using default model";
        return model; // defaults, source == "default"
    }
    model.base_mpix_s =
        static_cast<double>(clip.totalPixels()) / 1e6 / scalar_s;
    for (int t = 0; t < kNumTiers; ++t) {
        const double s = seconds[static_cast<size_t>(t)];
        if (s > 0)
            model.tier_speed[static_cast<size_t>(t)] = scalar_s / s;
        // else: the default ratio for this tier is kept (e.g. a host
        // without AVX2 still models AVX2 workers at the stock speedup).
    }
    // Monotonicity guard: measurement noise on a tiny clip must not
    // leave a nominally wider tier slower than a narrower one.
    for (int t = 1; t < kNumTiers; ++t)
        model.tier_speed[static_cast<size_t>(t)] = std::max(
            model.tier_speed[static_cast<size_t>(t)],
            model.tier_speed[static_cast<size_t>(t - 1)]);
    model.source = "calibrated";

    if (!cache_path.empty()) {
        if (std::ofstream out(cache_path); out)
            out << formatCalibration(model);
    }
    if (log)
        *log = "fleet calibration profiled (base " +
            std::to_string(model.base_mpix_s) + " Mpix/s)";
    return model;
}

} // namespace vbench::fleet
