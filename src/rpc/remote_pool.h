#pragma once

/**
 * @file
 * RemotePool — the process-level worker pool behind the dispatcher's
 * execution seam (docs/RPC.md). N WorkerProcess slots, each a
 * fork/exec'd vbench_worker child serving SegmentJobs over the framed
 * socketpair transport, plus every supervision policy the in-process
 * scheduler never needed:
 *
 *  - per-job deadlines: a child that holds a job past
 *    RemotePoolConfig::timeout_ms is SIGKILLed and the job retried;
 *  - bounded retry-with-backoff on worker death (SIGKILL fault
 *    injection included) and protocol violations;
 *  - automatic respawn-with-reconnect of dead children;
 *  - hedged straggler re-dispatch: once a job's age exceeds the
 *    hedge_pct-th percentile of completed attempt latencies it is
 *    duplicated onto the queue head; the first result wins and the
 *    loser is discarded;
 *  - graceful degradation: a slot whose respawns keep failing (or a
 *    job out of retry budget) falls back to executing in-process, so
 *    a missing/broken worker binary degrades to PR-9 behavior instead
 *    of failing the run.
 *
 * Determinism: attempts, retries, hedges, and degradation only decide
 * WHERE a deterministic transcode runs, never what it produces — the
 * stitched service output is byte-identical to the local pool's
 * (tests/service/test_rpc_service.cc, bench_rpc --smoke).
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/worker_process.h"
#include "sched/scheduler.h"
#include "service/executor.h"
#include "service/segment_job.h"

namespace vbench::rpc {

struct RemotePoolConfig {
    /// Child worker slots; <= 0 uses Scheduler::defaultWorkerCount().
    int workers = 0;
    /// vbench_worker path; empty resolves $VBENCH_WORKER_BIN then the
    /// build-time default (resolveWorkerBinary).
    std::string worker_binary;
    /// Per-attempt deadline; a child holding a job longer is killed
    /// and the job retried. <= 0 uses the 30 s default.
    int timeout_ms = 0;
    /// Re-dispatch attempts after infra failure (death, timeout,
    /// protocol error) before degrading to in-process execution.
    /// < 0 uses the default (2).
    int retries = -1;
    /// Backoff before retry attempt k: backoff_ms * k (bounded).
    double backoff_ms = 10;
    /// Consecutive start() failures before a slot marks itself
    /// degraded and serves jobs in-process.
    int respawn_limit = 3;
    bool hedge = true;
    /// Straggler threshold: the hedge_pct-th percentile of completed
    /// attempt latencies. <= 0 uses the default (99).
    double hedge_pct = 0;
    /// Never hedge a job younger than this.
    double hedge_floor_ms = 1.0;
    /// Completed-latency samples required before hedging arms.
    int hedge_min_samples = 8;
    /// Fault injection: SIGKILL the serving child immediately after
    /// job attempt #N (0-based dispatch order) is written to it, so
    /// the child dies mid-segment. -1 = off.
    int64_t inject_kill_at = -1;
    /// Trace sink for rpc worker rows (thread-safe); null = none.
    obs::Tracer *tracer = nullptr;
};

class RemotePool : public service::SegmentExecutor
{
  public:
    explicit RemotePool(RemotePoolConfig config = {});
    /** Drains nothing: callers resolve every handle before teardown. */
    ~RemotePool() override;

    RemotePool(const RemotePool &) = delete;
    RemotePool &operator=(const RemotePool &) = delete;

    sched::JobHandle
    submit(service::SegmentJob job,
           std::shared_ptr<const video::Video> original) override;

    int workers() const override
    {
        return static_cast<int>(slots_.size());
    }
    size_t queueCapacity() const override
    {
        return slots_.size() * 2;
    }
    size_t activeJobs() const override
    {
        return active_.load(std::memory_order_relaxed);
    }
    bool remote() const override { return true; }
    service::ExecutorStats stats() const override;

    /** Child pids, in slot order (0 = not running). Test/fault hook. */
    std::vector<int64_t> workerPids() const;

  private:
    struct RemoteJob {
        service::SegmentJob job;
        std::shared_ptr<const video::Video> original;
        std::shared_ptr<sched::detail::JobState> state;
        /// First attempt to resolve wins; later results are discarded.
        std::atomic<bool> done{false};
        /// Age origin for the straggler detector (first dispatch).
        std::atomic<uint64_t> first_send_ns{0};
        bool hedged = false;  ///< guarded by mu_: duplicated at most once
        int attempts = 0;     ///< guarded by mu_: infra failures so far
        uint64_t submit_ns = 0;
    };

    /// One queue entry: a job plus whether it is the hedge duplicate.
    struct Attempt {
        std::shared_ptr<RemoteJob> job;
        bool hedge = false;
    };

    struct Slot {
        WorkerProcess proc;
        std::thread thread;
        uint64_t jobs = 0;        ///< guarded by mu_
        uint64_t respawns = 0;    ///< guarded by mu_
        std::string tier;         ///< guarded by mu_ (handshake)
        bool ever_started = false;
        bool degraded = false;    ///< slot thread only
        std::atomic<int64_t> pid{0};
    };

    void slotLoop(int s);
    bool ensureWorker(int s);
    void runAttempt(int s, Attempt &attempt);
    void runLocal(int s, Attempt &attempt);
    void onInfraFailure(int s, Attempt &attempt,
                        const std::string &why);
    void finish(int s, Attempt &attempt, service::SegmentResult result,
                uint64_t send_ns);
    void hedgeLoop();

    RemotePoolConfig config_;
    std::string binary_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::thread hedge_thread_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Attempt> pending_;
    std::vector<std::shared_ptr<RemoteJob>> inflight_;
    std::vector<double> samples_ms_;  ///< completed attempt latencies
    bool stop_ = false;

    std::atomic<size_t> active_{0};
    std::atomic<int> alive_workers_{0};
    std::atomic<int64_t> dispatch_seq_{0};

    // Stats counters, guarded by mu_.
    service::ExecutorStats counters_;
};

} // namespace vbench::rpc
