/**
 * @file
 * vbench_worker — the per-slot child process the RemotePool supervisor
 * forks/execs (docs/RPC.md). Usage: vbench_worker --fd N, where N is
 * the child end of the supervisor's socketpair. Everything else is
 * runWorkerLoop().
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rpc/worker.h"

int
main(int argc, char **argv)
{
    // The child inherits the parent's environment, but observability
    // outputs belong to the supervisor process: a worker writing the
    // same VBENCH_TRACE / VBENCH_METRICS_OUT / VBENCH_PROM_OUT paths
    // at exit would clobber the run's artifacts. Transcode-affecting
    // knobs (VBENCH_ISA, VBENCH_FRAME_THREADS, ...) stay inherited on
    // purpose.
    ::unsetenv("VBENCH_TRACE");
    ::unsetenv("VBENCH_METRICS_OUT");
    ::unsetenv("VBENCH_PROM_OUT");
    // A worker never supervises workers of its own.
    ::unsetenv("VBENCH_WORKERS");

    int fd = -1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc) {
            fd = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s --fd N\n", argv[0]);
            return 2;
        }
    }
    if (fd < 0) {
        std::fprintf(stderr, "%s: missing --fd N\n", argv[0]);
        return 2;
    }
    return vbench::rpc::runWorkerLoop(fd);
}
