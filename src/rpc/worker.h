#pragma once

/**
 * @file
 * The vbench_worker child's side of the rpc protocol: send Hello, then
 * serve Job frames one at a time — deserialize the SegmentJob, run
 * executeSegmentJob (no pristine reference travels on the wire; the
 * decoded input stands in, streams are byte-identical either way), and
 * answer with a Result frame — until a Shutdown frame or peer EOF.
 * Single-threaded by design: one worker process is one fleet slot, and
 * the supervisor owns all concurrency.
 */

#include <string>

namespace vbench::rpc {

/**
 * Serve the supervisor on `fd` until Shutdown/EOF. Returns the
 * process exit code: 0 on clean shutdown (Shutdown frame or EOF), 2 on
 * a framing violation (logged to stderr). A malformed SegmentJob
 * payload answers with an ok=false Result carrying the structured
 * deserialize error rather than dying, so the supervisor sees the
 * protocol error in-band.
 *
 * Test hook: the VBENCH_RPC_FAKE_PROTO environment variable (an
 * integer) overrides the advertised Hello protocol version, so the
 * supervisor's handshake rejection path is reachable from a real
 * child.
 */
int runWorkerLoop(int fd);

} // namespace vbench::rpc
