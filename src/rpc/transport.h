#pragma once

/**
 * @file
 * Blocking frame transport over one end of a socketpair (or any
 * stream fd). Owns the fd; sendFrame loops over partial writes (EINTR
 * included, SIGPIPE suppressed via MSG_NOSIGNAL where the fd is a
 * socket), recvFrame polls with a deadline and feeds whatever read()
 * returns — however short — into the FrameDecoder. Peer death
 * surfaces as a "peer closed" error, a missed deadline as timed_out;
 * both are distinguishable from protocol violations so the supervisor
 * can pick the right recovery (respawn vs. kill-and-log).
 */

#include <cstdint>
#include <optional>
#include <string>

#include "codec/types.h"
#include "rpc/frame.h"

namespace vbench::rpc {

/** Create a stream socketpair; false + errno message on failure. */
bool makeSocketPair(int fds[2], std::string *error);

class Transport
{
  public:
    Transport() = default;
    /** Takes ownership of `fd` (closed on destruction/close()). */
    explicit Transport(int fd) : fd_(fd) {}
    ~Transport() { close(); }

    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;
    Transport(Transport &&other) noexcept { *this = std::move(other); }
    Transport &operator=(Transport &&other) noexcept;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    void close();

    /**
     * Write one frame, looping until every byte is on the stream.
     * False (with `error`) on peer death or I/O error.
     */
    bool sendFrame(FrameType type, const codec::ByteBuffer &payload,
                   std::string *error);

    /**
     * Read the next complete frame. `timeout_ms` < 0 blocks forever;
     * on deadline expiry returns nullopt with *timed_out = true and no
     * error. Any other nullopt is fatal for this connection: peer
     * closed, I/O error, or a framing violation (the decoder's
     * structured message, including the stream byte offset).
     */
    std::optional<Frame> recvFrame(int timeout_ms, std::string *error,
                                   bool *timed_out);

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

} // namespace vbench::rpc
