#include "rpc/transport.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace vbench::rpc {

namespace {

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

bool
makeSocketPair(int fds[2], std::string *error)
{
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        if (error)
            *error = errnoString("socketpair");
        return false;
    }
    return true;
}

Transport &
Transport::operator=(Transport &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        decoder_ = std::move(other.decoder_);
    }
    return *this;
}

void
Transport::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Transport::sendFrame(FrameType type, const codec::ByteBuffer &payload,
                     std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "transport closed";
        return false;
    }
    const codec::ByteBuffer frame = encodeFrame(type, payload);
    size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill
        // the dispatcher with SIGPIPE.
        const ssize_t n = ::send(fd_, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = errno == EPIPE
                    ? std::string("peer closed")
                    : errnoString("send");
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

std::optional<Frame>
Transport::recvFrame(int timeout_ms, std::string *error,
                     bool *timed_out)
{
    if (timed_out)
        *timed_out = false;
    if (fd_ < 0) {
        if (error)
            *error = "transport closed";
        return std::nullopt;
    }
    // A complete frame may already be buffered from an earlier read.
    std::string decode_error;
    if (std::optional<Frame> frame = decoder_.next(&decode_error))
        return frame;
    if (!decode_error.empty()) {
        if (error)
            *error = decode_error;
        return std::nullopt;
    }

    using Clock = std::chrono::steady_clock;
    const auto deadline = timeout_ms >= 0
        ? Clock::now() + std::chrono::milliseconds(timeout_ms)
        : Clock::time_point::max();
    uint8_t chunk[64 * 1024];
    for (;;) {
        int wait_ms = -1;
        if (timeout_ms >= 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0) {
                if (timed_out)
                    *timed_out = true;
                return std::nullopt;
            }
            wait_ms = static_cast<int>(left);
        }
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int pr = ::poll(&pfd, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = errnoString("poll");
            return std::nullopt;
        }
        if (pr == 0) {
            if (timed_out)
                *timed_out = true;
            return std::nullopt;
        }
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = errnoString("read");
            return std::nullopt;
        }
        if (n == 0) {
            if (error)
                *error = "peer closed";
            return std::nullopt;
        }
        decoder_.feed(chunk, static_cast<size_t>(n));
        if (std::optional<Frame> frame = decoder_.next(&decode_error))
            return frame;
        if (!decode_error.empty()) {
            if (error)
                *error = decode_error;
            return std::nullopt;
        }
    }
}

} // namespace vbench::rpc
