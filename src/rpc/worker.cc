#include "rpc/worker.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include <unistd.h>

#include "kernels/kernel_ops.h"
#include "rpc/frame.h"
#include "rpc/transport.h"
#include "service/segment_job.h"

namespace vbench::rpc {

int
runWorkerLoop(int fd)
{
    Transport transport(fd);

    Hello hello;
    hello.protocol = kRpcProtocolVersion;
    if (const char *fake = std::getenv("VBENCH_RPC_FAKE_PROTO");
        fake && fake[0])
        hello.protocol =
            static_cast<uint16_t>(std::strtol(fake, nullptr, 10));
    hello.pid = static_cast<int32_t>(::getpid());
    hello.tier = kernels::isaName(kernels::activeIsa());
    std::string error;
    if (!transport.sendFrame(FrameType::Hello, hello.serialize(),
                             &error)) {
        std::fprintf(stderr, "vbench_worker: handshake send: %s\n",
                     error.c_str());
        return 2;
    }

    for (;;) {
        bool timed_out = false;
        error.clear();
        std::optional<Frame> frame =
            transport.recvFrame(-1, &error, &timed_out);
        if (!frame) {
            // EOF is the supervisor going away (its death or a kill of
            // the whole tree): exit quietly. Anything else is framing
            // corruption worth reporting.
            if (error == "peer closed")
                return 0;
            std::fprintf(stderr, "vbench_worker: recv: %s\n",
                         error.c_str());
            return 2;
        }
        switch (frame->type) {
          case FrameType::Shutdown:
            return 0;
          case FrameType::Job: {
            std::string wire_error;
            const std::optional<service::SegmentJob> job =
                service::SegmentJob::deserialize(frame->payload,
                                                 &wire_error);
            service::SegmentResult result;
            if (job) {
                result = service::executeSegmentJob(*job);
            } else {
                // Answer in-band: the supervisor logs the structured
                // field/offset error and decides whether to retry.
                result.ok = false;
                result.error = "job deserialize: " + wire_error;
            }
            if (!transport.sendFrame(FrameType::Result,
                                     result.serialize(), &error)) {
                std::fprintf(stderr, "vbench_worker: result send: %s\n",
                             error.c_str());
                return 2;
            }
            break;
          }
          default:
            std::fprintf(stderr,
                         "vbench_worker: unexpected frame type %d\n",
                         static_cast<int>(frame->type));
            return 2;
        }
    }
}

} // namespace vbench::rpc
