#include "rpc/frame.h"

namespace vbench::rpc {

namespace {

void
putU32(codec::ByteBuffer &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

bool
knownFrameType(uint8_t t)
{
    return t >= static_cast<uint8_t>(FrameType::Hello) &&
        t <= static_cast<uint8_t>(FrameType::Shutdown);
}

} // namespace

void
appendFrame(codec::ByteBuffer &out, FrameType type,
            const codec::ByteBuffer &payload)
{
    out.reserve(out.size() + kFrameHeaderSize + payload.size());
    out.push_back(static_cast<uint8_t>(type));
    putU32(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

codec::ByteBuffer
encodeFrame(FrameType type, const codec::ByteBuffer &payload)
{
    codec::ByteBuffer out;
    appendFrame(out, type, payload);
    return out;
}

void
FrameDecoder::feed(const uint8_t *data, size_t n)
{
    buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame>
FrameDecoder::next(std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = "frame stream poisoned by earlier violation";
        return std::nullopt;
    }
    if (buf_.size() - pos_ < kFrameHeaderSize)
        return std::nullopt;  // need more bytes, not an error
    const uint8_t type = buf_[pos_];
    if (!knownFrameType(type)) {
        poisoned_ = true;
        if (error)
            *error = "unknown frame type " + std::to_string(type) +
                " at stream byte " + std::to_string(offset_);
        return std::nullopt;
    }
    const uint32_t len = getU32(&buf_[pos_ + 1]);
    if (len > kMaxFramePayload) {
        poisoned_ = true;
        if (error)
            *error = "frame length " + std::to_string(len) +
                " exceeds max " + std::to_string(kMaxFramePayload) +
                " (type " + std::to_string(type) + ", at stream byte " +
                std::to_string(offset_ + 1) + ")";
        return std::nullopt;
    }
    if (buf_.size() - pos_ - kFrameHeaderSize < len)
        return std::nullopt;  // payload still in flight

    Frame frame;
    frame.type = static_cast<FrameType>(type);
    const size_t begin = pos_ + kFrameHeaderSize;
    frame.payload.assign(buf_.begin() + static_cast<long>(begin),
                         buf_.begin() + static_cast<long>(begin + len));
    pos_ += kFrameHeaderSize + len;
    offset_ += kFrameHeaderSize + len;
    // Compact once the consumed prefix dominates, so a long-lived
    // stream doesn't grow without bound.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    return frame;
}

codec::ByteBuffer
Hello::serialize() const
{
    codec::ByteBuffer out;
    out.push_back(static_cast<uint8_t>(protocol));
    out.push_back(static_cast<uint8_t>(protocol >> 8));
    putU32(out, static_cast<uint32_t>(pid));
    putU32(out, static_cast<uint32_t>(tier.size()));
    out.insert(out.end(), tier.begin(), tier.end());
    return out;
}

std::optional<Hello>
Hello::deserialize(const codec::ByteBuffer &bytes, std::string *error)
{
    if (bytes.size() < 10) {
        if (error)
            *error = "Hello: truncated at byte " +
                std::to_string(bytes.size()) + " (want >= 10)";
        return std::nullopt;
    }
    Hello h;
    h.protocol =
        static_cast<uint16_t>(bytes[0] | (bytes[1] << 8));
    if (h.protocol != kRpcProtocolVersion) {
        if (error)
            *error = "Hello: protocol version mismatch: worker "
                "advertised " + std::to_string(h.protocol) + " (want " +
                std::to_string(kRpcProtocolVersion) + ")";
        return std::nullopt;
    }
    h.pid = static_cast<int32_t>(getU32(&bytes[2]));
    const uint32_t tier_len = getU32(&bytes[6]);
    if (bytes.size() - 10 != tier_len) {
        if (error)
            *error = "Hello: tier length " + std::to_string(tier_len) +
                " does not match payload (" +
                std::to_string(bytes.size() - 10) + " bytes after "
                "byte 10)";
        return std::nullopt;
    }
    h.tier.assign(bytes.begin() + 10, bytes.end());
    return h;
}

} // namespace vbench::rpc
