#pragma once

/**
 * @file
 * The rpc transport's frame layer (docs/RPC.md): every message between
 * the dispatcher and a vbench_worker child is one length-prefixed
 * frame on a byte stream —
 *
 *   u8 type | u32 payload_len (little-endian) | payload bytes
 *
 * The payload of a Job frame is a serialized service::SegmentJob, a
 * Result frame a serialized service::SegmentResult (wire v2,
 * service/segment_job.h); Hello is the worker's handshake (protocol
 * version, pid, kernel ISA tier) and Shutdown is the supervisor's
 * clean-exit request (no payload).
 *
 * FrameDecoder is the incremental parser: feed() arbitrary chunks as
 * they arrive off a socket — one byte at a time is fine — and next()
 * yields complete frames. Incomplete input is "need more bytes", never
 * an error; an unknown type or an oversized length prefix poisons the
 * stream with a structured error naming the byte offset, because on a
 * framed stream a corrupt header means resynchronization is hopeless.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "codec/types.h"

namespace vbench::rpc {

/** Handshake/worker protocol version (independent of wire v2). */
inline constexpr uint16_t kRpcProtocolVersion = 1;

/**
 * Frames larger than this are a protocol violation. Generous: the
 * largest real payload is a SegmentJob carrying one segment's
 * universal-format bytes (tens of MB for 4K inputs).
 */
inline constexpr uint32_t kMaxFramePayload = 256u * 1024 * 1024;

/** Frame header: 1 type byte + 4 length bytes. */
inline constexpr size_t kFrameHeaderSize = 5;

enum class FrameType : uint8_t {
    Hello = 1,     ///< worker -> supervisor, once, on spawn
    Job = 2,       ///< supervisor -> worker: serialized SegmentJob
    Result = 3,    ///< worker -> supervisor: serialized SegmentResult
    Shutdown = 4,  ///< supervisor -> worker: drain and exit(0)
};

/** One complete frame off the stream. */
struct Frame {
    FrameType type = FrameType::Shutdown;
    codec::ByteBuffer payload;
};

/** Append one encoded frame (header + payload) to `out`. */
void appendFrame(codec::ByteBuffer &out, FrameType type,
                 const codec::ByteBuffer &payload);

/** Convenience: one frame as its own buffer. */
codec::ByteBuffer encodeFrame(FrameType type,
                              const codec::ByteBuffer &payload);

/**
 * Incremental frame parser over arbitrarily chunked input. Not
 * thread-safe; each Transport owns one.
 */
class FrameDecoder
{
  public:
    /** Buffer `n` more stream bytes. */
    void feed(const uint8_t *data, size_t n);

    /**
     * Pop the next complete frame. nullopt with `error` untouched
     * means "need more bytes"; nullopt with `error` set means the
     * stream is corrupt (unknown type / oversized length, with the
     * offending byte offset) and the decoder stays poisoned.
     */
    std::optional<Frame> next(std::string *error);

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

    bool poisoned() const { return poisoned_; }

  private:
    codec::ByteBuffer buf_;
    size_t pos_ = 0;       ///< consumed prefix of buf_
    uint64_t offset_ = 0;  ///< stream offset of buf_[pos_] (diagnostics)
    bool poisoned_ = false;
};

/** The Hello frame's payload: who is on the other end of the pipe. */
struct Hello {
    uint16_t protocol = kRpcProtocolVersion;
    int32_t pid = 0;
    std::string tier;  ///< kernel ISA tier (kernels::isaName)

    codec::ByteBuffer serialize() const;

    /**
     * Parse a Hello payload. A protocol version other than
     * kRpcProtocolVersion is an error here — a worker speaking a
     * different framing cannot be talked to at all, so the handshake
     * is where the mismatch must surface.
     */
    static std::optional<Hello>
    deserialize(const codec::ByteBuffer &bytes, std::string *error);
};

} // namespace vbench::rpc
