#include "rpc/worker_process.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#ifndef VBENCH_WORKER_BIN_DEFAULT
#define VBENCH_WORKER_BIN_DEFAULT ""
#endif

namespace vbench::rpc {

std::string
resolveWorkerBinary(const std::string &configured)
{
    if (!configured.empty())
        return configured;
    if (const char *env = std::getenv("VBENCH_WORKER_BIN");
        env && env[0])
        return env;
    return VBENCH_WORKER_BIN_DEFAULT;
}

WorkerProcess::~WorkerProcess()
{
    stop();
}

bool
WorkerProcess::start(std::string *error)
{
    kill();  // no-op when nothing is running

    const std::string binary = resolveWorkerBinary(config_.binary);
    if (binary.empty()) {
        if (error)
            *error = "no vbench_worker binary (set VBENCH_WORKER_BIN)";
        return false;
    }
    if (::access(binary.c_str(), X_OK) != 0) {
        if (error)
            *error = "worker binary " + binary +
                " not executable: " + std::strerror(errno);
        return false;
    }

    int fds[2];
    if (!makeSocketPair(fds, error))
        return false;
    // Only the parent end must survive exec-of-unrelated-binaries; the
    // child end is passed by number, so it stays inheritable.
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);

    // argv is prepared before fork: only async-signal-safe calls are
    // legal between fork and exec in a multithreaded parent.
    char fd_arg[16];
    std::snprintf(fd_arg, sizeof(fd_arg), "%d", fds[1]);
    const char *argv[] = {binary.c_str(), "--fd", fd_arg, nullptr};

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = std::string("fork: ") + std::strerror(errno);
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (pid == 0) {
        ::close(fds[0]);
        ::execv(binary.c_str(), const_cast<char *const *>(argv));
        // Still the forked child: report and die without running any
        // parent-state destructors.
        const char msg[] = "vbench: execv(vbench_worker) failed\n";
        ssize_t ignored = ::write(2, msg, sizeof(msg) - 1);
        (void)ignored;
        ::_exit(127);
    }
    ::close(fds[1]);
    transport_ = Transport(fds[0]);
    pid_ = pid;

    // Handshake: the worker speaks first.
    bool timed_out = false;
    std::string recv_error;
    std::optional<Frame> frame = transport_.recvFrame(
        config_.handshake_timeout_ms, &recv_error, &timed_out);
    if (!frame) {
        if (error)
            *error = timed_out
                ? "handshake timeout after " +
                    std::to_string(config_.handshake_timeout_ms) + "ms"
                : "handshake recv: " + recv_error;
        kill();
        return false;
    }
    if (frame->type != FrameType::Hello) {
        if (error)
            *error = "handshake: expected Hello, got frame type " +
                std::to_string(static_cast<int>(frame->type));
        kill();
        return false;
    }
    std::string hello_error;
    const std::optional<Hello> hello =
        Hello::deserialize(frame->payload, &hello_error);
    if (!hello) {
        if (error)
            *error = "handshake: " + hello_error;
        kill();
        return false;
    }
    tier_ = hello->tier;
    return true;
}

bool
WorkerProcess::sendJob(const service::SegmentJob &job,
                       std::string *error)
{
    if (!running()) {
        if (error)
            *error = "worker not running";
        return false;
    }
    return transport_.sendFrame(FrameType::Job, job.serialize(), error);
}

std::optional<service::SegmentResult>
WorkerProcess::recvResult(int timeout_ms, std::string *error,
                          bool *timed_out)
{
    if (timed_out)
        *timed_out = false;
    if (!running()) {
        if (error)
            *error = "worker not running";
        return std::nullopt;
    }
    std::optional<Frame> frame =
        transport_.recvFrame(timeout_ms, error, timed_out);
    if (!frame)
        return std::nullopt;
    if (frame->type != FrameType::Result) {
        if (error)
            *error = "expected Result, got frame type " +
                std::to_string(static_cast<int>(frame->type));
        return std::nullopt;
    }
    std::string wire_error;
    std::optional<service::SegmentResult> result =
        service::SegmentResult::deserialize(frame->payload,
                                            &wire_error);
    if (!result && error)
        *error = wire_error;
    return result;
}

void
WorkerProcess::kill()
{
    if (pid_ > 0) {
        ::kill(pid_, SIGKILL);
        reap(true);
    }
    transport_.close();
    pid_ = -1;
    tier_.clear();
}

void
WorkerProcess::stop()
{
    if (pid_ <= 0) {
        transport_.close();
        return;
    }
    std::string ignored;
    transport_.sendFrame(FrameType::Shutdown, {}, &ignored);
    transport_.close();  // EOF backstop if the frame was lost
    // Bounded grace period, then SIGKILL.
    for (int i = 0; i < 100 && pid_ > 0; ++i) {
        reap(false);
        if (pid_ <= 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (pid_ > 0)
        kill();
    pid_ = -1;
    tier_.clear();
}

void
WorkerProcess::reap(bool block)
{
    if (pid_ <= 0)
        return;
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, block ? 0 : WNOHANG);
    if (r == pid_ || (r < 0 && errno == ECHILD))
        pid_ = -1;
}

} // namespace vbench::rpc
