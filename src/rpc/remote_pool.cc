#include "rpc/remote_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/clock.h"

namespace vbench::rpc {

namespace {

constexpr int kDefaultTimeoutMs = 30000;
constexpr int kDefaultRetries = 2;
constexpr double kDefaultHedgePct = 99.0;
/// Backoff never sleeps a slot thread longer than this per failure.
constexpr double kMaxBackoffMs = 1000.0;

/// Infra errors where the child is gone vs. ones where it answered
/// garbage. The distinction only picks the counter and the log line —
/// both kill, respawn, and retry the same way.
bool
isProtocolError(const std::string &error)
{
    return error.find("frame") != std::string::npos ||
        error.find("SegmentResult") != std::string::npos ||
        error.find("expected Result") != std::string::npos ||
        error.find("Hello") != std::string::npos;
}

} // namespace

RemotePool::RemotePool(RemotePoolConfig config)
    : config_(std::move(config))
{
    binary_ = resolveWorkerBinary(config_.worker_binary);
    if (config_.timeout_ms <= 0)
        config_.timeout_ms = kDefaultTimeoutMs;
    if (config_.retries < 0)
        config_.retries = kDefaultRetries;
    if (config_.hedge_pct <= 0)
        config_.hedge_pct = kDefaultHedgePct;
    config_.hedge_pct = std::min(config_.hedge_pct, 100.0);
    counters_.remote = true;

    const int n = config_.workers > 0
        ? config_.workers
        : sched::Scheduler::defaultWorkerCount();
    slots_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto slot = std::make_unique<Slot>();
        slot->proc.configure({binary_, /*handshake_timeout_ms=*/10000});
        slots_.push_back(std::move(slot));
    }
    for (int i = 0; i < n; ++i)
        slots_[static_cast<size_t>(i)]->thread =
            std::thread(&RemotePool::slotLoop, this, i);
    hedge_thread_ = std::thread(&RemotePool::hedgeLoop, this);
}

RemotePool::~RemotePool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    if (hedge_thread_.joinable())
        hedge_thread_.join();
    for (auto &slot : slots_)
        if (slot->thread.joinable())
            slot->thread.join();
    for (auto &slot : slots_)
        slot->proc.stop();
}

sched::JobHandle
RemotePool::submit(service::SegmentJob job,
                   std::shared_ptr<const video::Video> original)
{
    auto rj = std::make_shared<RemoteJob>();
    rj->job = std::move(job);
    rj->original = std::move(original);
    rj->state = std::make_shared<sched::detail::JobState>();
    rj->submit_ns = obs::nowNs();
    rj->state->submit_ns = rj->submit_ns;
    sched::JobHandle handle = sched::JobHandle::adopt(rj->state);
    active_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.push_back(rj);
        pending_.push_back({std::move(rj), /*hedge=*/false});
    }
    cv_.notify_one();
    return handle;
}

service::ExecutorStats
RemotePool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    service::ExecutorStats out = counters_;
    out.remote = true;
    for (const auto &slot : slots_) {
        service::ExecutorWorkerInfo w;
        w.pid = slot->pid.load(std::memory_order_relaxed);
        w.tier = slot->tier;
        w.jobs = slot->jobs;
        w.respawns = slot->respawns;
        w.alive = w.pid != 0;
        out.workers.push_back(std::move(w));
    }
    return out;
}

std::vector<int64_t>
RemotePool::workerPids() const
{
    std::vector<int64_t> pids;
    pids.reserve(slots_.size());
    for (const auto &slot : slots_)
        pids.push_back(slot->pid.load(std::memory_order_relaxed));
    return pids;
}

void
RemotePool::slotLoop(int s)
{
    // Eager spawn: pids, tiers, and handshake failures surface before
    // the first job arrives.
    ensureWorker(s);
    for (;;) {
        Attempt attempt;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return stop_ || !pending_.empty();
            });
            if (pending_.empty()) {
                if (stop_)
                    break;
                continue;
            }
            attempt = pending_.front();
            pending_.pop_front();
        }
        if (attempt.job->done.load(std::memory_order_acquire))
            continue;  // a sibling attempt already resolved it
        runAttempt(s, attempt);
    }
}

bool
RemotePool::ensureWorker(int s)
{
    Slot &slot = *slots_[static_cast<size_t>(s)];
    if (slot.degraded)
        return false;
    if (slot.proc.running())
        return true;
    for (int attempt = 1; attempt <= config_.respawn_limit; ++attempt) {
        std::string error;
        if (slot.proc.start(&error)) {
            slot.pid.store(slot.proc.pid(),
                           std::memory_order_relaxed);
            alive_workers_.fetch_add(1, std::memory_order_relaxed);
            bool respawned = false;
            {
                std::lock_guard<std::mutex> lock(mu_);
                slot.tier = slot.proc.tier();
                if (slot.ever_started) {
                    ++slot.respawns;
                    ++counters_.respawns;
                    respawned = true;
                }
                slot.ever_started = true;
            }
            if (config_.tracer)
                config_.tracer->nameRow(
                    obs::rpcTid(s),
                    "rpc worker #" + std::to_string(s) + " (pid " +
                        std::to_string(slot.proc.pid()) + ", " +
                        slot.proc.tier() + ")");
            if (respawned)
                std::fprintf(stderr,
                             "vbench: rpc worker #%d respawned as pid "
                             "%ld\n",
                             s, static_cast<long>(slot.proc.pid()));
            return true;
        }
        std::fprintf(stderr,
                     "vbench: rpc worker #%d spawn attempt %d/%d "
                     "failed: %s\n",
                     s, attempt, config_.respawn_limit, error.c_str());
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(config_.backoff_ms * attempt, kMaxBackoffMs) *
            1e-3));
    }
    // Bottom of the degradation ladder: this slot becomes an
    // in-process executor so the service keeps making progress.
    slot.degraded = true;
    std::fprintf(stderr,
                 "vbench: rpc worker #%d degraded to in-process "
                 "execution after %d failed spawns\n",
                 s, config_.respawn_limit);
    return false;
}

void
RemotePool::runAttempt(int s, Attempt &attempt)
{
    Slot &slot = *slots_[static_cast<size_t>(s)];
    RemoteJob &rj = *attempt.job;

    if (rj.state->cancel_requested.load(std::memory_order_relaxed)) {
        if (!rj.done.exchange(true)) {
            sched::JobResult r;
            r.label = rj.job.label();
            r.worker = s;
            r.cancelled = true;
            r.submit_ns = rj.submit_ns;
            {
                std::lock_guard<std::mutex> lock(mu_);
                inflight_.erase(std::remove(inflight_.begin(),
                                            inflight_.end(),
                                            attempt.job),
                                inflight_.end());
            }
            {
                std::lock_guard<std::mutex> lock(rj.state->mu);
                rj.state->result = std::move(r);
                rj.state->status = sched::JobStatus::Cancelled;
                rj.state->cv.notify_all();
            }
            active_.fetch_sub(1, std::memory_order_relaxed);
        }
        return;
    }

    if (!ensureWorker(s)) {
        runLocal(s, attempt);
        return;
    }

    const int64_t seq =
        dispatch_seq_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t send_ns = obs::nowNs();
    std::string error;
    if (!slot.proc.sendJob(rj.job, &error)) {
        if (slot.pid.exchange(0) != 0)
            alive_workers_.fetch_sub(1, std::memory_order_relaxed);
        slot.proc.kill();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.worker_deaths;
        }
        onInfraFailure(s, attempt, "send: " + error);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.dispatched;
        ++slot.jobs;
    }
    uint64_t expected = 0;
    rj.first_send_ns.compare_exchange_strong(expected, send_ns);

    if (config_.inject_kill_at >= 0 && seq == config_.inject_kill_at) {
        // Fault injection: the child dies mid-segment, with the job's
        // bytes already on its socket — exactly the SIGKILL the retry
        // path must absorb.
        if (slot.pid.exchange(0) != 0)
            alive_workers_.fetch_sub(1, std::memory_order_relaxed);
        slot.proc.kill();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.kills_injected;
        }
    }

    bool timed_out = false;
    error.clear();
    std::optional<service::SegmentResult> result =
        slot.proc.recvResult(config_.timeout_ms, &error, &timed_out);
    if (result) {
        finish(s, attempt, std::move(*result), send_ns);
        return;
    }

    if (slot.pid.exchange(0) != 0)
        alive_workers_.fetch_sub(1, std::memory_order_relaxed);
    slot.proc.kill();
    if (timed_out) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.timeouts;
        }
        onInfraFailure(s, attempt,
                       "deadline of " +
                           std::to_string(config_.timeout_ms) +
                           " ms expired");
        return;
    }
    if (isProtocolError(error)) {
        // The structured wire error (field name + byte offset, see
        // SegmentResult::deserialize) lands in the log verbatim.
        std::fprintf(stderr,
                     "vbench: rpc worker #%d protocol error: %s\n", s,
                     error.c_str());
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.protocol_errors;
    } else {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.worker_deaths;
    }
    onInfraFailure(s, attempt, error);
}

void
RemotePool::onInfraFailure(int s, Attempt &attempt,
                           const std::string &why)
{
    RemoteJob &rj = *attempt.job;
    if (rj.done.load(std::memory_order_acquire))
        return;  // a sibling attempt resolved it meanwhile
    int attempt_no = 0;
    bool retry = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        attempt_no = ++rj.attempts;
        retry = attempt_no <= config_.retries;
        if (retry)
            ++counters_.retries;
    }
    if (retry) {
        std::fprintf(stderr,
                     "vbench: rpc job %s attempt %d failed (%s); "
                     "retrying\n",
                     rj.job.label().c_str(), attempt_no, why.c_str());
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(config_.backoff_ms * attempt_no, kMaxBackoffMs) *
            1e-3));
        {
            std::lock_guard<std::mutex> lock(mu_);
            pending_.push_front(attempt);
        }
        cv_.notify_one();
        return;
    }
    std::fprintf(stderr,
                 "vbench: rpc job %s out of retries (%s); running "
                 "in-process\n",
                 rj.job.label().c_str(), why.c_str());
    runLocal(s, attempt);
}

void
RemotePool::runLocal(int s, Attempt &attempt)
{
    RemoteJob &rj = *attempt.job;
    if (rj.done.load(std::memory_order_acquire))
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.degraded_local;
    }
    const uint64_t start_ns = obs::nowNs();
    service::SegmentResult result =
        service::executeSegmentJob(rj.job, rj.original.get());
    finish(s, attempt, std::move(result), start_ns);
}

void
RemotePool::finish(int s, Attempt &attempt,
                   service::SegmentResult result, uint64_t send_ns)
{
    RemoteJob &rj = *attempt.job;
    const uint64_t end_ns = obs::nowNs();
    if (rj.done.exchange(true)) {
        // First result won already; this attempt is the cancelled
        // loser — its bytes are discarded, never scored.
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.hedge_losses;
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.completed;
        if (attempt.hedge)
            ++counters_.hedge_wins;
        samples_ms_.push_back(static_cast<double>(end_ns - send_ns) *
                              1e-6);
        // Keep the straggler estimator's window bounded.
        if (samples_ms_.size() > 8192)
            samples_ms_.erase(samples_ms_.begin(),
                              samples_ms_.begin() + 4096);
        inflight_.erase(std::remove(inflight_.begin(), inflight_.end(),
                                    attempt.job),
                        inflight_.end());
    }

    // Same trace contract as sched::Scheduler::runJob: the winning
    // attempt's encode slice as a child span on this slot's rpc row,
    // terminating the dispatcher's flow arrow.
    if (config_.tracer && rj.job.params.span.valid()) {
        obs::ScopeEvent scope;
        scope.name = "encode " + rj.job.label();
        scope.span = rj.job.params.span.child();
        scope.tid = obs::rpcTid(s);
        scope.start_ns = send_ns;
        scope.dur_ns = end_ns - send_ns;
        config_.tracer->addScope(std::move(scope));
        obs::FlowEvent flow;
        flow.name = "dispatch";
        flow.flow_id = rj.job.params.span.span_id;
        flow.tid = obs::rpcTid(s);
        flow.ts_ns = send_ns;
        flow.begin = false;
        config_.tracer->addFlow(std::move(flow));
    }

    sched::JobResult r;
    r.label = rj.job.label();
    r.worker = s;
    r.submit_ns = rj.submit_ns;
    r.start_ns = send_ns;
    r.end_ns = end_ns;
    // The child's measured wall time, not the supervisor's round-trip:
    // this is what fleet::Fleet::settle charges (ISSUE: measured child
    // wall time) and what the cache books as recompute cost.
    r.seconds = result.seconds;
    r.cpu_seconds = -1;
    r.outcome.ok = result.ok;
    r.outcome.error = result.error;
    r.outcome.stream = std::move(result.stream);
    r.outcome.rc_state = result.rc_state;
    r.outcome.m = result.m;
    r.outcome.seconds = result.seconds;
    r.outcome.frame_threads = result.frame_threads;
    r.outcome.slice_count = result.slice_count;
    // Re-tile the critical path on the supervisor's clock so the
    // components still sum to the latency the dispatcher scores:
    // queue_wait covers [submit, send] (pool queue + retries + hedging
    // delay), encode covers [send, end] (the winning attempt's
    // round-trip). rc_chain is filled by the dispatcher.
    r.outcome.critical_path = obs::CriticalPath{};
    r.outcome.critical_path.queue_wait_ms = send_ns > rj.submit_ns
        ? static_cast<double>(send_ns - rj.submit_ns) * 1e-6
        : 0.0;
    r.outcome.critical_path.encode_ms =
        static_cast<double>(end_ns - send_ns) * 1e-6;
    {
        std::lock_guard<std::mutex> lock(rj.state->mu);
        rj.state->result = std::move(r);
        rj.state->status = sched::JobStatus::Done;
        rj.state->cv.notify_all();
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
}

void
RemotePool::hedgeLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        cv_.wait_for(lock, std::chrono::milliseconds(2));
        if (stop_ || !config_.hedge)
            continue;
        const size_t min_samples = static_cast<size_t>(
            std::max(1, config_.hedge_min_samples));
        if (samples_ms_.size() < min_samples)
            continue;
        // p99-derived straggler threshold (VBENCH_HEDGE_PCT): the
        // hedge_pct-th percentile of completed attempt latencies,
        // floored so micro-jobs don't hedge on scheduler noise.
        std::vector<double> sorted(samples_ms_);
        std::sort(sorted.begin(), sorted.end());
        const size_t idx = static_cast<size_t>(
            config_.hedge_pct / 100.0 *
            static_cast<double>(sorted.size() - 1));
        const double threshold_ms =
            std::max(sorted[idx], config_.hedge_floor_ms);
        const uint64_t threshold_ns =
            static_cast<uint64_t>(threshold_ms * 1e6);
        const uint64_t now = obs::nowNs();

        // Duplicate the single slowest over-threshold in-flight job.
        std::shared_ptr<RemoteJob> slowest;
        uint64_t slowest_age = 0;
        for (const auto &rj : inflight_) {
            if (rj->hedged ||
                rj->done.load(std::memory_order_relaxed))
                continue;
            const uint64_t sent =
                rj->first_send_ns.load(std::memory_order_relaxed);
            if (sent == 0 || now <= sent)
                continue;
            const uint64_t age = now - sent;
            if (age > threshold_ns && age > slowest_age) {
                slowest = rj;
                slowest_age = age;
            }
        }
        if (slowest) {
            slowest->hedged = true;
            ++counters_.hedges;
            pending_.push_front({std::move(slowest), /*hedge=*/true});
            cv_.notify_one();
        }
    }
}

} // namespace vbench::rpc
