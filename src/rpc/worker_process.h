#pragma once

/**
 * @file
 * WorkerProcess — one fork/exec'd vbench_worker child and the
 * supervisor's handle on it: the socketpair transport, the handshake
 * (protocol version, pid, kernel ISA tier), liveness via waitpid, and
 * SIGKILL-based teardown. One WorkerProcess is one fleet worker slot;
 * RemotePool owns N of them plus all the retry/hedging policy.
 */

#include <cstdint>
#include <optional>
#include <string>

#include <sys/types.h>

#include "rpc/transport.h"
#include "service/segment_job.h"

namespace vbench::rpc {

/**
 * Resolve the vbench_worker binary path: `configured` when non-empty,
 * else $VBENCH_WORKER_BIN, else the build-time default baked into the
 * library (the sibling vbench_worker target). Empty when none exists.
 */
std::string resolveWorkerBinary(const std::string &configured);

struct WorkerProcessConfig {
    std::string binary;        ///< resolveWorkerBinary() input
    int handshake_timeout_ms = 10000;
};

class WorkerProcess
{
  public:
    WorkerProcess() = default;
    explicit WorkerProcess(WorkerProcessConfig config)
        : config_(std::move(config))
    {
    }
    /** stop()s a still-running child. */
    ~WorkerProcess();

    WorkerProcess(const WorkerProcess &) = delete;
    WorkerProcess &operator=(const WorkerProcess &) = delete;

    /** Replace the spawn config; only valid before start(). */
    void configure(WorkerProcessConfig config)
    {
        config_ = std::move(config);
    }

    /**
     * fork/exec the worker and complete the handshake. False with a
     * structured error on spawn failure, handshake timeout, or a
     * protocol-version mismatch (the child is killed and reaped before
     * returning false, so start() can be retried).
     */
    bool start(std::string *error);

    /** Handshake done and the child not known to have exited. */
    bool running() const { return pid_ > 0; }

    pid_t pid() const { return pid_; }
    const std::string &tier() const { return tier_; }

    bool sendJob(const service::SegmentJob &job, std::string *error);

    /**
     * Await the next Result frame. Timeout reports through
     * *timed_out; "peer closed" (the child died — SIGKILL, crash)
     * and framing/deserialize violations report through *error. The
     * caller decides the recovery; this object stays usable only via
     * kill() + start().
     */
    std::optional<service::SegmentResult>
    recvResult(int timeout_ms, std::string *error, bool *timed_out);

    /** SIGKILL + reap. Safe to call in any state. */
    void kill();

    /** Shutdown frame, bounded wait, then kill() if still alive. */
    void stop();

  private:
    void reap(bool block);

    WorkerProcessConfig config_;
    Transport transport_;
    pid_t pid_ = -1;
    std::string tier_;
};

} // namespace vbench::rpc
