#include "video/y4m.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace vbench::video {

namespace {

/** Render fps as the rational N:D that Y4M headers require. */
std::string
fpsToRational(double fps)
{
    // Common NTSC rates need the 1001 denominators to round-trip.
    const double ntsc_bases[] = {24000.0 / 1001, 30000.0 / 1001, 60000.0 / 1001};
    const int ntsc_nums[] = {24000, 30000, 60000};
    for (int i = 0; i < 3; ++i) {
        if (std::abs(fps - ntsc_bases[i]) < 1e-6) {
            return std::to_string(ntsc_nums[i]) + ":1001";
        }
    }
    if (std::abs(fps - std::round(fps)) < 1e-9) {
        return std::to_string(static_cast<int>(std::round(fps))) + ":1";
    }
    return std::to_string(static_cast<int>(std::round(fps * 1000))) + ":1000";
}

} // namespace

bool
writeY4m(const Video &video, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;

    out << "YUV4MPEG2 W" << video.width() << " H" << video.height()
        << " F" << fpsToRational(video.fps()) << " Ip A1:1 C420\n";

    for (const Frame &frame : video.frames()) {
        out << "FRAME\n";
        out.write(reinterpret_cast<const char *>(frame.y().data()),
                  static_cast<std::streamsize>(frame.y().size()));
        out.write(reinterpret_cast<const char *>(frame.u().data()),
                  static_cast<std::streamsize>(frame.u().size()));
        out.write(reinterpret_cast<const char *>(frame.v().data()),
                  static_cast<std::streamsize>(frame.v().size()));
    }
    return static_cast<bool>(out);
}

Video
readY4m(const std::string &path, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return Video();
    };

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail("cannot open " + path);

    std::string header;
    if (!std::getline(in, header))
        return fail("missing Y4M header");
    if (header.rfind("YUV4MPEG2", 0) != 0)
        return fail("not a YUV4MPEG2 file");

    int width = 0, height = 0;
    double fps = 0.0;
    std::istringstream tokens(header.substr(9));
    std::string tok;
    while (tokens >> tok) {
        switch (tok[0]) {
          case 'W': width = std::stoi(tok.substr(1)); break;
          case 'H': height = std::stoi(tok.substr(1)); break;
          case 'F': {
            auto colon = tok.find(':');
            if (colon == std::string::npos)
                return fail("malformed frame rate: " + tok);
            double num = std::stod(tok.substr(1, colon - 1));
            double den = std::stod(tok.substr(colon + 1));
            if (den <= 0)
                return fail("malformed frame rate: " + tok);
            fps = num / den;
            break;
          }
          case 'C':
            if (tok.rfind("C420", 0) != 0)
                return fail("unsupported chroma layout: " + tok);
            break;
          default:
            break; // interlacing / aspect tokens are ignored
        }
    }
    if (width <= 0 || height <= 0 || fps <= 0)
        return fail("incomplete Y4M header");
    if (width % 2 != 0 || height % 2 != 0)
        return fail("odd dimensions unsupported for 4:2:0");

    Video video(width, height, fps);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("FRAME", 0) != 0)
            return fail("expected FRAME marker");
        Frame frame(width, height);
        in.read(reinterpret_cast<char *>(frame.y().data()),
                static_cast<std::streamsize>(frame.y().size()));
        in.read(reinterpret_cast<char *>(frame.u().data()),
                static_cast<std::streamsize>(frame.u().size()));
        in.read(reinterpret_cast<char *>(frame.v().data()),
                static_cast<std::streamsize>(frame.v().size()));
        if (!in)
            return fail("truncated frame data");
        video.append(std::move(frame));
    }
    return video;
}

} // namespace vbench::video
