#include "video/suite.h"

#include <algorithm>
#include <cmath>

namespace vbench::video {

namespace {

/**
 * Measured entropy (bits/pix/s at VBC CRF 18) of each content class at
 * entropy_scale = 1.0 on a 720p30 render. Measured on this codec (see
 * bench_table2_suite); these anchor the target-entropy -> scale
 * mapping. The calibration test checks the mapping stays monotone and
 * lands within a factor-of-two band.
 */
double
measuredAnchor(ContentClass c)
{
    switch (c) {
      case ContentClass::Slideshow: return 0.90;
      case ContentClass::Screencast: return 0.85;
      case ContentClass::Animation: return 3.4;
      case ContentClass::Natural: return 5.2;
      case ContentClass::Sports: return 7.5;
      case ContentClass::Gaming: return 9.0;
      case ContentClass::Noisy: return 42.0;
    }
    return 4.0;
}

/**
 * Dial response: measured entropy ~ anchor * scale^gamma. The response
 * is sublinear for most classes because spatial detail (which barely
 * scales) floors the bitrate; for Noisy content the linear temporal
 * noise dominates and the response is closer to linear.
 */
double
dialGamma(ContentClass c)
{
    return c == ContentClass::Noisy ? 0.75 : 0.42;
}

} // namespace

double
entropyScaleFor(ContentClass c, double target_entropy, double fps)
{
    const double anchor = measuredAnchor(c) * (fps / 30.0);
    const double ratio = std::max(target_entropy, 1e-3) / anchor;
    const double scale = std::pow(ratio, 1.0 / dialGamma(c));
    return std::clamp(scale, 0.01, 8.0);
}

const std::vector<ClipSpec> &
vbenchSuite()
{
    using CC = ContentClass;
    // Resolution / name / entropy straight from Table 2; fps and
    // content class are our assignment.
    static const std::vector<ClipSpec> suite = {
        {"cat",          854,  480, 30, CC::Natural,    6.8, 101},
        {"holi",         854,  480, 25, CC::Sports,     7.0, 102},
        {"desktop",     1280,  720, 30, CC::Screencast, 0.2, 103},
        {"bike",        1280,  720, 30, CC::Natural,    0.9, 104},
        {"cricket",     1280,  720, 50, CC::Sports,     3.4, 105},
        {"game2",       1280,  720, 30, CC::Gaming,     4.9, 106},
        {"girl",        1280,  720, 30, CC::Natural,    5.9, 107},
        {"game3",       1280,  720, 60, CC::Gaming,     6.1, 108},
        {"presentation",1920, 1080, 25, CC::Slideshow,  0.2, 109},
        {"funny",       1920, 1080, 30, CC::Natural,    2.5, 110},
        {"house",       1920, 1080, 24, CC::Natural,    3.6, 111},
        {"game1",       1920, 1080, 60, CC::Gaming,     4.6, 112},
        {"landscape",   1920, 1080, 30, CC::Noisy,      7.2, 113},
        {"hall",        1920, 1080, 25, CC::Noisy,      7.7, 114},
        {"chicken",     3840, 2160, 60, CC::Natural,    5.9, 115},
    };
    return suite;
}

const std::vector<ClipSpec> &
netflixSuite()
{
    using CC = ContentClass;
    // 9 clips of popular TV/movie content: single resolution (1080p),
    // all entropy >= 1 -- the bias Figure 4/5 exposes.
    static const std::vector<ClipSpec> suite = {
        {"nf_drama",    1920, 1080, 24, CC::Natural, 1.8, 201},
        {"nf_action",   1920, 1080, 24, CC::Sports,  6.2, 202},
        {"nf_crowd",    1920, 1080, 30, CC::Sports,  5.0, 203},
        {"nf_foliage",  1920, 1080, 24, CC::Noisy,   7.5, 204},
        {"nf_dialogue", 1920, 1080, 24, CC::Natural, 1.2, 205},
        {"nf_sport",    1920, 1080, 30, CC::Sports,  4.4, 206},
        {"nf_night",    1920, 1080, 24, CC::Noisy,   6.8, 207},
        {"nf_anim",     1920, 1080, 24, CC::Animation, 1.5, 208},
        {"nf_chase",    1920, 1080, 24, CC::Sports,  5.6, 209},
    };
    return suite;
}

const std::vector<ClipSpec> &
xiphSuite()
{
    using CC = ContentClass;
    // Derf collection analogue: multiple resolutions but only
    // high-entropy camera content.
    static const std::vector<ClipSpec> suite = {
        {"xiph_akiyo",     704,  480, 30, CC::Natural, 1.0, 301},
        {"xiph_bus",       704,  480, 30, CC::Sports,  4.8, 302},
        {"xiph_crew",     1280,  720, 60, CC::Sports,  3.8, 303},
        {"xiph_city",     1280,  720, 60, CC::Natural, 2.6, 304},
        {"xiph_parkrun",  1280,  720, 50, CC::Noisy,   7.8, 305},
        {"xiph_shields",  1280,  720, 50, CC::Natural, 3.2, 306},
        {"xiph_station",  1920, 1080, 25, CC::Natural, 1.9, 307},
        {"xiph_crowdrun", 1920, 1080, 50, CC::Sports,  6.6, 308},
        {"xiph_pedestrian",1920,1080, 25, CC::Natural, 2.2, 309},
        {"xiph_riverbed", 1920, 1080, 25, CC::Noisy,   9.0, 310},
        {"xiph_ducks",    3840, 2160, 50, CC::Noisy,   8.2, 311},
        {"xiph_aspen",    1920, 1080, 30, CC::Natural, 2.9, 312},
    };
    return suite;
}

const std::vector<ClipSpec> &
specSuite()
{
    using CC = ContentClass;
    // SPEC 2017 uses two segments of the same HD animation (Big Buck
    // Bunny): nearly identical entropy, one resolution.
    static const std::vector<ClipSpec> suite = {
        {"spec_bbb_a", 1280, 720, 24, CC::Animation, 1.1, 401},
        {"spec_bbb_b", 1280, 720, 24, CC::Animation, 1.3, 402},
    };
    return suite;
}

Video
synthesizeClip(const ClipSpec &spec, int frames)
{
    if (frames <= 0)
        frames = static_cast<int>(std::lround(spec.fps * 5.0));
    SynthParams p = presetFor(spec.content, spec.width, spec.height,
                              spec.fps, frames, spec.seed,
                              entropyScaleFor(spec.content,
                                              spec.target_entropy,
                                              spec.fps));
    return synthesize(p, spec.name);
}

} // namespace vbench::video
