#pragma once

/**
 * @file
 * YUV4MPEG2 (.y4m) reader and writer.
 *
 * Y4M is the uncompressed interchange format ffmpeg and the reference
 * encoders consume; supporting it lets vbench clips round-trip to and
 * from external tools.
 */

#include <string>

#include "video/video.h"

namespace vbench::video {

/**
 * Write a video to a YUV4MPEG2 file (C420 layout).
 *
 * @param video the clip to serialize.
 * @param path destination file path.
 * @return true on success, false on I/O failure.
 */
bool writeY4m(const Video &video, const std::string &path);

/**
 * Read a YUV4MPEG2 file. Only the C420/C420jpeg/C420mpeg2 chroma
 * layouts are supported (all are stored identically).
 *
 * @param path source file path.
 * @param[out] error optional human-readable failure reason.
 * @return the parsed video; empty() on failure.
 */
Video readY4m(const std::string &path, std::string *error = nullptr);

} // namespace vbench::video
