#pragma once

/**
 * @file
 * The vbench video suite (paper Table 2) and the comparison datasets
 * (Netflix, Xiph.org, SPEC analogues) as synthesizable clip specs.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "video/synth.h"
#include "video/video.h"

namespace vbench::video {

/**
 * Descriptor for one benchmark clip: geometry, content family, and the
 * target entropy (bits/pixel/second at VBC CRF 18) the synthesizer is
 * calibrated toward. For the vbench suite these reproduce Table 2 of
 * the paper.
 */
struct ClipSpec {
    std::string name;
    int width = 0;
    int height = 0;
    double fps = 30.0;
    ContentClass content = ContentClass::Natural;
    /// Table 2 entropy in bits/pixel/second, the calibration target.
    double target_entropy = 1.0;
    uint64_t seed = 1;

    /// Resolution in Kpixels as vbench reports it.
    int kpixels() const { return (width * height + 500) / 1000; }
};

/**
 * The 15-video vbench suite of paper Table 2. Resolutions, names, and
 * entropies match the table; frame rates and content classes are our
 * assignment (the paper does not tabulate per-clip rates) and are
 * documented in DESIGN.md.
 */
const std::vector<ClipSpec> &vbenchSuite();

/**
 * Netflix dataset analogue: 9 clips, all 1080p, all high entropy
 * (>= 1 bit/pix/s), mirroring the bias Figure 4 exposes.
 */
const std::vector<ClipSpec> &netflixSuite();

/**
 * Xiph.org (Derf) analogue: high-entropy clips across 480p..4K.
 */
const std::vector<ClipSpec> &xiphSuite();

/**
 * SPEC 2017 analogue: two segments of the same HD animation, nearly
 * identical entropy.
 */
const std::vector<ClipSpec> &specSuite();

/**
 * Map a Table 2 target entropy onto the synthesizer's entropy_scale
 * dial for the given content class. Calibrated against VBC CRF 18
 * measurements: each class has a measured entropy anchor at scale 1
 * (720p30), the dial's response is sublinear (entropy ~ scale^0.42,
 * because spatial detail saturates while temporal noise scales), and
 * entropy in bits/pixel/second grows with frame rate.
 *
 * @param fps the clip's frame rate (entropy targets are per-second).
 */
double entropyScaleFor(ContentClass c, double target_entropy,
                       double fps = 30.0);

/**
 * Synthesize a clip from its spec.
 *
 * @param spec the clip descriptor.
 * @param frames number of frames to render; <= 0 renders the vbench
 *        standard 5 seconds at the spec's frame rate. Benchmarks use
 *        shorter renders since every reported metric is normalized by
 *        duration and resolution.
 */
Video synthesizeClip(const ClipSpec &spec, int frames = 0);

} // namespace vbench::video
