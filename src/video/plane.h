#pragma once

/**
 * @file
 * A single image plane (luma or chroma) of 8-bit samples.
 */

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "kernels/kernel_ops.h"

namespace vbench::video {

/**
 * A rectangular array of 8-bit samples with edge-clamped access.
 *
 * Planes are the fundamental pixel container used by the synthesizer,
 * the codecs, and the quality metrics. Out-of-bounds reads through
 * atClamped() replicate the border sample, matching the edge-extension
 * rule video codecs use for motion compensation near frame boundaries.
 */
class Plane
{
  public:
    Plane() = default;

    Plane(int width, int height, uint8_t fill_value = 0)
        : width_(width), height_(height),
          samples_(static_cast<size_t>(width) * height, fill_value)
    {
        assert(width > 0 && height > 0);
    }

    int width() const { return width_; }
    int height() const { return height_; }

    /** Number of samples in the plane. */
    size_t size() const { return samples_.size(); }

    bool empty() const { return samples_.empty(); }

    uint8_t *data() { return samples_.data(); }
    const uint8_t *data() const { return samples_.data(); }

    /** Unchecked sample access; (x, y) must be inside the plane. */
    uint8_t
    at(int x, int y) const
    {
        assert(x >= 0 && x < width_ && y >= 0 && y < height_);
        return samples_[static_cast<size_t>(y) * width_ + x];
    }

    uint8_t &
    at(int x, int y)
    {
        assert(x >= 0 && x < width_ && y >= 0 && y < height_);
        return samples_[static_cast<size_t>(y) * width_ + x];
    }

    /** Edge-clamped access: out-of-bounds coordinates replicate the border. */
    uint8_t
    atClamped(int x, int y) const
    {
        x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
        y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
        return samples_[static_cast<size_t>(y) * width_ + x];
    }

    /** Pointer to the first sample of row y. */
    const uint8_t *row(int y) const { return data() + static_cast<size_t>(y) * width_; }
    uint8_t *row(int y) { return data() + static_cast<size_t>(y) * width_; }

    void
    fill(uint8_t value)
    {
        std::memset(samples_.data(), value, samples_.size());
    }

    bool
    operator==(const Plane &other) const
    {
        return width_ == other.width_ && height_ == other.height_ &&
            samples_ == other.samples_;
    }

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<uint8_t> samples_;
};

/**
 * Copy `src` into `dst`, replicating the right/bottom border samples
 * when `dst` is larger (codec edge extension) and cropping when it is
 * smaller. Both codecs use this for macroblock-aligned frame padding
 * and for cropping decoded output back to display size.
 */
inline void
padPlaneInto(const Plane &src, Plane &dst)
{
    const int copy_w = std::min(src.width(), dst.width());
    const int copy_h = std::min(src.height(), dst.height());
    kernels::ops().copy2d(src.data(), src.width(), dst.data(),
                          dst.width(), copy_w, copy_h);
    for (int y = 0; y < copy_h; ++y) {
        uint8_t *d = dst.row(y);
        if (dst.width() > copy_w)
            std::memset(d + copy_w, d[copy_w - 1],
                        static_cast<size_t>(dst.width() - copy_w));
    }
    for (int y = copy_h; y < dst.height(); ++y)
        std::memcpy(dst.row(y), dst.row(copy_h - 1),
                    static_cast<size_t>(dst.width()));
}

} // namespace vbench::video
