#pragma once

/**
 * @file
 * A video clip: a frame sequence plus timing metadata.
 */

#include <cassert>
#include <string>
#include <vector>

#include "video/frame.h"

namespace vbench::video {

/**
 * An uncompressed video clip. Frames all share one resolution; the
 * frame rate is carried so that normalized metrics (bits/pixel/second,
 * Mpixel/second) can be computed without side channels.
 */
class Video
{
  public:
    Video() = default;

    Video(int width, int height, double fps, std::string name = "")
        : width_(width), height_(height), fps_(fps), name_(std::move(name))
    {
        assert(fps > 0.0);
    }

    int width() const { return width_; }
    int height() const { return height_; }
    double fps() const { return fps_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    int frameCount() const { return static_cast<int>(frames_.size()); }
    bool empty() const { return frames_.empty(); }

    /** Duration in seconds implied by frame count and rate. */
    double duration() const { return frameCount() / fps_; }

    /** Luma pixels per frame. */
    size_t pixelsPerFrame() const { return static_cast<size_t>(width_) * height_; }

    /** Total luma pixels across the clip. */
    size_t
    totalPixels() const
    {
        return pixelsPerFrame() * frames_.size();
    }

    /** Resolution in Kpixels, rounded, as vbench categorizes videos. */
    int
    kpixels() const
    {
        return static_cast<int>((pixelsPerFrame() + 500) / 1000);
    }

    void
    append(Frame frame)
    {
        assert(frame.width() == width_ && frame.height() == height_);
        frames_.push_back(std::move(frame));
    }

    Frame &frame(int i) { return frames_.at(i); }
    const Frame &frame(int i) const { return frames_.at(i); }

    std::vector<Frame> &frames() { return frames_; }
    const std::vector<Frame> &frames() const { return frames_; }

  private:
    int width_ = 0;
    int height_ = 0;
    double fps_ = 30.0;
    std::string name_;
    std::vector<Frame> frames_;
};

} // namespace vbench::video
