#include "video/synth.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "video/rng.h"

namespace vbench::video {

namespace {

/** splitmix64-style integer mix used for per-scene salts. */
uint64_t
mix(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/**
 * A 256x256 tiled random lattice sampled bilinearly. Summing a few
 * octaves gives the organic texture field; sampling it in *world*
 * coordinates (screen + pan offset) makes camera motion coherent and
 * therefore inter-predictable, which is what lets low-noise content
 * compress well.
 */
class NoiseField
{
  public:
    explicit
    NoiseField(uint64_t salt)
        : lattice_(kSize * kSize)
    {
        Rng rng(salt);
        for (auto &v : lattice_)
            v = static_cast<uint8_t>(rng.next() & 0xFF);
    }

    /** Bilinear sample, result in [-1, 1). Coordinates in lattice units. */
    double
    sample(double x, double y) const
    {
        int ix = static_cast<int>(std::floor(x));
        int iy = static_cast<int>(std::floor(y));
        double fx = x - ix;
        double fy = y - iy;
        double v00 = at(ix, iy), v10 = at(ix + 1, iy);
        double v01 = at(ix, iy + 1), v11 = at(ix + 1, iy + 1);
        double top = v00 + (v10 - v00) * fx;
        double bot = v01 + (v11 - v01) * fx;
        return (top + (bot - top) * fy) * (2.0 / 255.0) - 1.0;
    }

    /** Multi-octave fractal sum, result roughly in [-1, 1]. */
    double
    fractal(double x, double y, int octaves) const
    {
        double sum = 0.0, amp = 0.5, freq = 1.0;
        for (int o = 0; o < octaves; ++o) {
            sum += amp * sample(x * freq + o * 37.0, y * freq + o * 91.0);
            amp *= 0.5;
            freq *= 2.0;
        }
        return sum;
    }

  private:
    static constexpr int kSize = 256;

    double
    at(int ix, int iy) const
    {
        return lattice_[(static_cast<unsigned>(iy) & (kSize - 1)) * kSize +
                        (static_cast<unsigned>(ix) & (kSize - 1))];
    }

    std::vector<uint8_t> lattice_;
};

/** One moving foreground element (disc with a chroma tint). */
struct MovingObject {
    double x0, y0;      ///< scene-start position
    double vx, vy;      ///< velocity, px/frame
    double radius;
    int luma_delta;     ///< added to Y inside the disc
    int cb_delta;       ///< chroma tint
    int cr_delta;
};

/** Per-scene state regenerated at every hard cut. */
struct Scene {
    uint64_t salt;
    int base_luma;
    double pan_dx, pan_dy;  ///< pan direction (unit-ish vector)
    std::vector<MovingObject> objects;
    NoiseField texture;
    NoiseField chroma_field;

    Scene(uint64_t salt_in, const SynthParams &p)
        : salt(salt_in), texture(mix(salt_in ^ 0x1111)),
          chroma_field(mix(salt_in ^ 0x2222))
    {
        Rng rng(salt);
        base_luma = 56 + static_cast<int>(rng.below(120));
        double angle = rng.uniform(0.0, 2.0 * M_PI);
        pan_dx = std::cos(angle);
        pan_dy = std::sin(angle);

        double mpix = p.width * static_cast<double>(p.height) / 1e6;
        int count = static_cast<int>(std::lround(p.object_density * mpix));
        for (int i = 0; i < count; ++i) {
            MovingObject obj;
            obj.x0 = rng.uniform(0.0, p.width);
            obj.y0 = rng.uniform(0.0, p.height);
            double oa = rng.uniform(0.0, 2.0 * M_PI);
            double speed = p.object_speed * rng.uniform(0.5, 1.5);
            obj.vx = std::cos(oa) * speed;
            obj.vy = std::sin(oa) * speed;
            obj.radius = rng.uniform(p.width / 40.0, p.width / 10.0);
            obj.luma_delta = static_cast<int>(rng.range(-80, 80));
            obj.cb_delta = static_cast<int>(rng.range(-48, 48));
            obj.cr_delta = static_cast<int>(rng.range(-48, 48));
            objects.push_back(obj);
        }
    }
};

int
clampByte(int v)
{
    return v < 0 ? 0 : (v > 255 ? 255 : v);
}

} // namespace

const char *
toString(ContentClass c)
{
    switch (c) {
      case ContentClass::Slideshow: return "slideshow";
      case ContentClass::Screencast: return "screencast";
      case ContentClass::Animation: return "animation";
      case ContentClass::Natural: return "natural";
      case ContentClass::Sports: return "sports";
      case ContentClass::Gaming: return "gaming";
      case ContentClass::Noisy: return "noisy";
    }
    return "unknown";
}

SynthParams
presetFor(ContentClass c, int width, int height, double fps, int frames,
          uint64_t seed, double entropy_scale)
{
    SynthParams p;
    p.width = width;
    p.height = height;
    p.fps = fps;
    p.frames = frames;
    p.seed = seed;

    switch (c) {
      case ContentClass::Slideshow:
        p.detail = 20; p.texture_scale = 96; p.scene_cut_interval = 2.5;
        break;
      case ContentClass::Screencast:
        p.detail = 12; p.texture_scale = 72; p.posterize = true;
        p.object_density = 1.0; p.object_speed = 3.0;
        p.scene_cut_interval = 4.0; p.chroma_strength = 0.4;
        break;
      case ContentClass::Animation:
        p.detail = 18; p.texture_scale = 64; p.posterize = true;
        p.pan_speed = 1.0; p.object_density = 3.0; p.object_speed = 3.0;
        p.scene_cut_interval = 3.0; p.noise = 0.4;
        break;
      case ContentClass::Natural:
        p.detail = 28; p.texture_scale = 48; p.pan_speed = 1.5;
        p.object_density = 2.0; p.object_speed = 2.0; p.noise = 1.5;
        break;
      case ContentClass::Sports:
        p.detail = 30; p.texture_scale = 32; p.pan_speed = 4.0;
        p.object_density = 6.0; p.object_speed = 6.0; p.noise = 2.5;
        p.scene_cut_interval = 1.5;
        break;
      case ContentClass::Gaming:
        p.detail = 24; p.texture_scale = 40; p.pan_speed = 2.0;
        p.object_density = 8.0; p.object_speed = 8.0; p.noise = 2.0;
        p.flicker = 6.0; p.hud_overlay = true; p.scene_cut_interval = 2.0;
        break;
      case ContentClass::Noisy:
        p.detail = 32; p.texture_scale = 24; p.pan_speed = 2.0;
        p.object_density = 4.0; p.object_speed = 4.0; p.noise = 8.0;
        break;
    }

    // One dial sweeps the entropy range: temporal noise scales
    // linearly (it is incompressible by construction), motion and
    // flicker scale with sqrt so trajectories stay plausible, and
    // spatial detail scales sublinearly (it floors the bitrate).
    double s = std::max(entropy_scale, 0.0);
    p.noise *= s;
    double ms = std::sqrt(s);
    p.pan_speed *= ms;
    p.object_speed *= ms;
    p.flicker *= std::min(ms, 2.0);
    p.detail *= std::min(std::pow(s, 0.45), 1.8);
    if (p.scene_cut_interval > 0) {
        // More cuts above scale 1, sparser cuts below it.
        p.scene_cut_interval /= std::clamp(ms, 0.5, 2.0);
    }
    return p;
}

Video
synthesize(const SynthParams &p, const std::string &name)
{
    Video video(p.width, p.height, p.fps, name);

    const int cut_frames = p.scene_cut_interval > 0
        ? std::max(1, static_cast<int>(std::lround(p.scene_cut_interval * p.fps)))
        : 0;

    std::vector<Scene> scenes;
    auto sceneFor = [&](int frame_idx) -> const Scene & {
        size_t idx = cut_frames > 0 ? frame_idx / cut_frames : 0;
        while (scenes.size() <= idx)
            scenes.emplace_back(mix(p.seed ^ (scenes.size() * 0x9E37ull + 1)),
                                p);
        return scenes[idx];
    };

    const double inv_scale = 1.0 / std::max(p.texture_scale, 1.0);
    Rng noise_rng(mix(p.seed ^ 0xABCDEF));

    for (int t = 0; t < p.frames; ++t) {
        const Scene &scene = sceneFor(t);
        const int scene_t = cut_frames > 0 ? t % cut_frames : t;
        Frame frame(p.width, p.height);

        const double pan_x = p.pan_speed * scene.pan_dx * scene_t;
        const double pan_y = p.pan_speed * scene.pan_dy * scene_t;

        int flicker_offset = 0;
        if (p.flicker > 0) {
            Rng fr(mix(scene.salt ^ (0x77ull + scene_t)));
            flicker_offset =
                static_cast<int>(fr.range(-static_cast<int>(p.flicker),
                                          static_cast<int>(p.flicker)));
        }

        // --- Luma: textured background in world coordinates. ---
        Plane &y = frame.y();
        for (int py = 0; py < p.height; ++py) {
            uint8_t *row = y.row(py);
            const double wy = (py + pan_y) * inv_scale;
            for (int px = 0; px < p.width; ++px) {
                const double wx = (px + pan_x) * inv_scale;
                double f = scene.texture.fractal(wx, wy, 3);
                int v = scene.base_luma + flicker_offset +
                    static_cast<int>(f * p.detail * 2.0);
                if (p.posterize)
                    v = (v & ~15) + 8;
                row[px] = static_cast<uint8_t>(clampByte(v));
            }
        }

        // --- Moving objects (luma part). ---
        for (const MovingObject &obj : scene.objects) {
            const double span_x = p.width + 2 * obj.radius;
            const double span_y = p.height + 2 * obj.radius;
            double cx = std::fmod(obj.x0 + obj.vx * scene_t + obj.radius,
                                  span_x);
            double cy = std::fmod(obj.y0 + obj.vy * scene_t + obj.radius,
                                  span_y);
            if (cx < 0)
                cx += span_x;
            if (cy < 0)
                cy += span_y;
            cx -= obj.radius;
            cy -= obj.radius;
            const int r = static_cast<int>(obj.radius);
            const int x_lo = std::max(0, static_cast<int>(cx) - r);
            const int x_hi = std::min(p.width - 1, static_cast<int>(cx) + r);
            const int y_lo = std::max(0, static_cast<int>(cy) - r);
            const int y_hi = std::min(p.height - 1, static_cast<int>(cy) + r);
            const double r2 = obj.radius * obj.radius;
            for (int py = y_lo; py <= y_hi; ++py) {
                uint8_t *row = y.row(py);
                const double dy2 = (py - cy) * (py - cy);
                for (int px = x_lo; px <= x_hi; ++px) {
                    const double d2 = (px - cx) * (px - cx) + dy2;
                    if (d2 <= r2)
                        row[px] = static_cast<uint8_t>(
                            clampByte(row[px] + obj.luma_delta));
                }
            }
        }

        // --- Static HUD overlay drawn in screen coordinates. ---
        if (p.hud_overlay) {
            NoiseField hud(mix(p.seed ^ 0x4444));
            const int bar = std::max(8, p.height / 12);
            for (int py = 0; py < bar; ++py) {
                uint8_t *row = y.row(p.height - 1 - py);
                for (int px = 0; px < p.width; ++px) {
                    double f = hud.sample(px * 0.05, py * 0.05);
                    row[px] = static_cast<uint8_t>(
                        clampByte(200 + static_cast<int>(f * 30)));
                }
            }
        }

        // --- Chroma: slow tint field plus object tints. ---
        Plane &u = frame.u();
        Plane &v = frame.v();
        const int cw = u.width(), ch = u.height();
        for (int py = 0; py < ch; ++py) {
            uint8_t *urow = u.row(py);
            uint8_t *vrow = v.row(py);
            const double wy = (py * 2 + pan_y) * inv_scale * 0.5;
            for (int px = 0; px < cw; ++px) {
                const double wx = (px * 2 + pan_x) * inv_scale * 0.5;
                double f = scene.chroma_field.sample(wx, wy);
                double g = scene.chroma_field.sample(wx + 71.0, wy + 13.0);
                urow[px] = static_cast<uint8_t>(
                    clampByte(128 + static_cast<int>(f * 24 *
                                                     p.chroma_strength)));
                vrow[px] = static_cast<uint8_t>(
                    clampByte(128 + static_cast<int>(g * 24 *
                                                     p.chroma_strength)));
            }
        }
        for (const MovingObject &obj : scene.objects) {
            const double span_x = p.width + 2 * obj.radius;
            const double span_y = p.height + 2 * obj.radius;
            double cx = std::fmod(obj.x0 + obj.vx * scene_t + obj.radius,
                                  span_x);
            double cy = std::fmod(obj.y0 + obj.vy * scene_t + obj.radius,
                                  span_y);
            if (cx < 0)
                cx += span_x;
            if (cy < 0)
                cy += span_y;
            cx = (cx - obj.radius) * 0.5;
            cy = (cy - obj.radius) * 0.5;
            const double cr = obj.radius * 0.5;
            const int r = static_cast<int>(cr);
            const int x_lo = std::max(0, static_cast<int>(cx) - r);
            const int x_hi = std::min(cw - 1, static_cast<int>(cx) + r);
            const int y_lo = std::max(0, static_cast<int>(cy) - r);
            const int y_hi = std::min(ch - 1, static_cast<int>(cy) + r);
            const double r2 = cr * cr;
            for (int py = y_lo; py <= y_hi; ++py) {
                uint8_t *urow = u.row(py);
                uint8_t *vrow = v.row(py);
                const double dy2 = (py - cy) * (py - cy);
                for (int px = x_lo; px <= x_hi; ++px) {
                    if ((px - cx) * (px - cx) + dy2 <= r2) {
                        urow[px] = static_cast<uint8_t>(
                            clampByte(urow[px] + obj.cb_delta));
                        vrow[px] = static_cast<uint8_t>(
                            clampByte(vrow[px] + obj.cr_delta));
                    }
                }
            }
        }

        // --- Temporal noise last: uncorrelated across frames. ---
        if (p.noise > 0) {
            const int amp = std::max(1, static_cast<int>(p.noise));
            for (int py = 0; py < p.height; ++py) {
                uint8_t *row = y.row(py);
                for (int px = 0; px < p.width; ++px) {
                    uint64_t r = noise_rng.next();
                    // Triangular distribution in [-amp, amp].
                    int n = static_cast<int>((r & 0xFF) % (amp + 1)) -
                        static_cast<int>(((r >> 8) & 0xFF) % (amp + 1));
                    row[px] = static_cast<uint8_t>(clampByte(row[px] + n));
                }
            }
            const int camp = std::max(1, amp / 2);
            for (Plane *plane : {&u, &v}) {
                for (int py = 0; py < plane->height(); ++py) {
                    uint8_t *row = plane->row(py);
                    for (int px = 0; px < plane->width(); ++px) {
                        uint64_t r = noise_rng.next();
                        int n = static_cast<int>((r & 0xFF) % (camp + 1)) -
                            static_cast<int>(((r >> 8) & 0xFF) % (camp + 1));
                        row[px] =
                            static_cast<uint8_t>(clampByte(row[px] + n));
                    }
                }
            }
        }

        video.append(std::move(frame));
    }
    return video;
}

} // namespace vbench::video
