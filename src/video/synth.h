#pragma once

/**
 * @file
 * Procedural YUV420 video synthesizer.
 *
 * vbench's published clips are CC-BY excerpts of YouTube uploads that
 * we cannot ship here, so the suite is regenerated procedurally. The
 * synthesizer produces clips whose *measured* entropy (bits/pixel/s at
 * VBC CRF 18, the paper's definition) is controlled by a small set of
 * content knobs, spanning the same four orders of magnitude the
 * YouTube coverage corpus spans: static slideshows (entropy < 1) up to
 * high-motion noisy sports footage (entropy > 10).
 */

#include <cstdint>
#include <string>

#include "video/video.h"

namespace vbench::video {

/**
 * Broad content families mirroring what a sharing service ingests.
 * Each maps to a knob preset in presetFor().
 */
enum class ContentClass {
    Slideshow,   ///< still images with hard cuts; near-zero motion
    Screencast,  ///< desktop capture: static UI, small cursor motion
    Animation,   ///< flat shaded regions, sharp edges, moderate motion
    Natural,     ///< camera footage: pan, organic texture, mild noise
    Sports,      ///< fast pan, many moving objects, frequent cuts
    Gaming,      ///< fast sprites, flicker, static HUD overlay
    Noisy,       ///< sensor-noise dominated content; worst case entropy
};

/** Parse/print helpers for CLI surfaces and reports. */
const char *toString(ContentClass c);

/**
 * Full knob set for one synthetic clip. Everything is deterministic
 * given the seed: two calls with equal params return identical pixels.
 */
struct SynthParams {
    int width = 640;
    int height = 360;
    double fps = 30.0;
    int frames = 30;
    uint64_t seed = 1;

    /// Global camera pan in luma pixels per frame.
    double pan_speed = 0.0;
    /// Moving foreground objects per megapixel of frame area.
    double object_density = 0.0;
    /// Object velocity in pixels per frame.
    double object_speed = 0.0;
    /// Amplitude of the static multi-octave texture field (0..64).
    double detail = 8.0;
    /// Base texture wavelength in pixels; smaller means busier frames.
    double texture_scale = 64.0;
    /// Temporal (uncorrelated) noise amplitude; the strongest entropy knob.
    double noise = 0.0;
    /// Seconds between hard scene cuts; <= 0 disables cuts.
    double scene_cut_interval = 0.0;
    /// Global luma flicker amplitude (gaming/strobe content).
    double flicker = 0.0;
    /// Quantize luma into flat bands with sharp edges (animation/screen).
    bool posterize = false;
    /// Keep a static HUD frame overlay (gaming).
    bool hud_overlay = false;
    /// Chroma saturation scale (0 = grayscale, 1 = default).
    double chroma_strength = 1.0;
};

/**
 * Knob presets for a content class at a given geometry. The entropy
 * scale factor multiplies the motion/noise/detail knobs together so a
 * single dial spans the corpus entropy range; 1.0 is the class default.
 */
SynthParams presetFor(ContentClass c, int width, int height, double fps,
                      int frames, uint64_t seed, double entropy_scale = 1.0);

/**
 * Render a clip. Deterministic in params.seed.
 */
Video synthesize(const SynthParams &params, const std::string &name = "");

} // namespace vbench::video
