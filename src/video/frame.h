#pragma once

/**
 * @file
 * YUV 4:2:0 video frame.
 */

#include <cassert>
#include <cstdint>

#include "video/plane.h"

namespace vbench::video {

/** Plane indices within a Frame. */
enum class PlaneId { Y = 0, U = 1, V = 2 };

/**
 * A YUV 4:2:0 frame: full-resolution luma plus two half-resolution
 * chroma planes. Dimensions must be even so the chroma subsampling is
 * exact; callers pad odd sizes before constructing frames.
 */
class Frame
{
  public:
    Frame() = default;

    Frame(int width, int height)
        : y_(width, height, 16),
          u_(width / 2, height / 2, 128),
          v_(width / 2, height / 2, 128)
    {
        assert(width % 2 == 0 && height % 2 == 0);
    }

    int width() const { return y_.width(); }
    int height() const { return y_.height(); }

    bool empty() const { return y_.empty(); }

    /** Total sample count across all three planes (1.5 samples/pixel). */
    size_t
    sampleCount() const
    {
        return y_.size() + u_.size() + v_.size();
    }

    /** Luma pixel count (the "pixels" used for all normalized metrics). */
    size_t pixelCount() const { return y_.size(); }

    Plane &y() { return y_; }
    const Plane &y() const { return y_; }
    Plane &u() { return u_; }
    const Plane &u() const { return u_; }
    Plane &v() { return v_; }
    const Plane &v() const { return v_; }

    Plane &
    plane(PlaneId id)
    {
        switch (id) {
          case PlaneId::Y: return y_;
          case PlaneId::U: return u_;
          default: return v_;
        }
    }

    const Plane &
    plane(PlaneId id) const
    {
        switch (id) {
          case PlaneId::Y: return y_;
          case PlaneId::U: return u_;
          default: return v_;
        }
    }

    bool
    operator==(const Frame &other) const
    {
        return y_ == other.y_ && u_ == other.u_ && v_ == other.v_;
    }

  private:
    Plane y_;
    Plane u_;
    Plane v_;
};

} // namespace vbench::video
