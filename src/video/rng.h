#pragma once

/**
 * @file
 * Small deterministic PRNG (xoshiro256**) used everywhere randomness is
 * needed, so every synthetic video, corpus, and experiment is exactly
 * reproducible from a seed.
 */

#include <cstdint>

namespace vbench::video {

/**
 * xoshiro256** by Blackman & Vigna, seeded via splitmix64. Chosen over
 * std::mt19937 because its output is specified independent of the
 * standard library implementation and it is cheap enough to call per
 * pixel.
 */
class Rng
{
  public:
    explicit
    Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 expansion of the seed into the four lanes.
        uint64_t x = seed;
        for (auto &lane : state_) {
            x += 0x9E3779B97F4A7C15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            lane = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

    /** Approximate standard normal via sum of uniforms (Irwin-Hall). */
    double
    gaussian()
    {
        double s = 0.0;
        for (int i = 0; i < 12; ++i)
            s += uniform();
        return s - 6.0;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace vbench::video
