#include "sched/scheduler.h"

#include <algorithm>
#include <thread>

#include "core/runtime_config.h"
#include "obs/clock.h"
#include "obs/obs.h"
#include "sched/frame_threads.h"

namespace vbench::sched {

namespace {

/** Upper bound on worker threads: a typo in VBENCH_JOBS should not
 *  fork-bomb the host. */
constexpr int kMaxWorkers = core::kMaxRuntimeJobs;

/**
 * VBENCH_JOBS via core::RuntimeConfig: 0 when unset (fall through to
 * the hardware), fail-fast on a malformed value. Re-read per call so a
 * scheduler constructed after setenv() sees the new size.
 */
int
parseJobsEnv()
{
    return core::freshRuntimeConfig().jobs;
}

} // namespace

JobStatus
JobHandle::status() const
{
    if (!state_)
        return JobStatus::Cancelled;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->status;
}

bool
JobHandle::finished() const
{
    const JobStatus s = status();
    return s == JobStatus::Done || s == JobStatus::Cancelled;
}

bool
JobHandle::cancel()
{
    if (!state_)
        return false;
    // Flag first: a worker picking the job up right now sees it.
    state_->cancel_requested.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->status == JobStatus::Pending ||
        state_->status == JobStatus::Running;
}

const JobResult &
JobHandle::wait() const
{
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] {
        return state_->status == JobStatus::Done ||
            state_->status == JobStatus::Cancelled;
    });
    return state_->result;
}

int
Scheduler::defaultWorkerCount()
{
    if (const int jobs = parseJobsEnv())
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(std::min<unsigned>(hw, kMaxWorkers))
                  : 1;
}

Scheduler::Scheduler(SchedulerConfig config) : config_(config)
{
    const int workers = config_.workers > 0
        ? std::min(config_.workers, kMaxWorkers)
        : defaultWorkerCount();
    shards_.resize(static_cast<size_t>(workers));
    for (WorkerShard &shard : shards_) {
        shard.tracer = std::make_unique<obs::Tracer>();
        shard.metrics = std::make_unique<obs::MetricsRegistry>();
    }
    pool_ = std::make_unique<ThreadPool>(workers, config_.queue_capacity);
    // While this scheduler is alive its workers ARE the machine's
    // transcode pool: the frame-thread oversubscription guard divides
    // this budget between concurrently running jobs.
    setFrameThreadBudget(workers);
}

Scheduler::~Scheduler()
{
    // Drain and join before the shards are merged: after this, every
    // accepted job has resolved its handle.
    pool_.reset();
    mergeObsShards();
    setFrameThreadBudget(0);
}

obs::Tracer *
Scheduler::shardMergeTracer() const
{
    return config_.merge_tracer ? config_.merge_tracer
                                : obs::globalTracer();
}

obs::MetricsRegistry *
Scheduler::shardMergeMetrics() const
{
    if (config_.merge_metrics)
        return config_.merge_metrics;
    return obs::metricsEnabled() ? &obs::globalMetrics() : nullptr;
}

JobHandle
Scheduler::submit(TranscodeJob job)
{
    auto state = std::make_shared<detail::JobState>();
    state->submit_ns = obs::nowNs();
    JobHandle handle(state);
    const bool accepted = pool_->submit(
        [this, state, job = std::move(job)](int worker) mutable {
            runJob(state, job, worker);
        });
    if (!accepted) {
        // Pool shutting down: resolve the handle as cancelled so
        // nobody blocks forever on wait().
        std::lock_guard<std::mutex> lock(state->mu);
        state->status = JobStatus::Cancelled;
        state->result.label = std::string();
        state->result.cancelled = true;
        state->result.outcome.error = "scheduler shut down";
        state->cv.notify_all();
    }
    return handle;
}

void
Scheduler::runJob(const std::shared_ptr<detail::JobState> &state,
                  TranscodeJob &job, int worker)
{
    {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->cancel_requested.load(std::memory_order_relaxed)) {
            state->status = JobStatus::Cancelled;
            state->result.label = job.label;
            state->result.worker = worker;
            state->result.cancelled = true;
            state->result.outcome.error = "cancelled";
            state->cv.notify_all();
            return;
        }
        state->status = JobStatus::Running;
    }

    core::TranscodeRequest request = job.request;
    request.cancel = &state->cancel_requested;
    // Route instrumentation to this worker's private shard unless the
    // job brought explicit sinks. The shard has a single writer (this
    // worker), which is what the delta-based leaf attribution in
    // core::transcode() requires; the global fallback inside
    // transcode() is never taken concurrently.
    WorkerShard &shard = shards_[static_cast<size_t>(worker)];
    if (!request.tracer && shardMergeTracer())
        request.tracer = shard.tracer.get();
    if (!request.metrics && shardMergeMetrics())
        request.metrics = shard.metrics.get();

    JobResult result;
    result.label = job.label;
    result.worker = worker;
    result.submit_ns = state->submit_ns;
    result.start_ns = obs::nowNs();
    const double start = obs::nowSeconds();
    const double cpu_start = obs::threadCpuSeconds();
    if (!job.input || !job.original) {
        result.outcome.error = "job missing input or original video";
    } else {
        // Counted while the transcode runs so decideFrameThreads()
        // inside it sees the true job-level concurrency.
        ActiveJobScope active;
        result.outcome =
            core::transcode(*job.input, *job.original, request);
    }
    result.seconds = obs::nowSeconds() - start;
    result.end_ns = obs::nowNs();
    if (cpu_start >= 0) {
        const double cpu_end = obs::threadCpuSeconds();
        if (cpu_end >= 0)
            result.cpu_seconds = cpu_end - cpu_start;
    }
    result.cancelled = result.outcome.error == "cancelled";

    // Critical-path accounting against the scheduler's own clock:
    // queue_wait + encode tiles [submit_ns, end_ns] exactly, so a
    // caller's submit-to-finish latency decomposes without residue.
    // (encode_ms here is the full on-worker wall — transcode work plus
    // the measurement overhead a waiting caller also sits through — so
    // it supersedes the narrower value transcode() itself filled.)
    result.outcome.critical_path.queue_wait_ms =
        static_cast<double>(result.start_ns - result.submit_ns) * 1e-6;
    result.outcome.critical_path.encode_ms =
        static_cast<double>(result.end_ns - result.start_ns) * 1e-6;

    // Distributed-trace hooks: when the job belongs to a request trace
    // and this worker records into a tracer, commit the on-worker
    // slice as a child span on this worker's export row and terminate
    // the service's dispatch flow arrow inside it.
    if (obs::Tracer *jt = request.tracer;
        jt && job.request.span.valid()) {
        jt->nameRow(obs::workerTid(worker),
                    "worker " + std::to_string(worker));
        obs::ScopeEvent scope;
        scope.name = "encode " + result.label;
        scope.span = job.request.span.child();
        scope.tid = obs::workerTid(worker);
        scope.start_ns = result.start_ns;
        scope.dur_ns = result.end_ns - result.start_ns;
        jt->addScope(std::move(scope));
        obs::FlowEvent flow;
        flow.name = "dispatch";
        flow.flow_id = job.request.span.span_id;
        flow.tid = obs::workerTid(worker);
        flow.ts_ns = result.start_ns;
        flow.begin = false;
        jt->addFlow(std::move(flow));
    }

    {
        std::lock_guard<std::mutex> lock(state->mu);
        state->result = std::move(result);
        state->status = state->result.cancelled ? JobStatus::Cancelled
                                                : JobStatus::Done;
        state->cv.notify_all();
    }
}

BatchResult
Scheduler::runBatch(std::vector<TranscodeJob> jobs)
{
    BatchResult batch;
    batch.stats.workers = workers();
    batch.stats.jobs = jobs.size();

    const double start = obs::nowSeconds();
    std::vector<JobHandle> handles;
    handles.reserve(jobs.size());
    for (TranscodeJob &job : jobs)
        handles.push_back(submit(std::move(job)));

    batch.results.reserve(handles.size());
    for (const JobHandle &handle : handles)
        batch.results.push_back(handle.wait());
    batch.stats.wall_seconds = obs::nowSeconds() - start;

    for (const JobResult &r : batch.results) {
        if (r.cancelled)
            ++batch.stats.cancelled;
        else if (r.ok())
            ++batch.stats.ok;
        else
            ++batch.stats.failed;
        batch.stats.job_seconds += r.seconds;
        if (r.cpu_seconds > 0)
            batch.stats.cpu_seconds += r.cpu_seconds;
    }
    if (batch.stats.wall_seconds > 0) {
        batch.stats.jobs_per_second =
            static_cast<double>(batch.stats.jobs - batch.stats.cancelled) /
            batch.stats.wall_seconds;
        // Prefer the contention-free CPU total as the serial-cost
        // estimate; only a platform without a thread CPU clock falls
        // back to summed wall time.
        const double serial_estimate = batch.stats.cpu_seconds > 0
            ? batch.stats.cpu_seconds
            : batch.stats.job_seconds;
        batch.stats.speedup_vs_serial =
            serial_estimate / batch.stats.wall_seconds;
    }

    mergeObsShards();
    if (obs::MetricsRegistry *metrics = shardMergeMetrics()) {
        metrics->counter("sched.batches").add();
        metrics->counter("sched.jobs").add(batch.stats.jobs);
        metrics->counter("sched.jobs.ok").add(batch.stats.ok);
        metrics->counter("sched.jobs.failed").add(batch.stats.failed);
        metrics->counter("sched.jobs.cancelled")
            .add(batch.stats.cancelled);
        metrics->histogram("sched.batch.wall_ms")
            .observe(static_cast<uint64_t>(batch.stats.wall_seconds * 1e3));
        for (const JobResult &r : batch.results) {
            metrics->histogram("sched.job.wall_ms")
                .observe(static_cast<uint64_t>(r.seconds * 1e3));
            metrics->histogram("sched.job.queue_wait_ms")
                .observe(static_cast<uint64_t>(
                    r.outcome.critical_path.queue_wait_ms));
        }
    }
    return batch;
}

void
Scheduler::mergeObsShards()
{
    obs::Tracer *tracer = shardMergeTracer();
    obs::MetricsRegistry *metrics = shardMergeMetrics();
    for (WorkerShard &shard : shards_) {
        if (tracer && shard.tracer->eventCount() > 0) {
            tracer->mergeFrom(*shard.tracer);
            shard.tracer->clear();
        }
        if (metrics && shard.metrics->size() > 0) {
            metrics->mergeFrom(*shard.metrics);
            shard.metrics->reset();
        }
    }
}

} // namespace vbench::sched
