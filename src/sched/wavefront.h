#pragma once

/**
 * @file
 * WavefrontRunner: intra-frame 2D-dependency parallelism. A frame is a
 * grid of cells (macroblock rows x columns); cell (r, c) may run once
 * its left neighbor (r, c-1) and the first `lag` cells past column c
 * in row r-1 are done — the classic macroblock-row wavefront (x264
 * sliced-row threads, HEVC WPP), which is exactly the dependency shape
 * of intra prediction, MV prediction, and in-loop context:
 *
 *     row 0:  0 1 2 3 4 5 6 ...
 *     row 1:      0 1 2 3 4 ...   (lag cells behind row 0)
 *     row 2:          0 1 2 ...
 *
 * Determinism: every cell's inputs are complete before it runs, so
 * cell outputs — and anything serially derived from them — are
 * identical at every thread count. The runner only schedules; callers
 * keep entropy coding (or any other order-dependent pass) serial over
 * the completed cell records.
 *
 * Rows are statically assigned (row r -> worker r % threads), so work
 * distribution is reproducible and workers pipeline: worker k's next
 * row chases worker k+1's current one. Progress is one atomic counter
 * per row (cells completed, released after each cell; acquired by the
 * row below), which doubles as the happens-before edge for the shared
 * reconstruction planes the cells write.
 *
 * Threads are created once per runner and reused across run() calls
 * (one runner per encode, hundreds of frames), parked on a condition
 * variable between waves.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vbench::sched {

class WavefrontRunner
{
  public:
    /** Process one grid cell; `slot` indexes per-worker scratch. */
    using CellFn = std::function<void(int row, int col, int slot)>;

    /** Spawns `threads - 1` helpers; the caller is always slot 0. */
    explicit WavefrontRunner(int threads)
        : threads_(threads > 1 ? threads : 1)
    {
        helpers_.reserve(static_cast<size_t>(threads_ - 1));
        for (int slot = 1; slot < threads_; ++slot)
            helpers_.emplace_back([this, slot] { helperLoop(slot); });
    }

    ~WavefrontRunner()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        start_cv_.notify_all();
        for (std::thread &t : helpers_)
            t.join();
    }

    WavefrontRunner(const WavefrontRunner &) = delete;
    WavefrontRunner &operator=(const WavefrontRunner &) = delete;

    int threads() const { return threads_; }

    /**
     * Run `fn` over every cell of a rows x cols grid in wavefront
     * order: (r, c) starts only after (r, c-1) and row r-1's first
     * min(c + lag, cols) cells finished. lag = 2 covers left/top/
     * top-right dependencies; larger lags cover prediction that reads
     * further right into the row above. lag <= 0 declares the rows
     * independent — no cross-row wait at all, each worker just runs
     * its rows left to right (the entropy-slice shape: one row per
     * slice, no dependencies between slices). Blocks until the whole
     * grid is done (or until `cancel` became true, in which case
     * remaining cells are skipped — started cells still complete) and
     * returns false iff cancelled.
     */
    bool
    run(int rows, int cols, int lag, const CellFn &fn,
        const std::atomic<bool> *cancel = nullptr)
    {
        if (rows <= 0 || cols <= 0)
            return true;
        // RowProgress is not movable (atomic member); reallocate only
        // when a taller grid arrives, which in practice is once.
        if (static_cast<int>(progress_.size()) < rows)
            progress_ = std::vector<RowProgress>(static_cast<size_t>(rows));
        for (int r = 0; r < rows; ++r)
            progress_[static_cast<size_t>(r)].value.store(
                0, std::memory_order_relaxed);
        rows_ = rows;
        cols_ = cols;
        lag_ = lag <= 0 ? 0 : (lag > 1 ? lag : 1);
        fn_ = &fn;
        cancel_ = cancel;

        {
            std::lock_guard<std::mutex> lock(mu_);
            ++generation_;
            running_ = threads_ - 1;
        }
        start_cv_.notify_all();

        workRows(0);

        {
            std::unique_lock<std::mutex> lock(mu_);
            done_cv_.wait(lock, [this] { return running_ == 0; });
        }
        fn_ = nullptr;
        const bool cancelled =
            cancel && cancel->load(std::memory_order_relaxed);
        return !cancelled;
    }

  private:
    /** Cache-line-padded per-row completion counter. */
    struct alignas(64) RowProgress {
        std::atomic<int> value{0};
    };

    void
    helperLoop(int slot)
    {
        uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mu_);
                start_cv_.wait(lock, [this, seen] {
                    return shutdown_ || generation_ != seen;
                });
                if (shutdown_)
                    return;
                seen = generation_;
            }
            workRows(slot);
            {
                std::lock_guard<std::mutex> lock(mu_);
                --running_;
            }
            done_cv_.notify_all();
        }
    }

    bool
    cancelled() const
    {
        return cancel_ && cancel_->load(std::memory_order_relaxed);
    }

    /** Process rows slot, slot+T, ... respecting the wavefront. */
    void
    workRows(int slot)
    {
        const CellFn &fn = *fn_;
        for (int r = slot; r < rows_; r += threads_) {
            std::atomic<int> *above =
                r > 0 && lag_ > 0
                    ? &progress_[static_cast<size_t>(r - 1)].value
                    : nullptr;
            std::atomic<int> &mine =
                progress_[static_cast<size_t>(r)].value;
            for (int c = 0; c < cols_; ++c) {
                if (above && !cancelled()) {
                    const int need = c + lag_ < cols_ ? c + lag_ : cols_;
                    waitFor(*above, need);
                }
                // Checked *after* the dependency wait: waitFor returns
                // early on cancellation, and a cell must never run on
                // incomplete inputs.
                if (cancelled()) {
                    // Unblock dependants and fall through to the next
                    // row; no further cells run. The frame's output is
                    // abandoned by the caller, so completeness of cell
                    // data no longer matters — only that nobody waits
                    // forever.
                    mine.store(cols_, std::memory_order_release);
                    break;
                }
                fn(r, c, slot);
                mine.store(c + 1, std::memory_order_release);
            }
        }
    }

    /** Spin-then-yield until `counter` (acquire) reaches `need`. */
    void
    waitFor(const std::atomic<int> &counter, int need)
    {
        int spins = 0;
        while (counter.load(std::memory_order_acquire) < need) {
            if (cancelled())
                return;  // dependency row bailed; caller bails too
            if (++spins < 1024) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            } else {
                std::this_thread::yield();
            }
        }
    }

    const int threads_;
    std::vector<std::thread> helpers_;

    // Current wave (valid while running_ > 0 or inside run()).
    std::vector<RowProgress> progress_;
    int rows_ = 0;
    int cols_ = 0;
    int lag_ = 1;
    const CellFn *fn_ = nullptr;
    const std::atomic<bool> *cancel_ = nullptr;

    std::mutex mu_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    uint64_t generation_ = 0;
    int running_ = 0;
    bool shutdown_ = false;
};

} // namespace vbench::sched
