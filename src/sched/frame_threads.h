#pragma once

/**
 * @file
 * Frame-thread budgeting: how many threads one encode may spend on
 * intra-frame (wavefront) parallelism, and how that width composes
 * with the job-level scheduler so nested parallelism never thrashes.
 *
 * Two knobs meet here:
 *
 *   VBENCH_JOBS           job-level workers (sched::Scheduler)
 *   VBENCH_FRAME_THREADS  rows-in-flight inside a single encode
 *
 * The composition rule is a shared-pool oversubscription guard:
 *
 *   frame_threads x active_jobs <= pool budget
 *
 * where the budget is the scheduler's worker count while a scheduler
 * is alive (its workers ARE the pool) and the hardware concurrency
 * otherwise. A batch that already saturates VBENCH_JOBS therefore
 * clamps every job's effective frame threads to 1, and a lone Live
 * transcode on an idle machine gets the full requested width.
 *
 * Header-only on purpose: vbench_codec consumes this (and
 * wavefront.h) without linking vbench_sched, whose library depends on
 * vbench_core and would create a cycle.
 */

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/runtime_config.h"

namespace vbench::sched {

/** Upper bound on frame threads: a typo must not fork-bomb the host. */
inline constexpr int kMaxFrameThreads = core::kMaxRuntimeFrameThreads;

namespace detail {

inline std::atomic<int> &
activeJobCount()
{
    static std::atomic<int> count{0};
    return count;
}

inline std::atomic<int> &
poolBudget()
{
    static std::atomic<int> budget{0};  // 0: no scheduler registered
    return budget;
}

} // namespace detail

/**
 * VBENCH_FRAME_THREADS via core::RuntimeConfig (default 1: frame
 * parallelism is opt-in; job-level parallelism is the default axis).
 * Re-reads the environment per call so a width set between batches
 * takes effect; a malformed value fails fast (core/runtime_config.h)
 * instead of being silently ignored.
 */
inline int
frameThreadsFromEnv()
{
    return core::freshRuntimeConfig().frame_threads;
}

/**
 * Register the job pool's size as the shared thread budget (the
 * scheduler calls this with its worker count on construction and 0 on
 * destruction). Unregistered (0), the budget falls back to hardware
 * concurrency.
 */
inline void
setFrameThreadBudget(int workers)
{
    detail::poolBudget().store(workers > 0 ? workers : 0,
                               std::memory_order_relaxed);
}

/** Threads the guard divides between concurrently running jobs. */
inline int
frameThreadBudget()
{
    const int registered =
        detail::poolBudget().load(std::memory_order_relaxed);
    if (registered > 0)
        return registered;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/** Jobs currently inside a transcode (scheduler workers mid-job). */
inline int
activeTranscodeJobs()
{
    return detail::activeJobCount().load(std::memory_order_relaxed);
}

/**
 * RAII marker for one running transcode job; the scheduler holds one
 * per job so decideFrameThreads() sees the true concurrency.
 */
class ActiveJobScope
{
  public:
    ActiveJobScope()
    {
        detail::activeJobCount().fetch_add(1, std::memory_order_relaxed);
    }

    ~ActiveJobScope()
    {
        detail::activeJobCount().fetch_sub(1, std::memory_order_relaxed);
    }

    ActiveJobScope(const ActiveJobScope &) = delete;
    ActiveJobScope &operator=(const ActiveJobScope &) = delete;
};

/** Outcome of the oversubscription guard for one encode. */
struct FrameThreadDecision {
    int threads = 1;       ///< effective width the encode should use
    int requested = 1;     ///< what the caller / environment asked for
    bool clamped = false;  ///< guard reduced the requested width
};

/**
 * Resolve the effective frame-thread width for an encode starting
 * now. `requested <= 0` reads VBENCH_FRAME_THREADS. The result never
 * exceeds requested, and obeys threads x active_jobs <= budget (with
 * this call's own job counted at least once).
 */
inline FrameThreadDecision
decideFrameThreads(int requested = 0)
{
    FrameThreadDecision d;
    d.requested = requested > 0
        ? std::min(requested, kMaxFrameThreads)
        : frameThreadsFromEnv();
    const int jobs = std::max(1, activeTranscodeJobs());
    const int allowed = std::max(1, frameThreadBudget() / jobs);
    d.threads = std::max(1, std::min(d.requested, allowed));
    d.clamped = d.threads < d.requested;
    return d;
}

} // namespace vbench::sched
