#pragma once

/**
 * @file
 * A fixed-size worker pool over a BoundedQueue of tasks. This is the
 * concurrency substrate of the transcode scheduler, kept free of any
 * codec dependency so it can be tested (and ThreadSanitizer-checked)
 * in isolation with synthetic tasks.
 *
 * Tasks are `std::function<void(int worker)>`; the worker index
 * (0..workers-1) lets callers maintain per-worker state — the
 * scheduler uses it to route each job to that worker's private
 * tracer / metrics shard.
 */

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "sched/queue.h"

namespace vbench::sched {

class ThreadPool
{
  public:
    using Task = std::function<void(int worker)>;

    /**
     * Start `workers` threads (at least 1) over a task queue of
     * `queue_capacity` entries. Submitters block once the queue is
     * full — backpressure, not unbounded buffering.
     */
    explicit ThreadPool(int workers, size_t queue_capacity = 0)
        : queue_(queue_capacity > 0
                     ? queue_capacity
                     : 2 * static_cast<size_t>(workers > 0 ? workers : 1))
    {
        const int n = workers > 0 ? workers : 1;
        threads_.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            threads_.emplace_back([this, i] { runWorker(i); });
    }

    /** Close the queue, drain remaining tasks, join all workers. */
    ~ThreadPool()
    {
        queue_.close();
        for (std::thread &t : threads_)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task, blocking while the queue is full. Returns false
     * when the pool is shutting down.
     */
    bool
    submit(Task task)
    {
        return queue_.push(std::move(task));
    }

    int
    workers() const
    {
        return static_cast<int>(threads_.size());
    }

    size_t
    queueCapacity() const
    {
        return queue_.capacity();
    }

    /** Tasks currently waiting in the queue (not yet picked up). */
    size_t
    queued() const
    {
        return queue_.size();
    }

  private:
    void
    runWorker(int index)
    {
        while (std::optional<Task> task = queue_.pop())
            (*task)(index);
    }

    BoundedQueue<Task> queue_;
    std::vector<std::thread> threads_;
};

} // namespace vbench::sched
