#pragma once

/**
 * @file
 * The parallel transcode scheduler (the fleet layer): a fixed pool of
 * workers draining a bounded job queue, turning a clip ×
 * operating-point grid into a batch of independent TranscodeJobs.
 *
 *   Scheduler s;                          // VBENCH_JOBS or all cores
 *   sched::JobHandle h = s.submit(job);   // future-like, cancellable
 *   sched::BatchResult r = s.runBatch(jobs);  // input order preserved
 *
 * Determinism: every job is an independent, deterministic transcode
 * (the codecs hold no global mutable state), so the streams, sizes,
 * PSNR, and bitrate of a batch are bitwise-identical at 1, 2, or N
 * workers. Only wall-clock-derived numbers (JobResult::seconds,
 * Measurement::speed_mpix_s, batch throughput) vary with contention.
 *
 * Observability: each worker owns a private obs::Tracer and
 * obs::MetricsRegistry shard. Jobs that don't bring their own sinks
 * record there — never into the process-wide globals, whose
 * delta-based attribution assumes a single writer (obs/obs.h) — and
 * the shards are merged into the globals (or the configured override
 * sinks) when a batch completes.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/transcoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/pool.h"
#include "video/video.h"

namespace vbench::sched {

/**
 * One unit of fleet work: transcode `input` (a universal-format
 * upload) per `request`, measuring quality against `original`. The
 * clip data is shared — a grid of operating points over one clip holds
 * the same two pointers — and must stay alive until the job finishes.
 */
struct TranscodeJob {
    std::string label;  ///< caller-chosen id, carried into the result
    std::shared_ptr<const codec::ByteBuffer> input;
    std::shared_ptr<const video::Video> original;
    core::TranscodeRequest request;
};

/** What one scheduled job produced. */
struct JobResult {
    std::string label;
    core::TranscodeOutcome outcome;
    /**
     * Wall seconds the job spent on its worker (queue wait excluded).
     * Under oversubscription this includes timeslicing contention and
     * so exceeds the serial cost.
     */
    double seconds = 0;
    /**
     * CPU seconds the worker thread consumed running the job
     * (CLOCK_THREAD_CPUTIME_ID). Contention-free, so summing it
     * across a batch estimates the serial replay cost; negative when
     * the platform offers no thread CPU clock.
     */
    double cpu_seconds = -1;
    int worker = -1;      ///< worker index that ran the job
    bool cancelled = false;
    /**
     * Monotonic lifecycle timestamps (obs::nowNs()): when the job
     * entered the queue, when a worker picked it up, and when the
     * worker finished. `start_ns - submit_ns` is the queue wait the
     * scheduler also writes into the outcome's critical path;
     * `end_ns - submit_ns` is the latency a caller that blocks on
     * wait() observes, so the critical-path components sum to it.
     */
    uint64_t submit_ns = 0;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;

    bool ok() const { return outcome.ok; }
};

/** Lifecycle of a submitted job. */
enum class JobStatus { Pending, Running, Done, Cancelled };

namespace detail {

/** Shared slot a JobHandle and the running worker communicate over. */
struct JobState {
    mutable std::mutex mu;
    std::condition_variable cv;
    JobStatus status = JobStatus::Pending;
    JobResult result;
    /// Stamped by submit() before the pool sees the job (the queue's
    /// own synchronization publishes it to the worker).
    uint64_t submit_ns = 0;
    /// Read by core::transcode() at phase boundaries (request.cancel).
    std::atomic<bool> cancel_requested{false};
};

} // namespace detail

/**
 * Future-like handle to a submitted job. Copyable; all copies observe
 * the same job.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    /**
     * Wrap an externally owned job slot. This is the execution seam's
     * escape hatch: a pool that is not the Scheduler (rpc::RemotePool
     * routing segments to child processes) allocates a JobState,
     * completes it under its mutex with the same Done/Cancelled +
     * notify_all protocol runJob() uses, and hands callers a handle
     * indistinguishable from a scheduler-issued one.
     */
    static JobHandle adopt(std::shared_ptr<detail::JobState> state)
    {
        return JobHandle(std::move(state));
    }

    bool valid() const { return state_ != nullptr; }

    JobStatus status() const;

    /** True once the job reached Done or Cancelled. */
    bool finished() const;

    /**
     * Request cancellation. A Pending job is dropped without running;
     * a Running job aborts at its next transcode phase boundary.
     * Returns true when the job had not already finished (i.e. the
     * request can still have an effect).
     */
    bool cancel();

    /** Block until the job finishes; returns its result. */
    const JobResult &wait() const;

  private:
    friend class Scheduler;
    explicit JobHandle(std::shared_ptr<detail::JobState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::JobState> state_;
};

/** Aggregate throughput accounting for one runBatch(). */
struct BatchStats {
    int workers = 0;
    size_t jobs = 0;
    size_t ok = 0;
    size_t failed = 0;     ///< ran but outcome.ok == false
    size_t cancelled = 0;
    double wall_seconds = 0;  ///< submit of first → completion of last
    double job_seconds = 0;   ///< Σ per-job worker wall seconds
    double cpu_seconds = 0;   ///< Σ per-job thread CPU seconds
    double jobs_per_second = 0;
    /// cpu_seconds / wall_seconds (falling back to job_seconds when no
    /// thread CPU clock exists): how much faster the batch finished
    /// than one worker replaying the same work back to back. The CPU
    /// numerator keeps the figure honest on oversubscribed hosts,
    /// where per-job wall time inflates with timeslicing.
    double speedup_vs_serial = 0;
};

/** runBatch() output: one result per job, in input order. */
struct BatchResult {
    std::vector<JobResult> results;
    BatchStats stats;
};

/** Scheduler sizing. Zeros mean "pick the sane default". */
struct SchedulerConfig {
    /// Worker threads; <= 0 uses defaultWorkerCount() (VBENCH_JOBS or
    /// hardware concurrency).
    int workers = 0;
    /// Bounded job-queue capacity; 0 uses 2 × workers. Submitters
    /// block when full (backpressure).
    size_t queue_capacity = 0;
    /// Merge targets for the per-worker obs shards. Null means the
    /// process-wide tracer / metrics registry (when enabled via the
    /// environment); tests point these at private sinks.
    obs::Tracer *merge_tracer = nullptr;
    obs::MetricsRegistry *merge_metrics = nullptr;
};

/**
 * Fixed-size worker pool executing TranscodeJobs. Construction starts
 * the workers; destruction drains outstanding jobs, merges obs shards,
 * and joins.
 */
class Scheduler
{
  public:
    /**
     * Workers to use when SchedulerConfig doesn't say: the VBENCH_JOBS
     * environment variable when it parses as a positive integer, else
     * std::thread::hardware_concurrency(), never less than 1.
     */
    static int defaultWorkerCount();

    explicit Scheduler(SchedulerConfig config = {});
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    int workers() const { return pool_->workers(); }
    size_t queueCapacity() const { return pool_->queueCapacity(); }

    /**
     * Enqueue one job, blocking while the queue is full. The handle
     * resolves when a worker finishes (or cancellation wins the race).
     */
    JobHandle submit(TranscodeJob job);

    /**
     * Submit every job, wait for all of them, and return results in
     * input order (results[i] belongs to jobs[i], whatever the
     * completion order was). Merges the workers' obs shards into the
     * configured targets before returning, and — when metrics are
     * active — records sched.* batch counters there.
     */
    BatchResult runBatch(std::vector<TranscodeJob> jobs);

    /**
     * Fold every worker's tracer / metrics shard into the merge
     * targets (process globals by default) and clear the shards.
     * runBatch() calls this automatically; only direct submit() users
     * need it, after their last handle resolved.
     */
    void mergeObsShards();

  private:
    struct WorkerShard {
        std::unique_ptr<obs::Tracer> tracer;
        std::unique_ptr<obs::MetricsRegistry> metrics;
    };

    void runJob(const std::shared_ptr<detail::JobState> &state,
                TranscodeJob &job, int worker);
    obs::Tracer *shardMergeTracer() const;
    obs::MetricsRegistry *shardMergeMetrics() const;

    SchedulerConfig config_;
    std::vector<WorkerShard> shards_;
    std::unique_ptr<ThreadPool> pool_;  // last member: joins first
};

} // namespace vbench::sched
