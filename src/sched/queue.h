#pragma once

/**
 * @file
 * A bounded multi-producer / multi-consumer queue. Producers block
 * when the queue is full (backpressure: a submitter can never race
 * ahead of the workers by more than the capacity), consumers block
 * when it is empty. close() wakes everyone: pending pops drain the
 * remaining items and then return nullopt; pushes after close are
 * refused.
 *
 * Mutex + two condition variables, deliberately: the queue hands out
 * whole transcode jobs (milliseconds to minutes of work each), so
 * lock-free cleverness would buy nothing and cost auditability. The
 * ThreadSanitizer-labeled tests (`ctest -L thread`) hammer this type
 * from many producers and consumers at once.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace vbench::sched {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Block until there is room, then enqueue. Returns false (and
     * drops the item) when the queue was closed before room appeared.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Enqueue only if there is room right now; never blocks. */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available and dequeue it. Returns nullopt
     * once the queue is closed *and* drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock,
                        [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /** Dequeue if an item is available right now; never blocks. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> item;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (items_.empty())
                return std::nullopt;
            item = std::move(items_.front());
            items_.pop_front();
        }
        not_full_.notify_one();
        return item;
    }

    /** Refuse new pushes, wake all waiters; queued items still drain. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    size_t
    capacity() const
    {
        return capacity_;
    }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace vbench::sched
