#pragma once

/**
 * @file
 * Video categories, the unit of the paper's selection methodology
 * (§4.1): a (resolution, framerate, entropy) triplet weighted by the
 * transcoding time the service spends on it.
 */

#include <cmath>
#include <string>
#include <vector>

namespace vbench::corpus {

/** One video category with its workload weight. */
struct VideoCategory {
    int kpixels = 0;       ///< resolution, Kpixels/frame (rounded)
    int fps = 30;          ///< frames/second (rounded)
    double entropy = 1.0;  ///< bits/pixel/s at CRF 18 (1 decimal)
    double weight = 0.0;   ///< share of fleet transcoding time
};

/**
 * Feature vector used for clustering: resolution and entropy are
 * log2-linearized ("videos of entropy 1 and 2 are much more different
 * than videos of entropy 20 and 21"), then every dimension is
 * normalized to [-1, +1] over the corpus ranges.
 */
struct Features {
    double log_kpixels = 0;
    double fps = 0;
    double log_entropy = 0;
};

inline Features
rawFeatures(const VideoCategory &c)
{
    Features f;
    f.log_kpixels = std::log2(static_cast<double>(c.kpixels));
    f.fps = static_cast<double>(c.fps);
    f.log_entropy = std::log2(c.entropy);
    return f;
}

/** Min/max of each feature over a corpus, for normalization. */
struct FeatureRange {
    Features lo;
    Features hi;
};

FeatureRange featureRange(const std::vector<VideoCategory> &corpus);

/** Normalize features into [-1, 1] given a range. */
Features normalize(const Features &f, const FeatureRange &range);

/** Squared Euclidean distance between normalized feature vectors. */
inline double
distance2(const Features &a, const Features &b)
{
    const double dk = a.log_kpixels - b.log_kpixels;
    const double df = a.fps - b.fps;
    const double de = a.log_entropy - b.log_entropy;
    return dk * dk + df * df + de * de;
}

} // namespace vbench::corpus
