#include "corpus/coverage.h"

#include <cmath>

namespace vbench::corpus {

namespace {

using video::ClipSpec;
using video::ContentClass;

/** The top-6 resolutions of the upload mix. */
const int kTopResolutions[6][2] = {
    {426, 240}, {640, 360}, {854, 480},
    {1280, 720}, {1920, 1080}, {3840, 2160},
};

/** The top-8 framerates. */
const int kTopFramerates[8] = {12, 15, 24, 25, 30, 48, 50, 60};

/** Pick the content family that naturally produces a target entropy. */
ContentClass
classForEntropy(double entropy)
{
    if (entropy < 0.3)
        return ContentClass::Slideshow;
    if (entropy < 0.8)
        return ContentClass::Screencast;
    if (entropy < 1.6)
        return ContentClass::Animation;
    if (entropy < 4.0)
        return ContentClass::Natural;
    if (entropy < 7.0)
        return ContentClass::Sports;
    return ContentClass::Noisy;
}

ClipSpec
makeSpec(int width, int height, int fps, double entropy, uint64_t seed)
{
    ClipSpec spec;
    spec.name = "cov_" + std::to_string(width) + "x" +
        std::to_string(height) + "_f" + std::to_string(fps) + "_e" +
        std::to_string(static_cast<int>(std::lround(entropy * 100)));
    spec.width = width;
    spec.height = height;
    spec.fps = fps;
    spec.content = classForEntropy(entropy);
    spec.target_entropy = entropy;
    spec.seed = seed;
    return spec;
}

} // namespace

std::vector<ClipSpec>
coverageSet(const CoverageConfig &config)
{
    std::vector<ClipSpec> specs;
    uint64_t seed = config.seed;
    const double log_lo = std::log2(config.entropy_min);
    const double log_hi = std::log2(config.entropy_max);
    for (const auto &res : kTopResolutions) {
        for (int fps : kTopFramerates) {
            for (int s = 0; s < config.entropy_samples; ++s) {
                const double t = config.entropy_samples > 1
                    ? static_cast<double>(s) /
                        (config.entropy_samples - 1)
                    : 0.5;
                const double entropy =
                    std::pow(2.0, log_lo + t * (log_hi - log_lo));
                specs.push_back(makeSpec(res[0], res[1], fps, entropy,
                                         seed++));
            }
        }
    }
    return specs;
}

std::vector<ClipSpec>
coverageSetReduced(const CoverageConfig &config)
{
    // One representative framerate per resolution keeps the
    // instrumented-simulation budget tractable while spanning the full
    // entropy range.
    const int fps_for_res[6] = {25, 30, 30, 30, 30, 60};
    std::vector<ClipSpec> specs;
    uint64_t seed = config.seed + 100000;
    const double log_lo = std::log2(config.entropy_min);
    const double log_hi = std::log2(config.entropy_max);
    for (int r = 0; r < 6; ++r) {
        for (int s = 0; s < config.entropy_samples; ++s) {
            const double t = config.entropy_samples > 1
                ? static_cast<double>(s) / (config.entropy_samples - 1)
                : 0.5;
            const double entropy =
                std::pow(2.0, log_lo + t * (log_hi - log_lo));
            specs.push_back(makeSpec(kTopResolutions[r][0],
                                     kTopResolutions[r][1],
                                     fps_for_res[r], entropy, seed++));
        }
    }
    return specs;
}

} // namespace vbench::corpus
