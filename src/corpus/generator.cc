#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "video/rng.h"

namespace vbench::corpus {

const std::vector<ResolutionStep> &
resolutionLadder()
{
    // Shares reflect a UGC service: SD/HD dominates, 4K is a sliver
    // but matters because its transcode time per video is enormous.
    static const std::vector<ResolutionStep> ladder = {
        {256, 144, 0.04},
        {426, 240, 0.07},
        {640, 360, 0.22},
        {854, 480, 0.20},
        {1280, 720, 0.25},
        {1920, 1080, 0.18},
        {2560, 1440, 0.025},
        {3840, 2160, 0.015},
    };
    return ladder;
}

const std::vector<FramerateStep> &
framerateMix()
{
    static const std::vector<FramerateStep> mix = {
        {12, 0.02}, {15, 0.04}, {24, 0.16}, {25, 0.17},
        {30, 0.42}, {48, 0.02}, {50, 0.07}, {60, 0.10},
    };
    return mix;
}

std::vector<VideoCategory>
generateCorpus(const CorpusConfig &config)
{
    video::Rng rng(config.seed);

    // Accumulate weights into the (kpixels, fps, entropy-1-decimal)
    // category map exactly as the paper's log aggregation would.
    struct Key {
        int kpixels;
        int fps;
        int entropy_tenths;

        bool
        operator<(const Key &o) const
        {
            if (kpixels != o.kpixels)
                return kpixels < o.kpixels;
            if (fps != o.fps)
                return fps < o.fps;
            return entropy_tenths < o.entropy_tenths;
        }
    };
    std::map<Key, double> accum;

    // Sample "uploads" until the category population is rich enough.
    const int samples = config.target_categories * 40;
    for (int i = 0; i < samples; ++i) {
        // Resolution.
        double u = rng.uniform();
        const ResolutionStep *res = &resolutionLadder().back();
        for (const ResolutionStep &step : resolutionLadder()) {
            if (u < step.share) {
                res = &step;
                break;
            }
            u -= step.share;
        }
        // Framerate.
        double v = rng.uniform();
        const FramerateStep *fr = &framerateMix().back();
        for (const FramerateStep &step : framerateMix()) {
            if (v < step.share) {
                fr = &step;
                break;
            }
            v -= step.share;
        }
        // Entropy: log-normal around a resolution-dependent median
        // (large uploads skew toward camera content; tiny ones toward
        // slideshows and thumbnails), clipped to the observed four
        // orders of magnitude.
        const double median =
            0.9 + 0.25 * std::log2(res->width * res->height / 1e5);
        const double entropy = std::clamp(
            median * std::exp(config.entropy_sigma * rng.gaussian() * 0.6),
            0.01, 60.0);

        // Weight: transcode time grows with pixels and entropy, and a
        // heavy-tailed popularity factor models re-transcoding load.
        const double pixels = res->width * static_cast<double>(res->height);
        const double pareto = std::pow(rng.uniform(), -0.45);
        const double weight =
            pixels / 1e6 * fr->fps / 30.0 * (0.5 + entropy / 4.0) *
            std::min(pareto, 50.0);

        Key key;
        key.kpixels = static_cast<int>(
            (pixels + 500.0) / 1000.0);
        key.fps = fr->fps;
        key.entropy_tenths = std::max(
            1, static_cast<int>(std::lround(entropy * 10)));
        accum[key] += weight;
    }

    std::vector<VideoCategory> corpus;
    double total = 0;
    for (const auto &[key, weight] : accum) {
        VideoCategory c;
        c.kpixels = key.kpixels;
        c.fps = key.fps;
        c.entropy = key.entropy_tenths / 10.0;
        c.weight = weight;
        corpus.push_back(c);
        total += weight;
    }
    for (VideoCategory &c : corpus)
        c.weight /= total;

    // Keep the heaviest categories ("3500 video categories with
    // significant weights").
    std::sort(corpus.begin(), corpus.end(),
              [](const VideoCategory &a, const VideoCategory &b) {
                  return a.weight > b.weight;
              });
    if (static_cast<int>(corpus.size()) > config.target_categories)
        corpus.resize(config.target_categories);

    // Renormalize after the cut.
    total = 0;
    for (const VideoCategory &c : corpus)
        total += c.weight;
    for (VideoCategory &c : corpus)
        c.weight /= total;
    return corpus;
}

} // namespace vbench::corpus
