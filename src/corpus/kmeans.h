#pragma once

/**
 * @file
 * Weighted k-means clustering over normalized category features, and
 * the mode-of-cluster representative selection (§4.1).
 */

#include <cstdint>
#include <vector>

#include "corpus/category.h"

namespace vbench::corpus {

/** Clustering parameters. */
struct KmeansConfig {
    int k = 15;
    int max_iterations = 100;
    double convergence_eps = 1e-7;  ///< centroid movement threshold
    uint64_t seed = 7;              ///< k-means++ style seeding
};

/** Clustering outcome. */
struct KmeansResult {
    std::vector<Features> centroids;       ///< normalized space
    std::vector<int> assignment;           ///< cluster per category
    std::vector<double> cluster_weight;    ///< summed member weight
    int iterations = 0;
    double inertia = 0;  ///< weighted within-cluster squared distance
};

/**
 * Weighted k-means over the normalized feature space.
 *
 * @param corpus the weighted categories.
 * @param range normalization range (usually featureRange(corpus)).
 */
KmeansResult weightedKmeans(const std::vector<VideoCategory> &corpus,
                            const FeatureRange &range,
                            const KmeansConfig &config = {});

/**
 * Representative of each cluster: the member with the highest weight
 * (the *mode*, which keeps representatives real categories rather than
 * synthetic centroids).
 *
 * @return index into corpus for each cluster (-1 for empty clusters).
 */
std::vector<int> clusterModes(const std::vector<VideoCategory> &corpus,
                              const KmeansResult &result);

/**
 * The whole §4.1 pipeline: cluster and pick modes.
 * @return the k selected categories, sorted by resolution then entropy.
 */
std::vector<VideoCategory>
selectBenchmarkCategories(const std::vector<VideoCategory> &corpus,
                          const KmeansConfig &config = {});

} // namespace vbench::corpus
