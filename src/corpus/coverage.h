#pragma once

/**
 * @file
 * The YouTube "coverage set" (§4.1): 11 uniformly-spaced entropy
 * samples for each of the top-6-resolution x top-8-framerate
 * combinations, used as the golden reference the microarchitectural
 * study compares datasets against (§5.1). Rendered here as
 * synthesizable clip specs.
 */

#include <vector>

#include "corpus/category.h"
#include "video/suite.h"

namespace vbench::corpus {

/** Coverage-set generation knobs. */
struct CoverageConfig {
    int entropy_samples = 11;
    double entropy_min = 0.02;  ///< bits/pixel/s
    double entropy_max = 20.0;
    uint64_t seed = 5001;
};

/**
 * Build the coverage set as clip specs (content class chosen by
 * entropy band so the synthesizer hits the target).
 */
std::vector<video::ClipSpec>
coverageSet(const CoverageConfig &config = {});

/**
 * A reduced coverage set for simulation-budgeted studies: one
 * framerate per resolution, full entropy sweep. Used by the Fig. 5-7
 * benches, where every point costs an instrumented transcode.
 */
std::vector<video::ClipSpec>
coverageSetReduced(const CoverageConfig &config = {});

} // namespace vbench::corpus
