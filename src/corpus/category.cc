#include "corpus/category.h"

#include <algorithm>
#include <cassert>

namespace vbench::corpus {

FeatureRange
featureRange(const std::vector<VideoCategory> &corpus)
{
    assert(!corpus.empty());
    FeatureRange range;
    range.lo = range.hi = rawFeatures(corpus.front());
    for (const VideoCategory &c : corpus) {
        const Features f = rawFeatures(c);
        range.lo.log_kpixels = std::min(range.lo.log_kpixels,
                                        f.log_kpixels);
        range.hi.log_kpixels = std::max(range.hi.log_kpixels,
                                        f.log_kpixels);
        range.lo.fps = std::min(range.lo.fps, f.fps);
        range.hi.fps = std::max(range.hi.fps, f.fps);
        range.lo.log_entropy = std::min(range.lo.log_entropy,
                                        f.log_entropy);
        range.hi.log_entropy = std::max(range.hi.log_entropy,
                                        f.log_entropy);
    }
    return range;
}

namespace {

double
scaleTo(double v, double lo, double hi)
{
    if (hi <= lo)
        return 0.0;
    return 2.0 * (v - lo) / (hi - lo) - 1.0;
}

} // namespace

Features
normalize(const Features &f, const FeatureRange &range)
{
    Features out;
    out.log_kpixels = scaleTo(f.log_kpixels, range.lo.log_kpixels,
                              range.hi.log_kpixels);
    out.fps = scaleTo(f.fps, range.lo.fps, range.hi.fps);
    out.log_entropy = scaleTo(f.log_entropy, range.lo.log_entropy,
                              range.hi.log_entropy);
    return out;
}

} // namespace vbench::corpus
