#pragma once

/**
 * @file
 * Synthetic upload-corpus model. The paper accumulates six months of
 * YouTube transcoding logs into 3500+ weighted (resolution, framerate,
 * entropy) categories; this generator reproduces that population's
 * published shape: a standard resolution ladder dominated by 360p-1080p,
 * a framerate mix dominated by 24/25/30 with a 50/60 tail, entropy
 * spanning four orders of magnitude (log-normal per resolution), and a
 * heavy-tailed weight distribution.
 */

#include <cstdint>
#include <vector>

#include "corpus/category.h"

namespace vbench::corpus {

/** Generation knobs. */
struct CorpusConfig {
    uint64_t seed = 2017;       ///< Jan-Jun 2017, per the paper
    int target_categories = 3600;
    double entropy_sigma = 1.4; ///< log-normal spread of entropy
};

/**
 * Generate the weighted category population. Weights sum to 1.
 * Deterministic in the seed.
 */
std::vector<VideoCategory> generateCorpus(const CorpusConfig &config = {});

/** The standard upload resolution ladder (width, height, share). */
struct ResolutionStep {
    int width;
    int height;
    double share;  ///< fraction of uploads at this resolution
};

const std::vector<ResolutionStep> &resolutionLadder();

/** Upload framerates and their shares. */
struct FramerateStep {
    int fps;
    double share;
};

const std::vector<FramerateStep> &framerateMix();

} // namespace vbench::corpus
