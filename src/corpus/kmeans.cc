#include "corpus/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "video/rng.h"

namespace vbench::corpus {

namespace {

/**
 * k-means++ seeding: first centroid by weighted draw, subsequent ones
 * proportional to weight x squared distance from the nearest chosen
 * centroid.
 */
std::vector<Features>
seedCentroids(const std::vector<Features> &points,
              const std::vector<double> &weights, int k, uint64_t seed)
{
    video::Rng rng(seed);
    std::vector<Features> centroids;
    std::vector<double> dist2(points.size(),
                              std::numeric_limits<double>::max());

    auto weightedDraw = [&](const std::vector<double> &mass) {
        double total = 0;
        for (double m : mass)
            total += m;
        double target = rng.uniform() * total;
        for (size_t i = 0; i < mass.size(); ++i) {
            target -= mass[i];
            if (target <= 0)
                return i;
        }
        return mass.size() - 1;
    };

    centroids.push_back(points[weightedDraw(weights)]);
    while (static_cast<int>(centroids.size()) < k) {
        std::vector<double> mass(points.size());
        for (size_t i = 0; i < points.size(); ++i) {
            dist2[i] = std::min(dist2[i],
                                distance2(points[i], centroids.back()));
            mass[i] = weights[i] * dist2[i];
        }
        centroids.push_back(points[weightedDraw(mass)]);
    }
    return centroids;
}

} // namespace

KmeansResult
weightedKmeans(const std::vector<VideoCategory> &corpus,
               const FeatureRange &range, const KmeansConfig &config)
{
    assert(!corpus.empty());
    assert(config.k > 0);
    const int k = std::min<int>(config.k, corpus.size());

    std::vector<Features> points(corpus.size());
    std::vector<double> weights(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
        points[i] = normalize(rawFeatures(corpus[i]), range);
        weights[i] = corpus[i].weight;
    }

    KmeansResult result;
    result.centroids = seedCentroids(points, weights, k, config.seed);
    result.assignment.assign(points.size(), 0);

    for (int iter = 0; iter < config.max_iterations; ++iter) {
        ++result.iterations;
        // Assign.
        for (size_t i = 0; i < points.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            int best_c = 0;
            for (int c = 0; c < k; ++c) {
                const double d = distance2(points[i],
                                           result.centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            result.assignment[i] = best_c;
        }
        // Update.
        std::vector<Features> next(k);
        std::vector<double> mass(k, 0.0);
        for (size_t i = 0; i < points.size(); ++i) {
            const int c = result.assignment[i];
            next[c].log_kpixels += weights[i] * points[i].log_kpixels;
            next[c].fps += weights[i] * points[i].fps;
            next[c].log_entropy += weights[i] * points[i].log_entropy;
            mass[c] += weights[i];
        }
        double movement = 0;
        for (int c = 0; c < k; ++c) {
            if (mass[c] <= 0)
                continue;  // empty cluster keeps its centroid
            next[c].log_kpixels /= mass[c];
            next[c].fps /= mass[c];
            next[c].log_entropy /= mass[c];
            movement += distance2(next[c], result.centroids[c]);
            result.centroids[c] = next[c];
        }
        if (movement < config.convergence_eps)
            break;
    }

    // Final statistics.
    result.cluster_weight.assign(k, 0.0);
    result.inertia = 0;
    for (size_t i = 0; i < points.size(); ++i) {
        const int c = result.assignment[i];
        result.cluster_weight[c] += weights[i];
        result.inertia +=
            weights[i] * distance2(points[i], result.centroids[c]);
    }
    return result;
}

std::vector<int>
clusterModes(const std::vector<VideoCategory> &corpus,
             const KmeansResult &result)
{
    const int k = static_cast<int>(result.centroids.size());
    std::vector<int> modes(k, -1);
    for (size_t i = 0; i < corpus.size(); ++i) {
        const int c = result.assignment[i];
        if (modes[c] < 0 || corpus[i].weight > corpus[modes[c]].weight)
            modes[c] = static_cast<int>(i);
    }
    return modes;
}

std::vector<VideoCategory>
selectBenchmarkCategories(const std::vector<VideoCategory> &corpus,
                          const KmeansConfig &config)
{
    const FeatureRange range = featureRange(corpus);
    const KmeansResult result = weightedKmeans(corpus, range, config);
    const std::vector<int> modes = clusterModes(corpus, result);
    std::vector<VideoCategory> selected;
    for (int idx : modes) {
        if (idx >= 0)
            selected.push_back(corpus[idx]);
    }
    std::sort(selected.begin(), selected.end(),
              [](const VideoCategory &a, const VideoCategory &b) {
                  if (a.kpixels != b.kpixels)
                      return a.kpixels < b.kpixels;
                  return a.entropy < b.entropy;
              });
    return selected;
}

} // namespace vbench::corpus
