#pragma once

/**
 * @file
 * Structural similarity (SSIM), the perceptual alternative the paper
 * discusses in §2.3. Provided for completeness; scoring uses PSNR.
 */

#include "video/frame.h"
#include "video/video.h"

namespace vbench::metrics {

/**
 * Mean SSIM over 8x8 windows of a plane, following Wang et al. 2004
 * with the standard K1=0.01 / K2=0.03 stabilizers.
 */
double ssimPlane(const video::Plane &ref, const video::Plane &test);

/** Luma-only SSIM of one frame. */
double frameSsim(const video::Frame &ref, const video::Frame &test);

/** Mean luma SSIM across a clip. */
double videoSsim(const video::Video &ref, const video::Video &test);

} // namespace vbench::metrics
