#include "metrics/ssim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "kernels/kernel_ops.h"

namespace vbench::metrics {

namespace {

constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
constexpr double kC2 = (0.03 * 255) * (0.03 * 255);
constexpr int kWin = 8;

/** SSIM of one win_w x win_h window anchored at (x0, y0). */
double
windowSsim(const video::Plane &ref, const video::Plane &test, int x0, int y0,
           int win_w, int win_h)
{
    uint32_t sums[5] = {0, 0, 0, 0, 0};
    kernels::ops().ssimWindowSums(ref.row(y0) + x0, ref.width(),
                                  test.row(y0) + x0, test.width(), win_w,
                                  win_h, sums);
    const double n = static_cast<double>(win_w) * win_h;
    const double mu_a = sums[0] / n;
    const double mu_b = sums[1] / n;
    const double var_a = sums[2] / n - mu_a * mu_a;
    const double var_b = sums[3] / n - mu_b * mu_b;
    const double cov = sums[4] / n - mu_a * mu_b;
    return ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
        ((mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2));
}

} // namespace

double
ssimPlane(const video::Plane &ref, const video::Plane &test)
{
    assert(ref.width() == test.width() && ref.height() == test.height());
    const int w = ref.width();
    const int h = ref.height();
    if (w <= 0 || h <= 0)
        return 1.0;
    // Windows tile at kWin-aligned positions; when a dimension is not a
    // multiple of kWin a final window overlapping the previous one covers
    // the right/bottom edge, so no pixel is dropped. Planes smaller than
    // kWin get a single shrunken window.
    const int win_w = std::min(kWin, w);
    const int win_h = std::min(kWin, h);
    double sum = 0.0;
    int count = 0;
    for (int y = 0;;) {
        for (int x = 0;;) {
            sum += windowSsim(ref, test, x, y, win_w, win_h);
            ++count;
            if (x + win_w >= w)
                break;
            x = std::min(x + kWin, w - win_w);
        }
        if (y + win_h >= h)
            break;
        y = std::min(y + kWin, h - win_h);
    }
    return sum / count;
}

double
frameSsim(const video::Frame &ref, const video::Frame &test)
{
    return ssimPlane(ref.y(), test.y());
}

double
videoSsim(const video::Video &ref, const video::Video &test)
{
    assert(ref.frameCount() == test.frameCount());
    double sum = 0.0;
    for (int i = 0; i < ref.frameCount(); ++i)
        sum += frameSsim(ref.frame(i), test.frame(i));
    return ref.frameCount() > 0 ? sum / ref.frameCount() : 1.0;
}

} // namespace vbench::metrics
