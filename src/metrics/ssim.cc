#include "metrics/ssim.h"

#include <cassert>
#include <cmath>

namespace vbench::metrics {

namespace {

constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
constexpr double kC2 = (0.03 * 255) * (0.03 * 255);
constexpr int kWin = 8;

/** SSIM of one aligned 8x8 window. */
double
windowSsim(const video::Plane &ref, const video::Plane &test, int x0, int y0)
{
    double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
    for (int y = 0; y < kWin; ++y) {
        for (int x = 0; x < kWin; ++x) {
            const double a = ref.at(x0 + x, y0 + y);
            const double b = test.at(x0 + x, y0 + y);
            sum_a += a;
            sum_b += b;
            sum_aa += a * a;
            sum_bb += b * b;
            sum_ab += a * b;
        }
    }
    const double n = kWin * kWin;
    const double mu_a = sum_a / n;
    const double mu_b = sum_b / n;
    const double var_a = sum_aa / n - mu_a * mu_a;
    const double var_b = sum_bb / n - mu_b * mu_b;
    const double cov = sum_ab / n - mu_a * mu_b;
    return ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
        ((mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2));
}

} // namespace

double
ssimPlane(const video::Plane &ref, const video::Plane &test)
{
    assert(ref.width() == test.width() && ref.height() == test.height());
    double sum = 0.0;
    int count = 0;
    for (int y = 0; y + kWin <= ref.height(); y += kWin) {
        for (int x = 0; x + kWin <= ref.width(); x += kWin) {
            sum += windowSsim(ref, test, x, y);
            ++count;
        }
    }
    return count > 0 ? sum / count : 1.0;
}

double
frameSsim(const video::Frame &ref, const video::Frame &test)
{
    return ssimPlane(ref.y(), test.y());
}

double
videoSsim(const video::Video &ref, const video::Video &test)
{
    assert(ref.frameCount() == test.frameCount());
    double sum = 0.0;
    for (int i = 0; i < ref.frameCount(); ++i)
        sum += frameSsim(ref.frame(i), test.frame(i));
    return ref.frameCount() > 0 ? sum / ref.frameCount() : 1.0;
}

} // namespace vbench::metrics
