#pragma once

/**
 * @file
 * The paper's normalized size and speed metrics (§2.3): bitrate in
 * bits/pixel/second and transcoding speed in Mpixels/second.
 */

#include <cstddef>

namespace vbench::metrics {

/**
 * Bitrate normalized by frame geometry: bits per pixel per second.
 *
 * @param compressed_bytes total size of the compressed stream.
 * @param width frame width in pixels.
 * @param height frame height in pixels.
 * @param frames number of frames in the stream.
 *
 * The clip bitstream carries bits for `frames` frames of width*height
 * pixels; dividing total bits by total pixels and multiplying by the
 * frame rate would give bits/pixel/s, which reduces to the expression
 * below (duration cancels).
 */
inline double
bitsPerPixelPerSecond(size_t compressed_bytes, int width, int height,
                      int frames, double fps)
{
    const double total_bits = 8.0 * static_cast<double>(compressed_bytes);
    const double pixels_per_frame = static_cast<double>(width) * height;
    const double duration = frames / fps;
    return total_bits / pixels_per_frame / duration;
}

/**
 * Transcoding speed normalized by geometry: megapixels processed per
 * second of wall-clock time.
 */
inline double
megapixelsPerSecond(int width, int height, int frames, double elapsed_sec)
{
    const double pixels =
        static_cast<double>(width) * height * static_cast<double>(frames);
    return pixels / elapsed_sec / 1e6;
}

/**
 * The real-time output rate a Live transcode must sustain:
 * Mpixels/second of the output video (§4.2, Live constraint).
 */
inline double
outputMegapixelsPerSecond(int width, int height, double fps)
{
    return static_cast<double>(width) * height * fps / 1e6;
}

} // namespace vbench::metrics
