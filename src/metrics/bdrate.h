#pragma once

/**
 * @file
 * Bjontegaard-delta bitrate (BD-rate): the average bitrate difference
 * between two rate-distortion curves at equal quality, the standard
 * codec-comparison summary behind statements like "libvpx-vp9 saves
 * 30% over x264" (§2.4 / Fig. 2 analysis).
 */

#include <vector>

namespace vbench::metrics {

/** One point of a rate-distortion curve. */
struct RdPoint {
    double bitrate = 0;  ///< any consistent rate unit (e.g. bits/pix/s)
    double psnr_db = 0;
};

/**
 * BD-rate of `test` against `anchor`: the mean relative bitrate
 * difference over the PSNR interval both curves cover, integrating
 * log-bitrate as a piecewise-linear function of PSNR (the classic
 * method fits a cubic; piecewise-linear is within tenths of a percent
 * on monotone curves and has no fitting pathologies).
 *
 * @return e.g. -0.30 when `test` needs 30% fewer bits at equal
 *         quality; +0.5 when it needs 50% more. 0 if the curves do
 *         not overlap or have fewer than two points each.
 */
double bdRate(std::vector<RdPoint> anchor, std::vector<RdPoint> test);

} // namespace vbench::metrics
