#include "metrics/psnr.h"

#include <cassert>
#include <cmath>

#include "kernels/kernel_ops.h"

namespace vbench::metrics {

namespace {

/** Sum of squared sample differences over one plane. */
double
squaredError(const video::Plane &ref, const video::Plane &test)
{
    assert(ref.width() == test.width() && ref.height() == test.height());
    return static_cast<double>(
        kernels::ops().sse8(ref.data(), test.data(), ref.size()));
}

} // namespace

double
mse(const video::Plane &ref, const video::Plane &test)
{
    return squaredError(ref, test) / static_cast<double>(ref.size());
}

double
psnrFromMse(double mse_value)
{
    if (mse_value <= 0.0)
        return kLosslessPsnr;
    return 10.0 * std::log10(255.0 * 255.0 / mse_value);
}

double
framePsnr(const video::Frame &ref, const video::Frame &test)
{
    const double err = squaredError(ref.y(), test.y()) +
        squaredError(ref.u(), test.u()) +
        squaredError(ref.v(), test.v());
    return psnrFromMse(err / static_cast<double>(ref.sampleCount()));
}

double
videoPsnr(const video::Video &ref, const video::Video &test)
{
    assert(ref.frameCount() == test.frameCount());
    double err = 0.0;
    double samples = 0.0;
    for (int i = 0; i < ref.frameCount(); ++i) {
        const video::Frame &rf = ref.frame(i);
        const video::Frame &tf = test.frame(i);
        err += squaredError(rf.y(), tf.y()) + squaredError(rf.u(), tf.u()) +
            squaredError(rf.v(), tf.v());
        samples += static_cast<double>(rf.sampleCount());
    }
    return psnrFromMse(err / samples);
}

} // namespace vbench::metrics
