#include "metrics/bdrate.h"

#include <algorithm>
#include <cmath>

namespace vbench::metrics {

namespace {

/**
 * log2(bitrate) at a given PSNR by piecewise-linear interpolation of a
 * curve sorted by PSNR. The query is inside the curve's PSNR range.
 */
double
logRateAt(const std::vector<RdPoint> &curve, double psnr)
{
    for (size_t i = 1; i < curve.size(); ++i) {
        if (psnr <= curve[i].psnr_db) {
            const RdPoint &a = curve[i - 1];
            const RdPoint &b = curve[i];
            const double t = b.psnr_db > a.psnr_db
                ? (psnr - a.psnr_db) / (b.psnr_db - a.psnr_db)
                : 0.0;
            return std::log2(a.bitrate) +
                t * (std::log2(b.bitrate) - std::log2(a.bitrate));
        }
    }
    return std::log2(curve.back().bitrate);
}

} // namespace

double
bdRate(std::vector<RdPoint> anchor, std::vector<RdPoint> test)
{
    if (anchor.size() < 2 || test.size() < 2)
        return 0.0;
    auto by_psnr = [](const RdPoint &a, const RdPoint &b) {
        return a.psnr_db < b.psnr_db;
    };
    std::sort(anchor.begin(), anchor.end(), by_psnr);
    std::sort(test.begin(), test.end(), by_psnr);

    const double lo =
        std::max(anchor.front().psnr_db, test.front().psnr_db);
    const double hi =
        std::min(anchor.back().psnr_db, test.back().psnr_db);
    if (hi <= lo)
        return 0.0;

    // Trapezoidal integration of the log-rate gap over [lo, hi].
    const int steps = 256;
    double integral = 0;
    double prev_gap = logRateAt(test, lo) - logRateAt(anchor, lo);
    for (int i = 1; i <= steps; ++i) {
        const double psnr = lo + (hi - lo) * i / steps;
        const double gap =
            logRateAt(test, psnr) - logRateAt(anchor, psnr);
        integral += 0.5 * (prev_gap + gap);
        prev_gap = gap;
    }
    const double mean_log_gap = integral / steps;
    return std::pow(2.0, mean_log_gap) - 1.0;
}

} // namespace vbench::metrics
