#pragma once

/**
 * @file
 * Mean squared error and PSNR, the paper's quality metric (§2.3).
 */

#include "video/frame.h"
#include "video/video.h"

namespace vbench::metrics {

/**
 * Mean squared error between two planes of equal geometry.
 */
double mse(const video::Plane &ref, const video::Plane &test);

/**
 * PSNR in dB from an MSE, for 8-bit samples (peak 255). A zero MSE
 * (identical content) is reported as kLosslessPsnr so downstream
 * arithmetic stays finite, matching common encoder-reporting practice.
 */
double psnrFromMse(double mse_value);

/** PSNR ceiling reported for bit-exact content. */
inline constexpr double kLosslessPsnr = 100.0;

/**
 * Average YCbCr PSNR between two frames: MSE is accumulated over all
 * three planes (luma and both chromas) and converted once, i.e. the
 * "average YCbCr PSNR" the paper uses throughout.
 */
double framePsnr(const video::Frame &ref, const video::Frame &test);

/**
 * Average YCbCr PSNR across a whole clip: per-plane squared error is
 * summed over every frame before the single dB conversion.
 *
 * @pre both videos have identical geometry and frame count.
 */
double videoPsnr(const video::Video &ref, const video::Video &test);

} // namespace vbench::metrics
