/**
 * @file
 * Runtime kernel dispatch: pick the widest ISA the host CPU and the
 * build both support, unless VBENCH_ISA pins a level. Resolution
 * happens exactly once per process, on the first ops() call; tests use
 * ScopedKernelIsa to swap the table in-process afterwards.
 */

#include "kernels/kernel_ops.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/runtime_config.h"

namespace vbench::kernels {

namespace {

/** Widest level the host CPU supports among the compiled backends. */
Isa
detectHostIsa()
{
#if defined(__x86_64__) || defined(__i386__)
    if (avx2Ops() != nullptr && __builtin_cpu_supports("avx2"))
        return Isa::Avx2;
    if (sse2Ops() != nullptr && __builtin_cpu_supports("sse2"))
        return Isa::Sse2;
#endif
    return Isa::Scalar;
}

const KernelOps *
resolve()
{
    Isa level = detectHostIsa();
    // core::RuntimeConfig already validated the spelling (an unknown
    // name fails fast with a message there); what remains here is the
    // host capability check, which degrades with a warning — the value
    // is well-formed, this machine just cannot honor it.
    if (const std::string &env = core::runtimeConfig().isa;
        !env.empty()) {
        if (const auto requested = parseIsaName(env)) {
            if (*requested <= level) {
                level = *requested;
            } else {
                std::fprintf(stderr,
                             "vbench: VBENCH_ISA=%s not available on "
                             "this host/build, using %s\n",
                             env.c_str(), isaName(level));
            }
        }
    }
    const KernelOps *table = opsFor(level);
    return table != nullptr ? table : scalarOps();
}

/** The active table; mutable only through ScopedKernelIsa. */
const KernelOps *&
activeTable()
{
    static const KernelOps *table = resolve();
    return table;
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Sse2:
        return "sse2";
    case Isa::Avx2:
        return "avx2";
    }
    return "scalar";
}

const KernelOps &
ops()
{
    return *activeTable();
}

Isa
activeIsa()
{
    return activeTable()->isa;
}

Isa
detectBestIsa()
{
    return detectHostIsa();
}

const KernelOps *
opsFor(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return scalarOps();
    case Isa::Sse2:
#if defined(__x86_64__) || defined(__i386__)
        if (sse2Ops() != nullptr && __builtin_cpu_supports("sse2"))
            return sse2Ops();
#endif
        return nullptr;
    case Isa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        if (avx2Ops() != nullptr && __builtin_cpu_supports("avx2"))
            return avx2Ops();
#endif
        return nullptr;
    }
    return nullptr;
}

std::optional<Isa>
parseIsaName(std::string_view name)
{
    std::string lower(name);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "scalar")
        return Isa::Scalar;
    if (lower == "sse2")
        return Isa::Sse2;
    if (lower == "avx2")
        return Isa::Avx2;
    if (lower == "native")
        return detectBestIsa();
    return std::nullopt;
}

ScopedKernelIsa::ScopedKernelIsa(Isa isa) : saved_(activeTable())
{
    const KernelOps *table = opsFor(isa);
    activeTable() = table != nullptr ? table : scalarOps();
}

ScopedKernelIsa::~ScopedKernelIsa()
{
    activeTable() = saved_;
}

} // namespace vbench::kernels
