#pragma once

/**
 * @file
 * The vectorized pixel-kernel library: one dispatch table of function
 * pointers covering the hot loops the uarch taxonomy in
 * src/uarch/kernels.h names — block SAD/SATD, half-pel interpolation,
 * the 4x4/8x8 integer transforms, quant/dequant, residual extraction,
 * add+clamp reconstruction, plane copy, in-loop deblocking, and the
 * PSNR/SSIM accumulations.
 *
 * The table is resolved exactly once per process, at first use, from
 * CPUID (via __builtin_cpu_supports) and the VBENCH_ISA environment
 * variable (`scalar`, `sse2`, `avx2`, or `native`). Every vector
 * variant is bit-exact against the scalar reference for all inputs the
 * codecs can produce; randomized equivalence tests in
 * tests/kernels/ enforce this, including non-multiple-of-lane tails.
 *
 * The scalar table is the reference semantics. Its translation unit is
 * compiled with auto-vectorization disabled so VBENCH_ISA=scalar
 * reproduces the paper's Fig. 8 "no SIMD" ISA point with real cycles,
 * not compiler-vectorized ones.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace vbench::kernels {

/** ISA levels the dispatcher can select, narrowest first. */
enum class Isa : uint8_t { Scalar = 0, Sse2 = 1, Avx2 = 2 };

inline constexpr int kNumIsaLevels = 3;

/** Lowercase name of an ISA level ("scalar", "sse2", "avx2"). */
const char *isaName(Isa isa);

/**
 * The dispatch table. All pointers are always non-null: vector
 * backends start from the scalar table and override only the entries
 * they accelerate.
 */
struct KernelOps {
    const char *name; ///< same as isaName(isa)
    Isa isa;

    // ----- Block distortion (motion estimation) --------------------

    /** Sum of absolute differences over a w x h block. */
    uint32_t (*sad)(const uint8_t *a, int a_stride, const uint8_t *b,
                    int b_stride, int w, int h);

    /**
     * Sum of absolute 4x4 Hadamard-transformed differences, halved per
     * sub-block (gain normalization). Requires w % 4 == 0, h % 4 == 0.
     */
    uint32_t (*satd)(const uint8_t *a, int a_stride, const uint8_t *b,
                     int b_stride, int w, int h);

    // ----- Plane copy / half-pel interpolation ---------------------

    /** Copy a w x h rectangle between strided byte buffers. */
    void (*copy2d)(const uint8_t *src, int src_stride, uint8_t *dst,
                   int dst_stride, int w, int h);

    /** Horizontal half-pel: dst[c] = (s[c] + s[c+1] + 1) >> 1. */
    void (*interpH)(const uint8_t *src, int src_stride, uint8_t *dst,
                    int dst_stride, int w, int h);

    /** Vertical half-pel: dst[c] = (s[c] + s[c+stride] + 1) >> 1. */
    void (*interpV)(const uint8_t *src, int src_stride, uint8_t *dst,
                    int dst_stride, int w, int h);

    /** Diagonal half-pel: 4-sample average, (sum + 2) >> 2. */
    void (*interpHV)(const uint8_t *src, int src_stride, uint8_t *dst,
                     int dst_stride, int w, int h);

    // ----- Integer transforms --------------------------------------

    /** Forward 4x4 core transform; `in` is 16 contiguous samples. */
    void (*fwdTx4x4)(const int16_t in[16], int32_t out[16]);

    /** Inverse 4x4 core transform with (x + 32) >> 6 rounding. */
    void (*invTx4x4)(const int32_t in[16], int16_t out[16]);

    /**
     * Four forward 4x4 transforms over an 8x8 residual (row stride 8):
     * sub-block sb = (ry * 2 + rx) lands at coefs[sb * 16]. The NGC
     * 8x8 transform layers its DC Hadamard on top of this.
     */
    void (*fwdTx8x8)(const int16_t residual[64], int32_t coefs[64]);

    /** Inverse of fwdTx8x8's layout back into an 8x8 residual. */
    void (*invTx8x8)(const int32_t coefs[64], int16_t residual[64]);

    // ----- Quantization --------------------------------------------

    /**
     * Quantize one 4x4 coefficient block; returns the nonzero count.
     * Rounding offset is 1/3 of a step for intra, 1/6 for inter.
     */
    int (*quant4x4)(const int32_t coefs[16], int16_t levels[16], int qp,
                    bool intra);

    /** Rescale levels back to coefficients ((level * V) << (qp / 6)). */
    void (*dequant4x4)(const int16_t levels[16], int32_t coefs[16],
                       int qp);

    // ----- Residual / reconstruction -------------------------------

    /** out[r][c] = src[r][c] - pred[r][c] as int16. */
    void (*diffBlock)(const uint8_t *src, int src_stride,
                      const uint8_t *pred, int pred_stride, int16_t *out,
                      int out_stride, int w, int h);

    /** dst[r][c] = clamp255(pred[r][c] + residual[r][c]). */
    void (*addClampBlock)(const uint8_t *pred, int pred_stride,
                          const int16_t *residual, int res_stride,
                          uint8_t *dst, int dst_stride, int w, int h);

    // ----- In-loop deblocking --------------------------------------

    /**
     * Filter a horizontal edge run of n samples: q0 points at the row
     * below the edge, with p1/p0 at -2/-1 strides and q1 at +1 stride.
     * alpha/beta are the H.264 thresholds, tc the clip limit.
     */
    void (*deblockEdgeH)(uint8_t *q0, int stride, int n, int alpha,
                         int beta, int tc);

    // ----- Quality metrics -----------------------------------------

    /** Sum of squared differences over n contiguous samples. */
    uint64_t (*sse8)(const uint8_t *a, const uint8_t *b, size_t n);

    /**
     * SSIM window accumulations over a w x h window (w, h <= 8):
     * sums[0] = sum(a), sums[1] = sum(b), sums[2] = sum(a*a),
     * sums[3] = sum(b*b), sums[4] = sum(a*b). All sums fit uint32.
     */
    void (*ssimWindowSums)(const uint8_t *a, int a_stride,
                           const uint8_t *b, int b_stride, int w, int h,
                           uint32_t sums[5]);
};

/** The active dispatch table (resolved once, at first call). */
const KernelOps &ops();

/** ISA level of the active table. */
Isa activeIsa();

/** Widest ISA level this host supports (and this build compiled). */
Isa detectBestIsa();

/**
 * Table for a specific ISA level, or nullptr if the host CPU or the
 * build does not support it. opsFor(Isa::Scalar) never fails.
 */
const KernelOps *opsFor(Isa isa);

/**
 * Parse a VBENCH_ISA value ("scalar", "sse2", "avx2", "native",
 * case-insensitive). "native" maps to detectBestIsa(). Returns
 * std::nullopt for unrecognized names.
 */
std::optional<Isa> parseIsaName(std::string_view name);

/**
 * Test hook: force the active table to a given ISA level for the
 * lifetime of the object, restoring the previous table on destruction.
 * The requested level must be available (see opsFor); construction
 * falls back to scalar otherwise. Not thread-safe: only use around
 * single-threaded test sections.
 */
class ScopedKernelIsa
{
  public:
    explicit ScopedKernelIsa(Isa isa);
    ~ScopedKernelIsa();

    ScopedKernelIsa(const ScopedKernelIsa &) = delete;
    ScopedKernelIsa &operator=(const ScopedKernelIsa &) = delete;

  private:
    const KernelOps *saved_;
};

// Backend tables (internal; exposed for the dispatcher and benches).
// sse2Ops()/avx2Ops() return nullptr when the build lacks the ISA.
const KernelOps *scalarOps();
const KernelOps *sse2Ops();
const KernelOps *avx2Ops();

} // namespace vbench::kernels
