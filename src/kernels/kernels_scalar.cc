/**
 * @file
 * Scalar reference implementations of every kernel in the dispatch
 * table. These define the semantics the vector backends must match
 * bit-exactly; they are also the production path on hosts without SSE2.
 *
 * This translation unit is compiled with auto-vectorization disabled
 * (see src/kernels/CMakeLists.txt) so VBENCH_ISA=scalar measures a
 * genuinely scalar instruction stream, reproducing the paper's Fig. 8
 * "no SIMD" point rather than whatever the compiler happened to
 * vectorize.
 */

#include "kernels/kernel_ops.h"

#include <cstdlib>
#include <cstring>

#include "kernels/quant_tables.h"

namespace vbench::kernels {

namespace {

inline uint8_t
clamp255(int v)
{
    return static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

uint32_t
sadScalar(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
          int w, int h)
{
    uint32_t sum = 0;
    for (int r = 0; r < h; ++r) {
        const uint8_t *pa = a + r * a_stride;
        const uint8_t *pb = b + r * b_stride;
        uint32_t row = 0;
        for (int c = 0; c < w; ++c)
            row += static_cast<uint32_t>(std::abs(pa[c] - pb[c]));
        sum += row;
    }
    return sum;
}

uint32_t
satdScalar(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
           int w, int h)
{
    uint32_t total = 0;
    for (int by = 0; by < h; by += 4) {
        for (int bx = 0; bx < w; bx += 4) {
            int32_t d[16];
            for (int r = 0; r < 4; ++r) {
                const uint8_t *pa = a + (by + r) * a_stride + bx;
                const uint8_t *pb = b + (by + r) * b_stride + bx;
                for (int c = 0; c < 4; ++c)
                    d[r * 4 + c] = pa[c] - pb[c];
            }
            // 4x4 Hadamard: rows then columns of butterflies.
            for (int r = 0; r < 4; ++r) {
                int32_t *row = d + r * 4;
                const int32_t s0 = row[0] + row[2];
                const int32_t s1 = row[1] + row[3];
                const int32_t s2 = row[0] - row[2];
                const int32_t s3 = row[1] - row[3];
                row[0] = s0 + s1;
                row[1] = s0 - s1;
                row[2] = s2 + s3;
                row[3] = s2 - s3;
            }
            uint32_t sum = 0;
            for (int c = 0; c < 4; ++c) {
                const int32_t s0 = d[c] + d[8 + c];
                const int32_t s1 = d[4 + c] + d[12 + c];
                const int32_t s2 = d[c] - d[8 + c];
                const int32_t s3 = d[4 + c] - d[12 + c];
                sum += std::abs(s0 + s1) + std::abs(s0 - s1) +
                    std::abs(s2 + s3) + std::abs(s2 - s3);
            }
            total += sum / 2; // Hadamard gain normalization
        }
    }
    return total;
}

void
copy2dScalar(const uint8_t *src, int src_stride, uint8_t *dst,
             int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r)
        std::memcpy(dst + r * dst_stride, src + r * src_stride,
                    static_cast<size_t>(w));
}

void
interpHScalar(const uint8_t *src, int src_stride, uint8_t *dst,
              int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        uint8_t *d = dst + r * dst_stride;
        for (int c = 0; c < w; ++c)
            d[c] = static_cast<uint8_t>((s[c] + s[c + 1] + 1) >> 1);
    }
}

void
interpVScalar(const uint8_t *src, int src_stride, uint8_t *dst,
              int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        uint8_t *d = dst + r * dst_stride;
        for (int c = 0; c < w; ++c)
            d[c] = static_cast<uint8_t>((s[c] + s[c + src_stride] + 1) >> 1);
    }
}

void
interpHVScalar(const uint8_t *src, int src_stride, uint8_t *dst,
               int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        uint8_t *d = dst + r * dst_stride;
        for (int c = 0; c < w; ++c) {
            d[c] = static_cast<uint8_t>(
                (s[c] + s[c + 1] + s[c + src_stride] +
                 s[c + src_stride + 1] + 2) >> 2);
        }
    }
}

/** Forward 4x4 core with a row stride, shared by the 4x4/8x8 entries. */
void
fwd4Core(const int16_t *in, int stride, int32_t out[16])
{
    int32_t tmp[16];
    // Rows.
    for (int r = 0; r < 4; ++r) {
        const int a = in[r * stride + 0];
        const int b = in[r * stride + 1];
        const int c = in[r * stride + 2];
        const int d = in[r * stride + 3];
        const int s0 = a + d;
        const int s1 = b + c;
        const int s2 = b - c;
        const int s3 = a - d;
        tmp[r * 4 + 0] = s0 + s1;
        tmp[r * 4 + 1] = 2 * s3 + s2;
        tmp[r * 4 + 2] = s0 - s1;
        tmp[r * 4 + 3] = s3 - 2 * s2;
    }
    // Columns.
    for (int c = 0; c < 4; ++c) {
        const int a = tmp[0 * 4 + c];
        const int b = tmp[1 * 4 + c];
        const int cc = tmp[2 * 4 + c];
        const int d = tmp[3 * 4 + c];
        const int s0 = a + d;
        const int s1 = b + cc;
        const int s2 = b - cc;
        const int s3 = a - d;
        out[0 * 4 + c] = s0 + s1;
        out[1 * 4 + c] = 2 * s3 + s2;
        out[2 * 4 + c] = s0 - s1;
        out[3 * 4 + c] = s3 - 2 * s2;
    }
}

void
fwdTx4x4Scalar(const int16_t in[16], int32_t out[16])
{
    fwd4Core(in, 4, out);
}

void
fwdTx8x8Scalar(const int16_t residual[64], int32_t coefs[64])
{
    for (int sb = 0; sb < 4; ++sb) {
        const int ox = (sb & 1) * 4;
        const int oy = (sb >> 1) * 4;
        fwd4Core(residual + oy * 8 + ox, 8, coefs + sb * 16);
    }
}

/** Inverse 4x4 core writing rows `out_stride` apart. */
void
inv4Core(const int32_t in[16], int16_t *out, int out_stride)
{
    int32_t tmp[16];
    // Rows.
    for (int r = 0; r < 4; ++r) {
        const int a = in[r * 4 + 0];
        const int b = in[r * 4 + 1];
        const int c = in[r * 4 + 2];
        const int d = in[r * 4 + 3];
        const int e0 = a + c;
        const int e1 = a - c;
        const int e2 = (b >> 1) - d;
        const int e3 = b + (d >> 1);
        tmp[r * 4 + 0] = e0 + e3;
        tmp[r * 4 + 1] = e1 + e2;
        tmp[r * 4 + 2] = e1 - e2;
        tmp[r * 4 + 3] = e0 - e3;
    }
    // Columns with final rounding.
    for (int c = 0; c < 4; ++c) {
        const int a = tmp[0 * 4 + c];
        const int b = tmp[1 * 4 + c];
        const int cc = tmp[2 * 4 + c];
        const int d = tmp[3 * 4 + c];
        const int e0 = a + cc;
        const int e1 = a - cc;
        const int e2 = (b >> 1) - d;
        const int e3 = b + (d >> 1);
        out[0 * out_stride + c] = static_cast<int16_t>((e0 + e3 + 32) >> 6);
        out[1 * out_stride + c] = static_cast<int16_t>((e1 + e2 + 32) >> 6);
        out[2 * out_stride + c] = static_cast<int16_t>((e1 - e2 + 32) >> 6);
        out[3 * out_stride + c] = static_cast<int16_t>((e0 - e3 + 32) >> 6);
    }
}

void
invTx4x4Scalar(const int32_t in[16], int16_t out[16])
{
    inv4Core(in, out, 4);
}

void
invTx8x8Scalar(const int32_t coefs[64], int16_t residual[64])
{
    for (int sb = 0; sb < 4; ++sb) {
        const int ox = (sb & 1) * 4;
        const int oy = (sb >> 1) * 4;
        inv4Core(coefs + sb * 16, residual + oy * 8 + ox, 8);
    }
}

int
quant4x4Scalar(const int32_t coefs[16], int16_t levels[16], int qp,
               bool intra)
{
    const int rem = qp % 6;
    const int qbits = 15 + qp / 6;
    // Rounding offset: 1/3 of a step for intra, 1/6 for inter.
    const int64_t f = (1ll << qbits) / (intra ? 3 : 6);
    int nonzero = 0;
    for (int i = 0; i < 16; ++i) {
        const int mf = kQuantMf[rem][posClass(i)];
        const int64_t w = coefs[i];
        const int64_t mag = ((w < 0 ? -w : w) * mf + f) >> qbits;
        const int16_t level = static_cast<int16_t>(w < 0 ? -mag : mag);
        levels[i] = level;
        if (level != 0)
            ++nonzero;
    }
    return nonzero;
}

void
dequant4x4Scalar(const int16_t levels[16], int32_t coefs[16], int qp)
{
    const int rem = qp % 6;
    const int shift = qp / 6;
    for (int i = 0; i < 16; ++i) {
        coefs[i] = (static_cast<int32_t>(levels[i]) *
                    kDequantV[rem][posClass(i)])
            << shift;
    }
}

void
diffBlockScalar(const uint8_t *src, int src_stride, const uint8_t *pred,
                int pred_stride, int16_t *out, int out_stride, int w,
                int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        const uint8_t *p = pred + r * pred_stride;
        int16_t *o = out + r * out_stride;
        for (int c = 0; c < w; ++c)
            o[c] = static_cast<int16_t>(s[c] - p[c]);
    }
}

void
addClampBlockScalar(const uint8_t *pred, int pred_stride,
                    const int16_t *residual, int res_stride, uint8_t *dst,
                    int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *p = pred + r * pred_stride;
        const int16_t *res = residual + r * res_stride;
        uint8_t *d = dst + r * dst_stride;
        for (int c = 0; c < w; ++c)
            d[c] = clamp255(p[c] + res[c]);
    }
}

void
deblockEdgeHScalar(uint8_t *q0_row, int stride, int n, int alpha,
                   int beta, int tc)
{
    for (int i = 0; i < n; ++i) {
        uint8_t *q0_ptr = q0_row + i;
        const int p1 = q0_ptr[-2 * stride];
        const int p0 = q0_ptr[-stride];
        const int q0 = q0_ptr[0];
        const int q1 = q0_ptr[stride];
        if (std::abs(p0 - q0) >= alpha || std::abs(p1 - p0) >= beta ||
            std::abs(q1 - q0) >= beta) {
            continue;
        }
        int delta = ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3;
        delta = delta < -tc ? -tc : (delta > tc ? tc : delta);
        q0_ptr[-stride] = clamp255(p0 + delta);
        q0_ptr[0] = clamp255(q0 - delta);
    }
}

uint64_t
sse8Scalar(const uint8_t *a, const uint8_t *b, size_t n)
{
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
        const int d = static_cast<int>(a[i]) - b[i];
        sum += static_cast<uint64_t>(d * d);
    }
    return sum;
}

void
ssimWindowSumsScalar(const uint8_t *a, int a_stride, const uint8_t *b,
                     int b_stride, int w, int h, uint32_t sums[5])
{
    uint32_t sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + y * a_stride;
        const uint8_t *rb = b + y * b_stride;
        for (int x = 0; x < w; ++x) {
            const uint32_t va = ra[x];
            const uint32_t vb = rb[x];
            sa += va;
            sb += vb;
            saa += va * va;
            sbb += vb * vb;
            sab += va * vb;
        }
    }
    sums[0] = sa;
    sums[1] = sb;
    sums[2] = saa;
    sums[3] = sbb;
    sums[4] = sab;
}

} // namespace

const KernelOps *
scalarOps()
{
    static const KernelOps table = {
        "scalar",
        Isa::Scalar,
        sadScalar,
        satdScalar,
        copy2dScalar,
        interpHScalar,
        interpVScalar,
        interpHVScalar,
        fwdTx4x4Scalar,
        invTx4x4Scalar,
        fwdTx8x8Scalar,
        invTx8x8Scalar,
        quant4x4Scalar,
        dequant4x4Scalar,
        diffBlockScalar,
        addClampBlockScalar,
        deblockEdgeHScalar,
        sse8Scalar,
        ssimWindowSumsScalar,
    };
    return &table;
}

} // namespace vbench::kernels
