/**
 * @file
 * AVX2 kernel backend. Compiled per-TU with -mavx2; on hosts or builds
 * without AVX2 the guard compiles this down to a null table and the
 * dispatcher stops at SSE2.
 *
 * Overrides only the kernels that benefit from 256-bit lanes: SAD (row
 * pairing keeps 16-wide macroblocks on full-width psadbw), the 8x8
 * transform pair (two 4x4 sub-blocks ride in the two 128-bit lanes),
 * quant/dequant, interpolation, residual diff/reconstruction, and the
 * PSNR sum of squares. SATD, the single 4x4 transforms, deblocking and
 * the 8-wide SSIM window stay on the SSE2 versions, which already fill
 * their lanes. All the same bit-exactness arguments as the SSE2 TU
 * apply (wrapping packs, 64-bit quant math, exact pavgb/psadbw).
 */

#include "kernels/kernel_ops.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdlib>
#include <cstring>

#include "kernels/quant_tables.h"

namespace vbench::kernels {

namespace {

inline uint8_t
clamp255(int v)
{
    return static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/** Load 16 bytes and zero-extend to 16 uint16 lanes. */
inline __m256i
load16u16(const uint8_t *p)
{
    return _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
}

/** Load 8 bytes and zero-extend to 8 uint16 lanes (SSE width). */
inline __m128i
load8u16(const uint8_t *p)
{
    return _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p)),
        _mm_setzero_si128());
}

/** Per-128-lane 4x4 transpose of int32 elements. */
inline void
transpose4x32(__m256i &r0, __m256i &r1, __m256i &r2, __m256i &r3)
{
    const __m256i t0 = _mm256_unpacklo_epi32(r0, r1);
    const __m256i t1 = _mm256_unpackhi_epi32(r0, r1);
    const __m256i t2 = _mm256_unpacklo_epi32(r2, r3);
    const __m256i t3 = _mm256_unpackhi_epi32(r2, r3);
    r0 = _mm256_unpacklo_epi64(t0, t2);
    r1 = _mm256_unpackhi_epi64(t0, t2);
    r2 = _mm256_unpacklo_epi64(t1, t3);
    r3 = _mm256_unpackhi_epi64(t1, t3);
}

/**
 * Truncate 8 int32 lanes to 8 int16 in the low 128 bits (wrapping,
 * matching static_cast<int16_t>).
 */
inline __m128i
wrapPack16(__m256i v)
{
    v = _mm256_shufflelo_epi16(v, _MM_SHUFFLE(3, 3, 2, 0));
    v = _mm256_shufflehi_epi16(v, _MM_SHUFFLE(3, 3, 2, 0));
    v = _mm256_shuffle_epi32(v, _MM_SHUFFLE(3, 3, 2, 0));
    v = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(3, 3, 2, 0));
    return _mm256_castsi256_si128(v);
}

/**
 * Narrow 16 uint16 lanes to 16 bytes with unsigned saturation,
 * compacting the per-lane packus results.
 */
inline __m128i
packusRow(__m256i v)
{
    const __m256i packed = _mm256_packus_epi16(v, v);
    return _mm256_castsi256_si128(
        _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 3, 2, 0)));
}

/** Sum of the four 64-bit lanes (psadbw accumulator). */
inline uint64_t
hsum64(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return static_cast<uint64_t>(_mm_cvtsi128_si64(s)) +
        static_cast<uint64_t>(
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

// ----- SAD ---------------------------------------------------------

uint32_t
sadAvx2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
        int w, int h)
{
    __m256i acc = _mm256_setzero_si256();
    if (w == 16 && (h & 1) == 0) {
        // The dominant macroblock shape: pair rows so psadbw runs at
        // full 256-bit width.
        for (int r = 0; r < h; r += 2) {
            const __m256i va = _mm256_inserti128_si256(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(a + r * a_stride))),
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    a + (r + 1) * a_stride)),
                1);
            const __m256i vb = _mm256_inserti128_si256(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(b + r * b_stride))),
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    b + (r + 1) * b_stride)),
                1);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
        }
        return static_cast<uint32_t>(hsum64(acc));
    }
    __m128i acc128 = _mm_setzero_si128();
    uint32_t tail = 0;
    for (int r = 0; r < h; ++r) {
        const uint8_t *pa = a + r * a_stride;
        const uint8_t *pb = b + r * b_stride;
        int c = 0;
        for (; c + 32 <= w; c += 32) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pa + c));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pb + c));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
        }
        if (c + 16 <= w) {
            const __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pa + c));
            const __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pb + c));
            acc128 = _mm_add_epi64(acc128, _mm_sad_epu8(va, vb));
            c += 16;
        }
        if (c + 8 <= w) {
            const __m128i va = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pa + c));
            const __m128i vb = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pb + c));
            acc128 = _mm_add_epi64(acc128, _mm_sad_epu8(va, vb));
            c += 8;
        }
        for (; c < w; ++c)
            tail += static_cast<uint32_t>(std::abs(pa[c] - pb[c]));
    }
    const uint64_t lanes128 =
        static_cast<uint64_t>(_mm_cvtsi128_si64(acc128)) +
        static_cast<uint64_t>(
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc128, acc128)));
    return static_cast<uint32_t>(hsum64(acc) + lanes128) + tail;
}

// ----- Interpolation -----------------------------------------------

inline void
interp2Tap(const uint8_t *src, int src_stride, int off, uint8_t *dst,
           int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        uint8_t *d = dst + r * dst_stride;
        int c = 0;
        for (; c + 32 <= w; c += 32) {
            const __m256i v0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(s + c));
            const __m256i v1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(s + c + off));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(d + c),
                                _mm256_avg_epu8(v0, v1));
        }
        if (c + 16 <= w) {
            const __m128i v0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(s + c));
            const __m128i v1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(s + c + off));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(d + c),
                             _mm_avg_epu8(v0, v1));
            c += 16;
        }
        if (c + 8 <= w) {
            const __m128i v0 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(s + c));
            const __m128i v1 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(s + c + off));
            _mm_storel_epi64(reinterpret_cast<__m128i *>(d + c),
                             _mm_avg_epu8(v0, v1));
            c += 8;
        }
        for (; c < w; ++c)
            d[c] = static_cast<uint8_t>((s[c] + s[c + off] + 1) >> 1);
    }
}

void
interpHAvx2(const uint8_t *src, int src_stride, uint8_t *dst,
            int dst_stride, int w, int h)
{
    interp2Tap(src, src_stride, 1, dst, dst_stride, w, h);
}

void
interpVAvx2(const uint8_t *src, int src_stride, uint8_t *dst,
            int dst_stride, int w, int h)
{
    interp2Tap(src, src_stride, src_stride, dst, dst_stride, w, h);
}

void
interpHVAvx2(const uint8_t *src, int src_stride, uint8_t *dst,
             int dst_stride, int w, int h)
{
    const __m256i two256 = _mm256_set1_epi16(2);
    const __m128i two128 = _mm_set1_epi16(2);
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        uint8_t *d = dst + r * dst_stride;
        int c = 0;
        for (; c + 16 <= w; c += 16) {
            const __m256i v00 = load16u16(s + c);
            const __m256i v01 = load16u16(s + c + 1);
            const __m256i v10 = load16u16(s + c + src_stride);
            const __m256i v11 = load16u16(s + c + src_stride + 1);
            __m256i sum = _mm256_add_epi16(_mm256_add_epi16(v00, v01),
                                           _mm256_add_epi16(v10, v11));
            sum = _mm256_srli_epi16(_mm256_add_epi16(sum, two256), 2);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(d + c),
                             packusRow(sum));
        }
        if (c + 8 <= w) {
            const __m128i v00 = load8u16(s + c);
            const __m128i v01 = load8u16(s + c + 1);
            const __m128i v10 = load8u16(s + c + src_stride);
            const __m128i v11 = load8u16(s + c + src_stride + 1);
            __m128i sum = _mm_add_epi16(_mm_add_epi16(v00, v01),
                                        _mm_add_epi16(v10, v11));
            sum = _mm_srli_epi16(_mm_add_epi16(sum, two128), 2);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(d + c),
                             _mm_packus_epi16(sum, sum));
            c += 8;
        }
        for (; c < w; ++c) {
            d[c] = static_cast<uint8_t>(
                (s[c] + s[c + 1] + s[c + src_stride] +
                 s[c + src_stride + 1] + 2) >> 2);
        }
    }
}

// ----- 8x8 transforms (two 4x4 sub-blocks per vector) ---------------

void
fwdTx8x8Avx2(const int16_t residual[64], int32_t coefs[64])
{
    for (int half = 0; half < 2; ++half) {
        // Rows half*4 .. half*4+3 carry sub-blocks (half*2) in the low
        // 128-bit lane and (half*2 + 1) in the high lane.
        __m256i c0, c1, c2, c3;
        {
            const int16_t *rows = residual + half * 4 * 8;
            c0 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows + 0 * 8)));
            c1 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows + 1 * 8)));
            c2 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows + 2 * 8)));
            c3 = _mm256_cvtepi16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows + 3 * 8)));
        }
        transpose4x32(c0, c1, c2, c3);
        __m256i s0 = _mm256_add_epi32(c0, c3);
        __m256i s1 = _mm256_add_epi32(c1, c2);
        __m256i s2 = _mm256_sub_epi32(c1, c2);
        __m256i s3 = _mm256_sub_epi32(c0, c3);
        __m256i t0 = _mm256_add_epi32(s0, s1);
        __m256i t1 = _mm256_add_epi32(_mm256_slli_epi32(s3, 1), s2);
        __m256i t2 = _mm256_sub_epi32(s0, s1);
        __m256i t3 = _mm256_sub_epi32(s3, _mm256_slli_epi32(s2, 1));
        transpose4x32(t0, t1, t2, t3);
        s0 = _mm256_add_epi32(t0, t3);
        s1 = _mm256_add_epi32(t1, t2);
        s2 = _mm256_sub_epi32(t1, t2);
        s3 = _mm256_sub_epi32(t0, t3);
        const __m256i o0 = _mm256_add_epi32(s0, s1);
        const __m256i o1 =
            _mm256_add_epi32(_mm256_slli_epi32(s3, 1), s2);
        const __m256i o2 = _mm256_sub_epi32(s0, s1);
        const __m256i o3 =
            _mm256_sub_epi32(s3, _mm256_slli_epi32(s2, 1));
        int32_t *left = coefs + (half * 2 + 0) * 16;
        int32_t *right = coefs + (half * 2 + 1) * 16;
        const __m256i out[4] = {o0, o1, o2, o3};
        for (int i = 0; i < 4; ++i) {
            _mm_storeu_si128(reinterpret_cast<__m128i *>(left + i * 4),
                             _mm256_castsi256_si128(out[i]));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(right + i * 4),
                             _mm256_extracti128_si256(out[i], 1));
        }
    }
}

void
invTx8x8Avx2(const int32_t coefs[64], int16_t residual[64])
{
    const __m256i round = _mm256_set1_epi32(32);
    for (int half = 0; half < 2; ++half) {
        const int32_t *left = coefs + (half * 2 + 0) * 16;
        const int32_t *right = coefs + (half * 2 + 1) * 16;
        __m256i c[4];
        for (int i = 0; i < 4; ++i) {
            c[i] = _mm256_inserti128_si256(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(left + i * 4))),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(right + i * 4)),
                1);
        }
        transpose4x32(c[0], c[1], c[2], c[3]);
        __m256i e0 = _mm256_add_epi32(c[0], c[2]);
        __m256i e1 = _mm256_sub_epi32(c[0], c[2]);
        __m256i e2 =
            _mm256_sub_epi32(_mm256_srai_epi32(c[1], 1), c[3]);
        __m256i e3 =
            _mm256_add_epi32(c[1], _mm256_srai_epi32(c[3], 1));
        __m256i t0 = _mm256_add_epi32(e0, e3);
        __m256i t1 = _mm256_add_epi32(e1, e2);
        __m256i t2 = _mm256_sub_epi32(e1, e2);
        __m256i t3 = _mm256_sub_epi32(e0, e3);
        transpose4x32(t0, t1, t2, t3);
        e0 = _mm256_add_epi32(t0, t2);
        e1 = _mm256_sub_epi32(t0, t2);
        e2 = _mm256_sub_epi32(_mm256_srai_epi32(t1, 1), t3);
        e3 = _mm256_add_epi32(t1, _mm256_srai_epi32(t3, 1));
        const __m256i o[4] = {
            _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_add_epi32(e0, e3), round), 6),
            _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_add_epi32(e1, e2), round), 6),
            _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_sub_epi32(e1, e2), round), 6),
            _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_sub_epi32(e0, e3), round), 6),
        };
        for (int i = 0; i < 4; ++i) {
            // Low lane = columns 0-3, high lane = columns 4-7 of the
            // same output row: one contiguous 8-int16 store.
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(residual +
                                            (half * 4 + i) * 8),
                wrapPack16(o[i]));
        }
    }
}

// ----- Quantization ------------------------------------------------

int
quant4x4Avx2(const int32_t coefs[16], int16_t levels[16], int qp,
             bool intra)
{
    const int rem = qp % 6;
    const int qbits = 15 + qp / 6;
    const int64_t f = (1ll << qbits) / (intra ? 3 : 6);
    const __m256i f64 = _mm256_set1_epi64x(f);
    // Rows 0-1 and rows 2-3 share the a,c,a,c / c,b,c,b multiplier
    // pattern, so one 8-lane vector covers both halves.
    const __m256i mf = _mm256_setr_epi32(
        kQuantMf[rem][0], kQuantMf[rem][2], kQuantMf[rem][0],
        kQuantMf[rem][2], kQuantMf[rem][2], kQuantMf[rem][1],
        kQuantMf[rem][2], kQuantMf[rem][1]);
    const __m128i zero = _mm_setzero_si128();
    int nonzero = 0;
    for (int half = 0; half < 2; ++half) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(coefs + half * 8));
        const __m256i sign = _mm256_srai_epi32(w, 31);
        const __m256i absw =
            _mm256_sub_epi32(_mm256_xor_si256(w, sign), sign);
        const __m256i prod02 = _mm256_mul_epu32(absw, mf);
        const __m256i prod13 = _mm256_mul_epu32(
            _mm256_srli_si256(absw, 4), _mm256_srli_si256(mf, 4));
        const __m256i mag02 =
            _mm256_srli_epi64(_mm256_add_epi64(prod02, f64), qbits);
        const __m256i mag13 =
            _mm256_srli_epi64(_mm256_add_epi64(prod13, f64), qbits);
        const __m256i mag = _mm256_unpacklo_epi32(
            _mm256_shuffle_epi32(mag02, _MM_SHUFFLE(3, 3, 2, 0)),
            _mm256_shuffle_epi32(mag13, _MM_SHUFFLE(3, 3, 2, 0)));
        const __m256i lvl32 =
            _mm256_sub_epi32(_mm256_xor_si256(mag, sign), sign);
        const __m128i lvl16 = wrapPack16(lvl32);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(levels + half * 8),
                         lvl16);
        const int zmask = _mm_movemask_epi8(_mm_cmpeq_epi16(lvl16, zero));
        nonzero +=
            8 - __builtin_popcount(static_cast<unsigned>(zmask)) / 2;
    }
    return nonzero;
}

void
dequant4x4Avx2(const int16_t levels[16], int32_t coefs[16], int qp)
{
    const int rem = qp % 6;
    const int shift = qp / 6;
    const int16_t a = static_cast<int16_t>(kDequantV[rem][0]);
    const int16_t b = static_cast<int16_t>(kDequantV[rem][1]);
    const int16_t cc = static_cast<int16_t>(kDequantV[rem][2]);
    const __m256i v = _mm256_setr_epi16(a, cc, a, cc, cc, b, cc, b, a, cc,
                                        a, cc, cc, b, cc, b);
    const __m256i lv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(levels));
    const __m256i lo = _mm256_mullo_epi16(lv, v);
    const __m256i hi = _mm256_mulhi_epi16(lv, v);
    const __m256i p_lo =
        _mm256_slli_epi32(_mm256_unpacklo_epi16(lo, hi), shift);
    const __m256i p_hi =
        _mm256_slli_epi32(_mm256_unpackhi_epi16(lo, hi), shift);
    // Per-lane unpack order: p_lo = rows {0, 2}, p_hi = rows {1, 3}.
    _mm_storeu_si128(reinterpret_cast<__m128i *>(coefs + 0),
                     _mm256_castsi256_si128(p_lo));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(coefs + 4),
                     _mm256_castsi256_si128(p_hi));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(coefs + 8),
                     _mm256_extracti128_si256(p_lo, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(coefs + 12),
                     _mm256_extracti128_si256(p_hi, 1));
}

// ----- Residual / reconstruction -----------------------------------

void
diffBlockAvx2(const uint8_t *src, int src_stride, const uint8_t *pred,
              int pred_stride, int16_t *out, int out_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        const uint8_t *p = pred + r * pred_stride;
        int16_t *o = out + r * out_stride;
        int c = 0;
        for (; c + 16 <= w; c += 16) {
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(o + c),
                _mm256_sub_epi16(load16u16(s + c), load16u16(p + c)));
        }
        if (c + 8 <= w) {
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(o + c),
                _mm_sub_epi16(load8u16(s + c), load8u16(p + c)));
            c += 8;
        }
        for (; c < w; ++c)
            o[c] = static_cast<int16_t>(s[c] - p[c]);
    }
}

void
addClampBlockAvx2(const uint8_t *pred, int pred_stride,
                  const int16_t *residual, int res_stride, uint8_t *dst,
                  int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *p = pred + r * pred_stride;
        const int16_t *res = residual + r * res_stride;
        uint8_t *d = dst + r * dst_stride;
        int c = 0;
        for (; c + 16 <= w; c += 16) {
            const __m256i vr = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(res + c));
            const __m256i sum = _mm256_adds_epi16(load16u16(p + c), vr);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(d + c),
                             packusRow(sum));
        }
        if (c + 8 <= w) {
            const __m128i vr = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(res + c));
            const __m128i sum = _mm_adds_epi16(load8u16(p + c), vr);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(d + c),
                             _mm_packus_epi16(sum, sum));
            c += 8;
        }
        for (; c < w; ++c)
            d[c] = clamp255(p[c] + res[c]);
    }
}

// ----- Metrics -----------------------------------------------------

uint64_t
sse8Avx2(const uint8_t *a, const uint8_t *b, size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    uint64_t total = 0;
    size_t i = 0;
    // Chunk so the int32 accumulator lanes cannot overflow: each
    // 32-byte step adds at most 2 * 2 * 255^2 < 2^19 per lane.
    while (i + 32 <= n) {
        const size_t chunk_end =
            i + (((n - i) / 32 < 4096 ? (n - i) / 32 : 4096) * 32);
        __m256i acc = _mm256_setzero_si256();
        for (; i < chunk_end; i += 32) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + i));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i));
            const __m256i dlo =
                _mm256_sub_epi16(_mm256_unpacklo_epi8(va, zero),
                                 _mm256_unpacklo_epi8(vb, zero));
            const __m256i dhi =
                _mm256_sub_epi16(_mm256_unpackhi_epi8(va, zero),
                                 _mm256_unpackhi_epi8(vb, zero));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dlo, dlo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dhi, dhi));
        }
        // Fold lanes at 64 bits: the 8-lane total can exceed int32.
        uint32_t lanes[8];
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (int k = 0; k < 8; ++k)
            total += lanes[k];
    }
    for (; i < n; ++i) {
        const int d = static_cast<int>(a[i]) - b[i];
        total += static_cast<uint64_t>(d * d);
    }
    return total;
}

} // namespace

const KernelOps *
avx2Ops()
{
    const KernelOps *base = sse2Ops();
    if (base == nullptr)
        base = scalarOps();
    static const KernelOps table = [base] {
        KernelOps t = *base;
        t.name = "avx2";
        t.isa = Isa::Avx2;
        t.sad = sadAvx2;
        t.interpH = interpHAvx2;
        t.interpV = interpVAvx2;
        t.interpHV = interpHVAvx2;
        t.fwdTx8x8 = fwdTx8x8Avx2;
        t.invTx8x8 = invTx8x8Avx2;
        t.quant4x4 = quant4x4Avx2;
        t.dequant4x4 = dequant4x4Avx2;
        t.diffBlock = diffBlockAvx2;
        t.addClampBlock = addClampBlockAvx2;
        t.sse8 = sse8Avx2;
        return t;
    }();
    return &table;
}

} // namespace vbench::kernels

#else // !defined(__AVX2__)

namespace vbench::kernels {

const KernelOps *
avx2Ops()
{
    return nullptr;
}

} // namespace vbench::kernels

#endif
