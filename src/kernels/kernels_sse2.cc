/**
 * @file
 * SSE2 kernel backend. Compiled with -msse2 (a no-op on x86-64 where
 * SSE2 is baseline); on non-x86 hosts the guard below compiles this TU
 * down to a null table and dispatch falls back to scalar.
 *
 * Every routine is bit-exact against the scalar reference for all
 * inputs: the 8-bit average instruction pavgb computes exactly
 * (a + b + 1) >> 1, psadbw is an exact SAD, quant runs the same 64-bit
 * widened math as the scalar path via pmuludq, and the final int16
 * narrowing in the inverse transform uses a truncating (wrapping)
 * pack, not a saturating one, to match the scalar static_cast.
 */

#include "kernels/kernel_ops.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstdlib>
#include <cstring>

#include "kernels/quant_tables.h"

namespace vbench::kernels {

namespace {

inline uint8_t
clamp255(int v)
{
    return static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/** Load 8 bytes and zero-extend to 8 uint16 lanes. */
inline __m128i
load8u16(const uint8_t *p)
{
    return _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p)),
        _mm_setzero_si128());
}

/** Load 4 int16 and sign-extend to 4 int32 lanes. */
inline __m128i
load4s32(const int16_t *p)
{
    const __m128i v =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
    return _mm_srai_epi32(_mm_unpacklo_epi16(v, v), 16);
}

/** |v| lane-wise for int32 (two's-complement wrap on INT32_MIN). */
inline __m128i
abs32(__m128i v)
{
    const __m128i m = _mm_srai_epi32(v, 31);
    return _mm_sub_epi32(_mm_xor_si128(v, m), m);
}

/** 4x4 transpose of int32 lanes across four vectors. */
inline void
transpose4x32(__m128i &r0, __m128i &r1, __m128i &r2, __m128i &r3)
{
    const __m128i t0 = _mm_unpacklo_epi32(r0, r1);
    const __m128i t1 = _mm_unpackhi_epi32(r0, r1);
    const __m128i t2 = _mm_unpacklo_epi32(r2, r3);
    const __m128i t3 = _mm_unpackhi_epi32(r2, r3);
    r0 = _mm_unpacklo_epi64(t0, t2);
    r1 = _mm_unpackhi_epi64(t0, t2);
    r2 = _mm_unpacklo_epi64(t1, t3);
    r3 = _mm_unpackhi_epi64(t1, t3);
}

/**
 * Truncate 4 int32 lanes to 4 int16 values in the low 64 bits
 * (wrapping, matching static_cast<int16_t>; packs would saturate).
 */
inline __m128i
wrapPack16(__m128i v)
{
    v = _mm_shufflelo_epi16(v, _MM_SHUFFLE(3, 3, 2, 0));
    v = _mm_shufflehi_epi16(v, _MM_SHUFFLE(3, 3, 2, 0));
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(3, 3, 2, 0));
}

/** Horizontal sum of 4 int32 lanes. */
inline int32_t
hsum32(__m128i v)
{
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(v);
}

/** Sum of the two 64-bit lanes (psadbw accumulator). */
inline uint64_t
hsum64(__m128i v)
{
    return static_cast<uint64_t>(_mm_cvtsi128_si64(v)) +
        static_cast<uint64_t>(
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)));
}

// ----- SAD / SATD --------------------------------------------------

uint32_t
sadSse2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
        int w, int h)
{
    __m128i acc = _mm_setzero_si128();
    uint32_t tail = 0;
    for (int r = 0; r < h; ++r) {
        const uint8_t *pa = a + r * a_stride;
        const uint8_t *pb = b + r * b_stride;
        int c = 0;
        for (; c + 16 <= w; c += 16) {
            const __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pa + c));
            const __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(pb + c));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
        }
        if (c + 8 <= w) {
            const __m128i va = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pa + c));
            const __m128i vb = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(pb + c));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            c += 8;
        }
        for (; c < w; ++c)
            tail += static_cast<uint32_t>(std::abs(pa[c] - pb[c]));
    }
    return static_cast<uint32_t>(hsum64(acc)) + tail;
}

uint32_t
satdSse2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
         int w, int h)
{
    uint32_t total = 0;
    const __m128i zero = _mm_setzero_si128();
    for (int by = 0; by < h; by += 4) {
        for (int bx = 0; bx < w; bx += 4) {
            __m128i d[4];
            for (int r = 0; r < 4; ++r) {
                uint32_t wa, wb;
                std::memcpy(&wa, a + (by + r) * a_stride + bx, 4);
                std::memcpy(&wb, b + (by + r) * b_stride + bx, 4);
                const __m128i va = _mm_unpacklo_epi8(
                    _mm_cvtsi32_si128(static_cast<int>(wa)), zero);
                const __m128i vb = _mm_unpacklo_epi8(
                    _mm_cvtsi32_si128(static_cast<int>(wb)), zero);
                const __m128i diff = _mm_sub_epi16(va, vb);
                d[r] = _mm_srai_epi32(_mm_unpacklo_epi16(diff, diff), 16);
            }
            // Row butterflies act on elements within a row, so
            // transpose first and operate lane-wise.
            transpose4x32(d[0], d[1], d[2], d[3]);
            __m128i s0 = _mm_add_epi32(d[0], d[2]);
            __m128i s1 = _mm_add_epi32(d[1], d[3]);
            __m128i s2 = _mm_sub_epi32(d[0], d[2]);
            __m128i s3 = _mm_sub_epi32(d[1], d[3]);
            __m128i t0 = _mm_add_epi32(s0, s1);
            __m128i t1 = _mm_sub_epi32(s0, s1);
            __m128i t2 = _mm_add_epi32(s2, s3);
            __m128i t3 = _mm_sub_epi32(s2, s3);
            transpose4x32(t0, t1, t2, t3);
            s0 = _mm_add_epi32(t0, t2);
            s1 = _mm_add_epi32(t1, t3);
            s2 = _mm_sub_epi32(t0, t2);
            s3 = _mm_sub_epi32(t1, t3);
            const __m128i sum = _mm_add_epi32(
                _mm_add_epi32(abs32(_mm_add_epi32(s0, s1)),
                              abs32(_mm_sub_epi32(s0, s1))),
                _mm_add_epi32(abs32(_mm_add_epi32(s2, s3)),
                              abs32(_mm_sub_epi32(s2, s3))));
            total += static_cast<uint32_t>(hsum32(sum)) / 2;
        }
    }
    return total;
}

// ----- Copy / interpolation ----------------------------------------

void
copy2dSse2(const uint8_t *src, int src_stride, uint8_t *dst,
           int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r)
        std::memcpy(dst + r * dst_stride, src + r * src_stride,
                    static_cast<size_t>(w));
}

/** Shared 2-tap half-pel core: dst = avg(src, src + off). */
inline void
interp2Tap(const uint8_t *src, int src_stride, int off, uint8_t *dst,
           int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        uint8_t *d = dst + r * dst_stride;
        int c = 0;
        for (; c + 16 <= w; c += 16) {
            const __m128i v0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(s + c));
            const __m128i v1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(s + c + off));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(d + c),
                             _mm_avg_epu8(v0, v1));
        }
        if (c + 8 <= w) {
            const __m128i v0 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(s + c));
            const __m128i v1 = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(s + c + off));
            _mm_storel_epi64(reinterpret_cast<__m128i *>(d + c),
                             _mm_avg_epu8(v0, v1));
            c += 8;
        }
        for (; c < w; ++c)
            d[c] = static_cast<uint8_t>((s[c] + s[c + off] + 1) >> 1);
    }
}

void
interpHSse2(const uint8_t *src, int src_stride, uint8_t *dst,
            int dst_stride, int w, int h)
{
    interp2Tap(src, src_stride, 1, dst, dst_stride, w, h);
}

void
interpVSse2(const uint8_t *src, int src_stride, uint8_t *dst,
            int dst_stride, int w, int h)
{
    interp2Tap(src, src_stride, src_stride, dst, dst_stride, w, h);
}

void
interpHVSse2(const uint8_t *src, int src_stride, uint8_t *dst,
             int dst_stride, int w, int h)
{
    const __m128i two = _mm_set1_epi16(2);
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        uint8_t *d = dst + r * dst_stride;
        int c = 0;
        for (; c + 8 <= w; c += 8) {
            const __m128i v00 = load8u16(s + c);
            const __m128i v01 = load8u16(s + c + 1);
            const __m128i v10 = load8u16(s + c + src_stride);
            const __m128i v11 = load8u16(s + c + src_stride + 1);
            __m128i sum = _mm_add_epi16(_mm_add_epi16(v00, v01),
                                        _mm_add_epi16(v10, v11));
            sum = _mm_srli_epi16(_mm_add_epi16(sum, two), 2);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(d + c),
                             _mm_packus_epi16(sum, sum));
        }
        for (; c < w; ++c) {
            d[c] = static_cast<uint8_t>(
                (s[c] + s[c + 1] + s[c + src_stride] +
                 s[c + src_stride + 1] + 2) >> 2);
        }
    }
}

// ----- Transforms --------------------------------------------------

/** Forward 4x4 core on int16 rows `stride` apart. */
inline void
fwd4Core(const int16_t *in, int stride, int32_t out[16])
{
    __m128i c0 = load4s32(in + 0 * stride);
    __m128i c1 = load4s32(in + 1 * stride);
    __m128i c2 = load4s32(in + 2 * stride);
    __m128i c3 = load4s32(in + 3 * stride);
    // After the transpose, vector k holds input column k with one lane
    // per row, so the scalar row butterflies become lane-wise ops.
    transpose4x32(c0, c1, c2, c3);
    __m128i s0 = _mm_add_epi32(c0, c3);
    __m128i s1 = _mm_add_epi32(c1, c2);
    __m128i s2 = _mm_sub_epi32(c1, c2);
    __m128i s3 = _mm_sub_epi32(c0, c3);
    __m128i t0 = _mm_add_epi32(s0, s1);
    __m128i t1 = _mm_add_epi32(_mm_slli_epi32(s3, 1), s2);
    __m128i t2 = _mm_sub_epi32(s0, s1);
    __m128i t3 = _mm_sub_epi32(s3, _mm_slli_epi32(s2, 1));
    transpose4x32(t0, t1, t2, t3);
    s0 = _mm_add_epi32(t0, t3);
    s1 = _mm_add_epi32(t1, t2);
    s2 = _mm_sub_epi32(t1, t2);
    s3 = _mm_sub_epi32(t0, t3);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 0),
                     _mm_add_epi32(s0, s1));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 4),
                     _mm_add_epi32(_mm_slli_epi32(s3, 1), s2));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 8),
                     _mm_sub_epi32(s0, s1));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 12),
                     _mm_sub_epi32(s3, _mm_slli_epi32(s2, 1)));
}

void
fwdTx4x4Sse2(const int16_t in[16], int32_t out[16])
{
    fwd4Core(in, 4, out);
}

void
fwdTx8x8Sse2(const int16_t residual[64], int32_t coefs[64])
{
    for (int sb = 0; sb < 4; ++sb) {
        const int ox = (sb & 1) * 4;
        const int oy = (sb >> 1) * 4;
        fwd4Core(residual + oy * 8 + ox, 8, coefs + sb * 16);
    }
}

/** Inverse 4x4 core writing int16 rows `out_stride` apart. */
inline void
inv4Core(const int32_t in[16], int16_t *out, int out_stride)
{
    const __m128i round = _mm_set1_epi32(32);
    __m128i c0 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(in));
    __m128i c1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in + 4));
    __m128i c2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in + 8));
    __m128i c3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in + 12));
    transpose4x32(c0, c1, c2, c3);
    __m128i e0 = _mm_add_epi32(c0, c2);
    __m128i e1 = _mm_sub_epi32(c0, c2);
    __m128i e2 = _mm_sub_epi32(_mm_srai_epi32(c1, 1), c3);
    __m128i e3 = _mm_add_epi32(c1, _mm_srai_epi32(c3, 1));
    __m128i t0 = _mm_add_epi32(e0, e3);
    __m128i t1 = _mm_add_epi32(e1, e2);
    __m128i t2 = _mm_sub_epi32(e1, e2);
    __m128i t3 = _mm_sub_epi32(e0, e3);
    transpose4x32(t0, t1, t2, t3);
    e0 = _mm_add_epi32(t0, t2);
    e1 = _mm_sub_epi32(t0, t2);
    e2 = _mm_sub_epi32(_mm_srai_epi32(t1, 1), t3);
    e3 = _mm_add_epi32(t1, _mm_srai_epi32(t3, 1));
    const __m128i o0 = _mm_srai_epi32(
        _mm_add_epi32(_mm_add_epi32(e0, e3), round), 6);
    const __m128i o1 = _mm_srai_epi32(
        _mm_add_epi32(_mm_add_epi32(e1, e2), round), 6);
    const __m128i o2 = _mm_srai_epi32(
        _mm_add_epi32(_mm_sub_epi32(e1, e2), round), 6);
    const __m128i o3 = _mm_srai_epi32(
        _mm_add_epi32(_mm_sub_epi32(e0, e3), round), 6);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(out + 0 * out_stride),
                     wrapPack16(o0));
    _mm_storel_epi64(reinterpret_cast<__m128i *>(out + 1 * out_stride),
                     wrapPack16(o1));
    _mm_storel_epi64(reinterpret_cast<__m128i *>(out + 2 * out_stride),
                     wrapPack16(o2));
    _mm_storel_epi64(reinterpret_cast<__m128i *>(out + 3 * out_stride),
                     wrapPack16(o3));
}

void
invTx4x4Sse2(const int32_t in[16], int16_t out[16])
{
    inv4Core(in, out, 4);
}

void
invTx8x8Sse2(const int32_t coefs[64], int16_t residual[64])
{
    for (int sb = 0; sb < 4; ++sb) {
        const int ox = (sb & 1) * 4;
        const int oy = (sb >> 1) * 4;
        inv4Core(coefs + sb * 16, residual + oy * 8 + ox, 8);
    }
}

// ----- Quantization ------------------------------------------------

/**
 * Quantize 4 coefficients (one row of the 4x4 block) with the same
 * widened 64-bit math as the scalar path: |w| * mf runs in pmuludq
 * (32x32 -> 64), the rounding offset is added and the shift applied at
 * 64 bits, so even pathological coefficient magnitudes match exactly.
 */
inline __m128i
quantRow(__m128i w, __m128i mf, __m128i f64, int qbits)
{
    const __m128i sign = _mm_srai_epi32(w, 31);
    const __m128i absw = _mm_sub_epi32(_mm_xor_si128(w, sign), sign);
    const __m128i prod02 = _mm_mul_epu32(absw, mf);
    const __m128i prod13 = _mm_mul_epu32(_mm_srli_si128(absw, 4),
                                         _mm_srli_si128(mf, 4));
    const __m128i mag02 =
        _mm_srli_epi64(_mm_add_epi64(prod02, f64), qbits);
    const __m128i mag13 =
        _mm_srli_epi64(_mm_add_epi64(prod13, f64), qbits);
    const __m128i mag = _mm_unpacklo_epi32(
        _mm_shuffle_epi32(mag02, _MM_SHUFFLE(3, 3, 2, 0)),
        _mm_shuffle_epi32(mag13, _MM_SHUFFLE(3, 3, 2, 0)));
    return _mm_sub_epi32(_mm_xor_si128(mag, sign), sign);
}

int
quant4x4Sse2(const int32_t coefs[16], int16_t levels[16], int qp,
             bool intra)
{
    const int rem = qp % 6;
    const int qbits = 15 + qp / 6;
    const int64_t f = (1ll << qbits) / (intra ? 3 : 6);
    const __m128i f64 = _mm_set1_epi64x(f);
    // Row position classes alternate a,c,a,c (even rows) and
    // c,b,c,b (odd rows).
    const __m128i mf_even =
        _mm_setr_epi32(kQuantMf[rem][0], kQuantMf[rem][2],
                       kQuantMf[rem][0], kQuantMf[rem][2]);
    const __m128i mf_odd =
        _mm_setr_epi32(kQuantMf[rem][2], kQuantMf[rem][1],
                       kQuantMf[rem][2], kQuantMf[rem][1]);
    int nonzero = 0;
    const __m128i zero = _mm_setzero_si128();
    for (int r = 0; r < 4; ++r) {
        const __m128i w = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(coefs + r * 4));
        const __m128i lvl32 =
            quantRow(w, (r & 1) ? mf_odd : mf_even, f64, qbits);
        const __m128i lvl16 = wrapPack16(lvl32);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(levels + r * 4),
                         lvl16);
        const int zmask =
            _mm_movemask_epi8(_mm_cmpeq_epi16(lvl16, zero)) & 0xFF;
        nonzero += 4 - __builtin_popcount(static_cast<unsigned>(zmask)) / 2;
    }
    return nonzero;
}

void
dequant4x4Sse2(const int16_t levels[16], int32_t coefs[16], int qp)
{
    const int rem = qp % 6;
    const int shift = qp / 6;
    // Two rows per 8-lane vector share the a,c,a,c,c,b,c,b pattern.
    const __m128i v = _mm_setr_epi16(
        static_cast<int16_t>(kDequantV[rem][0]),
        static_cast<int16_t>(kDequantV[rem][2]),
        static_cast<int16_t>(kDequantV[rem][0]),
        static_cast<int16_t>(kDequantV[rem][2]),
        static_cast<int16_t>(kDequantV[rem][2]),
        static_cast<int16_t>(kDequantV[rem][1]),
        static_cast<int16_t>(kDequantV[rem][2]),
        static_cast<int16_t>(kDequantV[rem][1]));
    for (int half = 0; half < 2; ++half) {
        const __m128i lv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(levels + half * 8));
        const __m128i lo = _mm_mullo_epi16(lv, v);
        const __m128i hi = _mm_mulhi_epi16(lv, v);
        const __m128i p0 = _mm_unpacklo_epi16(lo, hi);
        const __m128i p1 = _mm_unpackhi_epi16(lo, hi);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(coefs + half * 8),
                         _mm_slli_epi32(p0, shift));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(coefs + half * 8 + 4),
            _mm_slli_epi32(p1, shift));
    }
}

// ----- Residual / reconstruction -----------------------------------

void
diffBlockSse2(const uint8_t *src, int src_stride, const uint8_t *pred,
              int pred_stride, int16_t *out, int out_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *s = src + r * src_stride;
        const uint8_t *p = pred + r * pred_stride;
        int16_t *o = out + r * out_stride;
        int c = 0;
        for (; c + 8 <= w; c += 8) {
            const __m128i vs = load8u16(s + c);
            const __m128i vp = load8u16(p + c);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(o + c),
                             _mm_sub_epi16(vs, vp));
        }
        for (; c < w; ++c)
            o[c] = static_cast<int16_t>(s[c] - p[c]);
    }
}

void
addClampBlockSse2(const uint8_t *pred, int pred_stride,
                  const int16_t *residual, int res_stride, uint8_t *dst,
                  int dst_stride, int w, int h)
{
    for (int r = 0; r < h; ++r) {
        const uint8_t *p = pred + r * pred_stride;
        const int16_t *res = residual + r * res_stride;
        uint8_t *d = dst + r * dst_stride;
        int c = 0;
        for (; c + 8 <= w; c += 8) {
            const __m128i vp = load8u16(p + c);
            const __m128i vr = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(res + c));
            // Saturating add matches the scalar int path: sums above
            // int16 range only occur above 255 and clamp to 255 either
            // way; the minimum 0 + -32768 does not underflow.
            const __m128i sum = _mm_adds_epi16(vp, vr);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(d + c),
                             _mm_packus_epi16(sum, sum));
        }
        for (; c < w; ++c)
            d[c] = clamp255(p[c] + res[c]);
    }
}

// ----- Deblocking --------------------------------------------------

void
deblockEdgeHSse2(uint8_t *q0_row, int stride, int n, int alpha, int beta,
                 int tc)
{
    const __m128i valpha = _mm_set1_epi16(static_cast<int16_t>(alpha));
    const __m128i vbeta = _mm_set1_epi16(static_cast<int16_t>(beta));
    const __m128i vtc = _mm_set1_epi16(static_cast<int16_t>(tc));
    const __m128i vntc = _mm_set1_epi16(static_cast<int16_t>(-tc));
    const __m128i four = _mm_set1_epi16(4);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i p1 = load8u16(q0_row + i - 2 * stride);
        const __m128i p0 = load8u16(q0_row + i - stride);
        const __m128i q0 = load8u16(q0_row + i);
        const __m128i q1 = load8u16(q0_row + i + stride);
        const __m128i dpq = _mm_sub_epi16(p0, q0);
        const __m128i abs_pq =
            _mm_max_epi16(dpq, _mm_sub_epi16(_mm_setzero_si128(), dpq));
        const __m128i dp = _mm_sub_epi16(p1, p0);
        const __m128i abs_p =
            _mm_max_epi16(dp, _mm_sub_epi16(_mm_setzero_si128(), dp));
        const __m128i dq = _mm_sub_epi16(q1, q0);
        const __m128i abs_q =
            _mm_max_epi16(dq, _mm_sub_epi16(_mm_setzero_si128(), dq));
        const __m128i mask = _mm_and_si128(
            _mm_cmplt_epi16(abs_pq, valpha),
            _mm_and_si128(_mm_cmplt_epi16(abs_p, vbeta),
                          _mm_cmplt_epi16(abs_q, vbeta)));
        __m128i delta = _mm_srai_epi16(
            _mm_add_epi16(
                _mm_add_epi16(_mm_slli_epi16(_mm_sub_epi16(q0, p0), 2),
                              _mm_sub_epi16(p1, q1)),
                four),
            3);
        delta = _mm_min_epi16(_mm_max_epi16(delta, vntc), vtc);
        const __m128i new_p0 = _mm_add_epi16(p0, delta);
        const __m128i new_q0 = _mm_sub_epi16(q0, delta);
        const __m128i out_p0 = _mm_or_si128(
            _mm_and_si128(mask, new_p0), _mm_andnot_si128(mask, p0));
        const __m128i out_q0 = _mm_or_si128(
            _mm_and_si128(mask, new_q0), _mm_andnot_si128(mask, q0));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(q0_row + i - stride),
                         _mm_packus_epi16(out_p0, out_p0));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(q0_row + i),
                         _mm_packus_epi16(out_q0, out_q0));
    }
    for (; i < n; ++i) {
        uint8_t *q0_ptr = q0_row + i;
        const int p1 = q0_ptr[-2 * stride];
        const int p0 = q0_ptr[-stride];
        const int q0 = q0_ptr[0];
        const int q1 = q0_ptr[stride];
        if (std::abs(p0 - q0) >= alpha || std::abs(p1 - p0) >= beta ||
            std::abs(q1 - q0) >= beta) {
            continue;
        }
        int delta = ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3;
        delta = delta < -tc ? -tc : (delta > tc ? tc : delta);
        q0_ptr[-stride] = clamp255(p0 + delta);
        q0_ptr[0] = clamp255(q0 - delta);
    }
}

// ----- Metrics -----------------------------------------------------

uint64_t
sse8Sse2(const uint8_t *a, const uint8_t *b, size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    uint64_t total = 0;
    size_t i = 0;
    // Chunk so the int32 accumulator lanes cannot overflow: each
    // 16-byte step adds at most 2 * 2 * 255^2 < 2^19 per lane.
    while (i + 16 <= n) {
        const size_t chunk_end =
            i + (((n - i) / 16 < 4096 ? (n - i) / 16 : 4096) * 16);
        __m128i acc = _mm_setzero_si128();
        for (; i < chunk_end; i += 16) {
            const __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + i));
            const __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + i));
            const __m128i dlo = _mm_sub_epi16(
                _mm_unpacklo_epi8(va, zero), _mm_unpacklo_epi8(vb, zero));
            const __m128i dhi = _mm_sub_epi16(
                _mm_unpackhi_epi8(va, zero), _mm_unpackhi_epi8(vb, zero));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(dlo, dlo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(dhi, dhi));
        }
        // Fold lanes at 64 bits: the 4-lane total can exceed int32.
        uint32_t lanes[4];
        _mm_storeu_si128(reinterpret_cast<__m128i *>(lanes), acc);
        total += static_cast<uint64_t>(lanes[0]) + lanes[1] + lanes[2] +
            lanes[3];
    }
    for (; i < n; ++i) {
        const int d = static_cast<int>(a[i]) - b[i];
        total += static_cast<uint64_t>(d * d);
    }
    return total;
}

void
ssimWindowSumsSse2(const uint8_t *a, int a_stride, const uint8_t *b,
                   int b_stride, int w, int h, uint32_t sums[5])
{
    if (w != 8) {
        // Tail windows narrower than 8 only occur on tiny planes.
        uint32_t sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
        for (int y = 0; y < h; ++y) {
            const uint8_t *ra = a + y * a_stride;
            const uint8_t *rb = b + y * b_stride;
            for (int x = 0; x < w; ++x) {
                const uint32_t va = ra[x];
                const uint32_t vb = rb[x];
                sa += va;
                sb += vb;
                saa += va * va;
                sbb += vb * vb;
                sab += va * vb;
            }
        }
        sums[0] = sa;
        sums[1] = sb;
        sums[2] = saa;
        sums[3] = sbb;
        sums[4] = sab;
        return;
    }
    const __m128i zero = _mm_setzero_si128();
    __m128i acc_a = _mm_setzero_si128();
    __m128i acc_b = _mm_setzero_si128();
    __m128i acc_aa = _mm_setzero_si128();
    __m128i acc_bb = _mm_setzero_si128();
    __m128i acc_ab = _mm_setzero_si128();
    for (int y = 0; y < h; ++y) {
        const __m128i ra = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(a + y * a_stride));
        const __m128i rb = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(b + y * b_stride));
        acc_a = _mm_add_epi64(acc_a, _mm_sad_epu8(ra, zero));
        acc_b = _mm_add_epi64(acc_b, _mm_sad_epu8(rb, zero));
        const __m128i a16 = _mm_unpacklo_epi8(ra, zero);
        const __m128i b16 = _mm_unpacklo_epi8(rb, zero);
        acc_aa = _mm_add_epi32(acc_aa, _mm_madd_epi16(a16, a16));
        acc_bb = _mm_add_epi32(acc_bb, _mm_madd_epi16(b16, b16));
        acc_ab = _mm_add_epi32(acc_ab, _mm_madd_epi16(a16, b16));
    }
    sums[0] = static_cast<uint32_t>(_mm_cvtsi128_si32(acc_a));
    sums[1] = static_cast<uint32_t>(_mm_cvtsi128_si32(acc_b));
    sums[2] = static_cast<uint32_t>(hsum32(acc_aa));
    sums[3] = static_cast<uint32_t>(hsum32(acc_bb));
    sums[4] = static_cast<uint32_t>(hsum32(acc_ab));
}

} // namespace

const KernelOps *
sse2Ops()
{
    static const KernelOps table = [] {
        KernelOps t = *scalarOps();
        t.name = "sse2";
        t.isa = Isa::Sse2;
        t.sad = sadSse2;
        t.satd = satdSse2;
        t.copy2d = copy2dSse2;
        t.interpH = interpHSse2;
        t.interpV = interpVSse2;
        t.interpHV = interpHVSse2;
        t.fwdTx4x4 = fwdTx4x4Sse2;
        t.invTx4x4 = invTx4x4Sse2;
        t.fwdTx8x8 = fwdTx8x8Sse2;
        t.invTx8x8 = invTx8x8Sse2;
        t.quant4x4 = quant4x4Sse2;
        t.dequant4x4 = dequant4x4Sse2;
        t.diffBlock = diffBlockSse2;
        t.addClampBlock = addClampBlockSse2;
        t.deblockEdgeH = deblockEdgeHSse2;
        t.sse8 = sse8Sse2;
        t.ssimWindowSums = ssimWindowSumsSse2;
        return t;
    }();
    return &table;
}

} // namespace vbench::kernels

#else // !defined(__SSE2__)

namespace vbench::kernels {

const KernelOps *
sse2Ops()
{
    return nullptr;
}

} // namespace vbench::kernels

#endif
