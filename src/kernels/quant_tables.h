#pragma once

/**
 * @file
 * Per-position quantization multipliers (MF) and rescale factors (V)
 * from the H.264 reference construction, shared by the scalar and
 * vector quant/dequant kernels and by codec/transform.cc's DC helpers.
 * Positions fall in three classes by parity: (even,even) -> a,
 * (odd,odd) -> b, mixed -> c.
 */

#include <cstdint>

namespace vbench::kernels {

inline constexpr int kQuantMf[6][3] = {
    // a      b     c
    {13107, 5243, 8066},
    {11916, 4660, 7490},
    {10082, 4194, 6554},
    {9362, 3647, 5825},
    {8192, 3355, 5243},
    {7282, 2893, 4559},
};

inline constexpr int kDequantV[6][3] = {
    // a   b   c
    {10, 16, 13},
    {11, 18, 14},
    {13, 20, 16},
    {14, 23, 18},
    {16, 25, 20},
    {18, 29, 23},
};

/** Position class index (0=a, 1=b, 2=c) for raster position i. */
inline constexpr int
posClass(int i)
{
    const int r = i >> 2;
    const int c = i & 3;
    const bool r_even = (r & 1) == 0;
    const bool c_even = (c & 1) == 0;
    if (r_even && c_even)
        return 0;
    if (!r_even && !c_even)
        return 1;
    return 2;
}

} // namespace vbench::kernels
