#pragma once

/**
 * @file
 * Top-Down cycle accounting (Yasin 2014), the methodology Figure 6 of
 * the paper uses to attribute pipeline slots.
 */

namespace vbench::uarch {

/** Raw event counts the accounting consumes. */
struct TopDownInputs {
    double instructions = 0;       ///< total retired instructions
    double vector_instructions = 0;///< subset executing on SIMD ports
    double l1i_misses = 0;
    double branch_mispredicts = 0;
    double l1d_misses = 0;         ///< L1D misses that hit L2
    double l2_misses = 0;          ///< L2 misses that hit L3
    double l3_misses = 0;          ///< LLC misses to DRAM
};

/** Fractions of pipeline slots per Top-Down category; sums to 1. */
struct TopDownBreakdown {
    double frontend = 0;   ///< FE: fetch starvation (I$ misses, decode)
    double bad_speculation = 0;  ///< BAD: wrong-path work
    double backend_memory = 0;   ///< BE/Mem: data-cache stalls
    double backend_core = 0;     ///< BE/Core: execution port pressure
    double retiring = 0;         ///< RET: useful work

    double
    total() const
    {
        return frontend + bad_speculation + backend_memory + backend_core +
            retiring;
    }
};

/**
 * Penalty model. Latencies are in cycles; the memory-level-parallelism
 * factor discounts cache-miss latency for overlap. Defaults calibrated
 * so a VOD transcode lands near the paper's profile: ~15% FE, ~10%
 * BAD, ~15% BE/Mem, ~60% BE/Core + RET.
 */
struct TopDownParams {
    double issue_width = 4.0;
    double l1i_miss_penalty = 12.0;
    double branch_miss_penalty = 16.0;
    double l1d_hit_l2_latency = 10.0;
    double l2_hit_l3_latency = 35.0;
    double dram_latency = 180.0;
    double mlp_factor = 0.25;      ///< fraction of miss latency exposed
    double fetch_overhead = 0.06;  ///< baseline FE bubbles per instr
    double core_scalar_cost = 0.10; ///< BE/Core stall cycles per scalar op
    double core_vector_cost = 0.30; ///< BE/Core stall cycles per vector op
};

/** Compute the slot breakdown from event counts. */
TopDownBreakdown topDown(const TopDownInputs &inputs,
                         const TopDownParams &params = TopDownParams{});

/**
 * Total modeled execution cycles for the event counts (the sum the
 * breakdown normalizes by). Comparing the same workload's cycle totals
 * under two machine models is exactly the Platform scenario: identical
 * bitstream, different hardware, score = cycle ratio.
 */
double modeledCycles(const TopDownInputs &inputs,
                     const TopDownParams &params = TopDownParams{});

} // namespace vbench::uarch
