#pragma once

/**
 * @file
 * Set-associative LRU cache model and a three-level hierarchy.
 */

#include <cstdint>
#include <vector>

namespace vbench::uarch {

/** Cache geometry. All sizes in bytes; line size must be a power of 2. */
struct CacheConfig {
    uint64_t size_bytes = 32 * 1024;
    int ways = 8;
    int line_bytes = 64;
};

/**
 * A single set-associative cache with true-LRU replacement. Access is
 * by byte address; the model tracks hits and misses only (no data, no
 * latency), which is all the MPKI analysis needs.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &config);

    /**
     * Access one address.
     * @return true on hit, false on miss (the line is then filled).
     */
    bool access(uint64_t address);

    /** Touch every line covered by [address, address + bytes). */
    void accessRange(uint64_t address, uint64_t bytes);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

    int numSets() const { return num_sets_; }
    int ways() const { return config_.ways; }
    int lineBytes() const { return config_.line_bytes; }

    void resetStats() { hits_ = misses_ = 0; }

    /** Invalidate all contents (stats retained). */
    void flush();

  private:
    struct Line {
        uint64_t tag = 0;
        uint64_t lru = 0;   ///< larger is more recent
        bool valid = false;
    };

    CacheConfig config_;
    int num_sets_;
    int line_shift_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    std::vector<Line> lines_;  ///< num_sets_ * ways, set-major
};

/**
 * The L1I / L1D / shared L2 / shared L3 hierarchy the MPKI analysis
 * simulates. Instruction fetches go through L1I; data accesses through
 * L1D; both miss paths feed L2 then L3 (inclusive, no prefetchers --
 * a deliberately simple model, the paper's trends are about working
 * sets, not prefetch heuristics).
 */
class CacheHierarchy
{
  public:
    struct Config {
        CacheConfig l1i{32 * 1024, 8, 64};
        CacheConfig l1d{32 * 1024, 8, 64};
        CacheConfig l2{256 * 1024, 8, 64};
        CacheConfig l3{8 * 1024 * 1024, 16, 64};
    };

    CacheHierarchy() : CacheHierarchy(Config{}) {}
    explicit CacheHierarchy(const Config &config);

    /** Instruction fetch of one line-aligned region. */
    void fetch(uint64_t address, uint64_t bytes);

    /** Data access over a region. */
    void touch(uint64_t address, uint64_t bytes);

    const CacheModel &l1i() const { return l1i_; }
    const CacheModel &l1d() const { return l1d_; }
    const CacheModel &l2() const { return l2_; }
    const CacheModel &l3() const { return l3_; }

    void resetStats();

  private:
    void accessLine(uint64_t address, bool instruction);

    CacheModel l1i_;
    CacheModel l1d_;
    CacheModel l2_;
    CacheModel l3_;
};

} // namespace vbench::uarch
