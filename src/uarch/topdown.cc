#include "uarch/topdown.h"

namespace vbench::uarch {

namespace {

/** Per-category stall cycles; the breakdown and the total share it. */
struct CycleTerms {
    double fe = 0, bad = 0, mem = 0, core = 0, ret = 0;

    double total() const { return fe + bad + mem + core + ret; }
};

CycleTerms
cycleTerms(const TopDownInputs &in, const TopDownParams &p)
{
    CycleTerms t;
    // Stall cycles per category. All are converted to issue slots by
    // the common issue width, so the conversion cancels in the
    // fractions and plain cycles can be summed directly.
    t.fe = in.l1i_misses * p.l1i_miss_penalty +
        in.instructions * p.fetch_overhead;
    t.bad = in.branch_mispredicts * p.branch_miss_penalty;
    t.mem = p.mlp_factor *
        (in.l1d_misses * p.l1d_hit_l2_latency +
         in.l2_misses * p.l2_hit_l3_latency +
         in.l3_misses * p.dram_latency);
    const double scalar_instr = in.instructions - in.vector_instructions;
    t.core = scalar_instr * p.core_scalar_cost +
        in.vector_instructions * p.core_vector_cost;
    t.ret = in.instructions / p.issue_width;
    return t;
}

} // namespace

TopDownBreakdown
topDown(const TopDownInputs &in, const TopDownParams &p)
{
    TopDownBreakdown out;
    if (in.instructions <= 0) {
        out.retiring = 1.0;
        return out;
    }
    const CycleTerms t = cycleTerms(in, p);
    const double total = t.total();
    out.frontend = t.fe / total;
    out.bad_speculation = t.bad / total;
    out.backend_memory = t.mem / total;
    out.backend_core = t.core / total;
    out.retiring = t.ret / total;
    return out;
}

double
modeledCycles(const TopDownInputs &in, const TopDownParams &p)
{
    return cycleTerms(in, p).total();
}

} // namespace vbench::uarch
