#pragma once

/**
 * @file
 * SIMD/ISA dispatch model (paper §5.2, Figs. 7-8).
 *
 * Models how the transcoding kernels dispatch onto progressively wider
 * SIMD instruction sets, mirroring libx264's per-function runtime
 * dispatch: each kernel uses the widest ISA it can fill, capped by its
 * block geometry (a 4x4 transform never fills a 256-bit register).
 * Control/sequential code never vectorizes, which is the Amdahl limit
 * the paper quantifies.
 */

#include <array>
#include <cstdint>

#include "uarch/kernels.h"

namespace vbench::uarch {

/** x86 SIMD generations the dispatch model distinguishes. */
enum class IsaLevel { Scalar = 0, SSE, SSE2, SSE3, SSE4, AVX, AVX2 };

inline constexpr int kNumIsaLevels = 7;

const char *isaName(IsaLevel level);

/**
 * 8-bit elements processed per vector instruction at a given ISA
 * level, for a kernel whose widest usable register is width_cap_bits.
 * Encodes the historical ISA properties: SSE is float-oriented (small
 * win for 8-bit video math), SSE2 brings 128-bit integer ops (the big
 * jump), SSE3/SSE4/AVX refine throughput at the same integer width,
 * AVX2 doubles integer width to 256 bits -- but only kernels with
 * width_cap_bits >= 256 benefit.
 */
double elementsPerVectorInstr(IsaLevel level, int width_cap_bits);

/**
 * The ISA bucket a kernel's vector instructions are *encoded* in when
 * `enabled` is the widest available level (e.g. on an AVX2 machine a
 * 128-bit-capped kernel executes VEX-encoded AVX, not AVX2).
 */
IsaLevel encodingBucket(IsaLevel enabled, int width_cap_bits);

/** Accumulated work units per kernel (filled by the trace simulator). */
struct KernelWork {
    std::array<double, kNumKernels> units{};

    double &operator[](KernelId id) { return units[static_cast<int>(id)]; }
    double
    operator[](KernelId id) const
    {
        return units[static_cast<int>(id)];
    }
};

/** Cycles attributed to each ISA bucket plus derived totals. */
struct CycleBreakdown {
    std::array<double, kNumIsaLevels> cycles{};

    double
    total() const
    {
        double sum = 0;
        for (double c : cycles)
            sum += c;
        return sum;
    }

    double scalarFraction() const { return fraction(IsaLevel::Scalar); }

    double
    fraction(IsaLevel level) const
    {
        const double t = total();
        return t > 0 ? cycles[static_cast<int>(level)] / t : 0.0;
    }
};

/** Instruction counts split by scalar/vector for the MPKI denominators. */
struct InstrCounts {
    double scalar = 0;
    double vector = 0;

    double total() const { return scalar + vector; }
};

/**
 * Instruction counts for a work profile executed with `enabled` as the
 * widest available ISA.
 */
InstrCounts instructionCount(const KernelWork &work, IsaLevel enabled);

/**
 * Cycle breakdown by ISA bucket for a work profile. Scalar
 * instructions cost kScalarCpi cycles, vector instructions kVectorCpi;
 * the trends (not absolute time) are what Figs. 7-8 report.
 */
CycleBreakdown simdCycles(const KernelWork &work, IsaLevel enabled);

/** Scalar and vector per-instruction cycle costs used by the model. */
inline constexpr double kScalarCpi = 0.40;
inline constexpr double kVectorCpi = 0.55;

} // namespace vbench::uarch
