#pragma once

/**
 * @file
 * The instrumentation interface the codecs report kernel activity
 * through. A null probe costs one predictable branch per kernel call.
 */

#include <cstddef>
#include <cstdint>
#include <initializer_list>

#include "uarch/kernels.h"

namespace vbench::uarch {

/**
 * A (possibly strided) data region a kernel invocation touched: `rows`
 * runs of `row_bytes` starting `stride` bytes apart. Video kernels work
 * on 2-D pixel blocks, so a strided description reproduces the actual
 * cache-line touch pattern of e.g. a 16x16 SAD against a full-width
 * reference plane.
 */
struct MemRegion {
    const void *base = nullptr;
    uint32_t row_bytes = 0;
    uint32_t rows = 1;
    uint32_t stride = 0;    ///< byte distance between row starts
    bool write = false;
};

/**
 * Receiver for dynamic kernel events. The codecs call record() once
 * per kernel invocation (or once per batched group of invocations)
 * with the amount of work done and up to 64 *data-derived* decision
 * bits -- real values computed from the pixels (significance flags,
 * sign bits, early-exit outcomes) that the branch-predictor simulation
 * replays as data-dependent branch outcomes. This is what makes the
 * branch MPKI of a noisy clip genuinely higher than a slideshow's.
 */
class UarchProbe
{
  public:
    virtual ~UarchProbe() = default;

    /**
     * Report kernel work.
     *
     * @param id which kernel ran.
     * @param units work units completed (kernel-specific; see
     *        kernels.cc for each kernel's unit).
     * @param decision_bits packed data-dependent branch outcomes.
     * @param n_decisions number of valid bits in decision_bits (0-64).
     * @param regions data regions touched, for the cache hierarchy.
     */
    virtual void record(KernelId id, uint64_t units, uint64_t decision_bits,
                        int n_decisions,
                        std::initializer_list<MemRegion> regions) = 0;

    /** Convenience overload for kernels with no data regions. */
    void
    record(KernelId id, uint64_t units, uint64_t decision_bits = 0,
           int n_decisions = 0)
    {
        record(id, units, decision_bits, n_decisions, {});
    }
};

} // namespace vbench::uarch
