#pragma once

/**
 * @file
 * The trace-driven microarchitecture simulator: a UarchProbe that
 * replays the codec's kernel events through cache and branch models
 * and produces the paper's §5.1-5.2 statistics.
 */

#include <cstdint>
#include <memory>

#include "uarch/branch.h"
#include "uarch/cache.h"
#include "uarch/probe.h"
#include "uarch/simd.h"
#include "uarch/topdown.h"

namespace vbench::uarch {

/** Everything Figures 5-8 need, for one instrumented transcode. */
struct UarchReport {
    double l1i_mpki = 0;
    double branch_mpki = 0;
    double l2_mpki = 0;
    double l3_mpki = 0;
    TopDownBreakdown topdown;
    /// Raw event counts behind the breakdown, for cycle modeling
    /// (Platform-scenario machine comparisons).
    TopDownInputs topdown_inputs;
    KernelWork work;                 ///< accumulated units per kernel
    double instructions = 0;         ///< traced instruction estimate
    double vector_instructions = 0;
    CycleBreakdown cycles;           ///< ISA bucket attribution
};

/** Simulator knobs. */
struct TraceSimConfig {
    /// Only 1 in 2^sample_shift invocations are traced through the
    /// cache/branch models (instruction accounting sees all of them);
    /// the MPKI denominators use the traced subset so ratios stay
    /// unbiased.
    int sample_shift = 0;
    /// Widest SIMD generation "available" on the modeled machine.
    IsaLevel isa = IsaLevel::AVX2;
    CacheHierarchy::Config caches;
    int gshare_table_bits = 14;
    int gshare_history_bits = 12;
};

/**
 * UarchProbe implementation. Feed it to an encoder/decoder, run a
 * transcode, then call report().
 */
class TraceSimulator : public UarchProbe
{
  public:
    explicit TraceSimulator(const TraceSimConfig &config = TraceSimConfig{});

    void record(KernelId id, uint64_t units, uint64_t decision_bits,
                int n_decisions,
                std::initializer_list<MemRegion> regions) override;
    using UarchProbe::record;

    /** Compute the report for everything recorded so far. */
    UarchReport report() const;

    const CacheHierarchy &caches() const { return caches_; }

  private:
    TraceSimConfig config_;
    CacheHierarchy caches_;
    GsharePredictor branches_;
    KernelWork traced_work_;      ///< work from traced invocations only
    KernelWork all_work_;         ///< all work (for the SIMD figures)
    uint64_t invocation_count_ = 0;
    double branch_events_ = 0;    ///< weighted simulated branch count
    double branch_misses_ = 0;    ///< weighted mispredicts
};

} // namespace vbench::uarch
