#include "uarch/cache.h"

#include <cassert>

namespace vbench::uarch {

namespace {

int
log2OfPow2(uint64_t v)
{
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

CacheModel::CacheModel(const CacheConfig &config)
    : config_(config)
{
    assert(config.line_bytes > 0 &&
           (config.line_bytes & (config.line_bytes - 1)) == 0);
    assert(config.ways > 0);
    const uint64_t lines = config.size_bytes / config.line_bytes;
    assert(lines % config.ways == 0);
    num_sets_ = static_cast<int>(lines / config.ways);
    assert(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0);
    line_shift_ = log2OfPow2(config.line_bytes);
    lines_.resize(lines);
}

bool
CacheModel::access(uint64_t address)
{
    const uint64_t line_addr = address >> line_shift_;
    const uint64_t set = line_addr & (num_sets_ - 1);
    const uint64_t tag = line_addr >> log2OfPow2(num_sets_);
    Line *set_base = &lines_[set * config_.ways];
    ++tick_;

    Line *victim = set_base;
    for (int w = 0; w < config_.ways; ++w) {
        Line &line = set_base[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    ++misses_;
    return false;
}

void
CacheModel::accessRange(uint64_t address, uint64_t bytes)
{
    if (bytes == 0)
        return;
    const uint64_t first = address >> line_shift_;
    const uint64_t last = (address + bytes - 1) >> line_shift_;
    for (uint64_t line = first; line <= last; ++line)
        access(line << line_shift_);
}

void
CacheModel::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

CacheHierarchy::CacheHierarchy(const Config &config)
    : l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2), l3_(config.l3)
{
}

void
CacheHierarchy::accessLine(uint64_t address, bool instruction)
{
    CacheModel &l1 = instruction ? l1i_ : l1d_;
    if (l1.access(address))
        return;
    if (l2_.access(address))
        return;
    l3_.access(address);
}

void
CacheHierarchy::fetch(uint64_t address, uint64_t bytes)
{
    if (bytes == 0)
        return;
    const int line = l1i_.lineBytes();
    const uint64_t first = address / line;
    const uint64_t last = (address + bytes - 1) / line;
    for (uint64_t l = first; l <= last; ++l)
        accessLine(l * line, true);
}

void
CacheHierarchy::touch(uint64_t address, uint64_t bytes)
{
    if (bytes == 0)
        return;
    const int line = l1d_.lineBytes();
    const uint64_t first = address / line;
    const uint64_t last = (address + bytes - 1) / line;
    for (uint64_t l = first; l <= last; ++l)
        accessLine(l * line, false);
}

void
CacheHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    l3_.resetStats();
}

} // namespace vbench::uarch
