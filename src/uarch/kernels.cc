#include "uarch/kernels.h"

#include <array>
#include <cassert>

namespace vbench::uarch {

namespace {

/**
 * The static kernel table. Layout notes:
 *
 *  - code_base offsets are assigned so that kernels used by *every*
 *    transcode (dispatch, copy, SAD, transform, quant, VLC) are packed
 *    together near the start of the text segment; advanced tools that
 *    only high-effort / high-entropy encodes exercise (sub-pel, many
 *    intra modes, RDO, arithmetic coding, deblocking) extend the
 *    working set beyond a 32 KiB L1I, which is the mechanism behind
 *    the paper's "complex videos exercise more code => more icache
 *    misses" observation (Fig. 5).
 *
 *  - vec/ctl op counts are per work unit (unit in the comment).
 *    They are calibrated so that a VOD transcode lands near the
 *    paper's instruction mix: ~60% scalar cycles, ~15% AVX2 (Fig. 7).
 */
constexpr std::array<KernelModel, kNumKernels> kModels = {{
    // id                        base    size   vec    ctl   cap  loopB dataB bytes
    {KernelId::Dispatch,            0, 16384,   0.0,  30.0,    0,  4.0,  3.0,   64},   // unit: one macroblock orchestrated
    {KernelId::FrameCopy,       16384,  1024, 180.0,   4.0,  256,  1.0,  0.0,   64},   // unit: 64 pixels moved
    {KernelId::MotionSearchCtl, 17408,  6144,   2.0,  24.0,    0,  2.0,  2.0,   16},   // unit: one candidate considered
    {KernelId::Sad,             23552,  2048, 750.0,  20.0,  256, 17.0,  1.0,  512},   // unit: one 16x16 SAD
    {KernelId::SubpelInterp,    25600,  3072, 420.0,  40.0,  128, 17.0,  1.0,  768},   // unit: one 16x16 half-pel interp
    {KernelId::IntraPredict,    28672,  8192, 180.0,  40.0,  128,  9.0,  2.0,  320},   // unit: one 16x16 predictor
    {KernelId::ModeDecision,    36864, 12288,  30.0, 120.0,  128,  4.0,  5.0,  128},   // unit: one RDO candidate
    {KernelId::TransformFwd,    49152,  2048,  64.0,  10.0,  128,  4.0,  0.0,   32},   // unit: one 4x4 block
    {KernelId::TransformInv,    51200,  2048,  64.0,  10.0,  128,  4.0,  0.0,   32},   // unit: one 4x4 block
    {KernelId::Quant,           53248,  1536, 120.0,   8.0,  256,  2.0,  1.0,   32},   // unit: one 4x4 block
    {KernelId::Dequant,         54784,  1536, 108.0,   6.0,  256,  2.0,  0.0,   32},   // unit: one 4x4 block
    {KernelId::EntropyVlc,      56320, 10240,   0.0,   9.0,    0,  1.0,  0.22,   4},   // unit: one coded symbol
    {KernelId::EntropyArith,    66560,  8192,   0.0,   7.0,    0,  1.0,  0.15,   2},   // unit: one coded bin
    {KernelId::Deblock,         74752,  6144, 150.0,  45.0,  128,  8.0,  3.0,  256},   // unit: one 16-sample edge
    {KernelId::Reconstruct,     80896,  2048,  36.0,   6.0,  128,  2.0,  0.0,   64},   // unit: one 4x4 block
    {KernelId::RateControl,     82944,  4096,   4.0,  60.0,    0,  2.0,  3.0,   16},   // unit: one macroblock budgeted
    {KernelId::DecodeParse,     87040,  8192,   0.0,   6.0,    0,  1.0,  0.20,   4},   // unit: one parsed symbol
}};

} // namespace

const char *
kernelName(KernelId id)
{
    switch (id) {
      case KernelId::Dispatch: return "dispatch";
      case KernelId::FrameCopy: return "frame_copy";
      case KernelId::MotionSearchCtl: return "me_control";
      case KernelId::Sad: return "sad";
      case KernelId::SubpelInterp: return "subpel_interp";
      case KernelId::IntraPredict: return "intra_predict";
      case KernelId::ModeDecision: return "mode_decision";
      case KernelId::TransformFwd: return "transform_fwd";
      case KernelId::TransformInv: return "transform_inv";
      case KernelId::Quant: return "quant";
      case KernelId::Dequant: return "dequant";
      case KernelId::EntropyVlc: return "entropy_vlc";
      case KernelId::EntropyArith: return "entropy_arith";
      case KernelId::Deblock: return "deblock";
      case KernelId::Reconstruct: return "reconstruct";
      case KernelId::RateControl: return "rate_control";
      case KernelId::DecodeParse: return "decode_parse";
      case KernelId::NumKernels: break;
    }
    return "unknown";
}

const KernelModel &
kernelModel(KernelId id)
{
    const int idx = static_cast<int>(id);
    assert(idx >= 0 && idx < kNumKernels);
    assert(kModels[idx].id == id && "kernel table order mismatch");
    return kModels[idx];
}

uint32_t
textSegmentSize()
{
    const KernelModel &last = kModels[kNumKernels - 1];
    return last.code_base + last.code_size;
}

} // namespace vbench::uarch
