#include "uarch/tracesim.h"

#include <algorithm>

namespace vbench::uarch {

namespace {

/** Fraction of loop-exit mispredicts surviving a loop predictor. */
constexpr double kLoopPredictorFactor = 0.12;

} // namespace

TraceSimulator::TraceSimulator(const TraceSimConfig &config)
    : config_(config), caches_(config.caches),
      branches_(config.gshare_table_bits, config.gshare_history_bits)
{
}

void
TraceSimulator::record(KernelId id, uint64_t units, uint64_t decision_bits,
                       int n_decisions,
                       std::initializer_list<MemRegion> regions)
{
    if (units == 0)
        return;
    const int k = static_cast<int>(id);
    all_work_.units[k] += static_cast<double>(units);

    const uint64_t mask = (1ull << config_.sample_shift) - 1;
    const bool traced = (invocation_count_++ & mask) == 0;
    if (!traced)
        return;

    traced_work_.units[k] += static_cast<double>(units);
    const KernelModel &model = kernelModel(id);

    // Instruction fetch: the slice of the kernel's code a call with
    // this much work traverses -- a fixed entry/exit cost plus more of
    // the body as more work units (modes, candidates, symbols) are
    // exercised, capped at the full footprint. Re-invoking the same
    // kernel back-to-back hits in L1I; interleaving many distinct
    // kernels (high-entropy content exercising more tools) evicts and
    // re-misses, which is the Fig. 5 front-end mechanism.
    const uint64_t traversed = std::min<uint64_t>(
        model.code_size, 384 + units * (model.code_size / 24));
    caches_.fetch(model.code_base, traversed);

    // Data side: touch the regions the kernel actually read/wrote,
    // row by row so strided 2-D blocks hit the same cache lines the
    // real access pattern would.
    for (const MemRegion &region : regions) {
        uint64_t addr = reinterpret_cast<uint64_t>(region.base);
        for (uint32_t r = 0; r < region.rows; ++r) {
            caches_.touch(addr, region.row_bytes);
            addr += region.stride ? region.stride : region.row_bytes;
        }
    }

    // Loop-control branches: a backward branch per work unit, taken
    // until the final iteration. Simulation is capped per invocation
    // and the tallies re-weighted, which preserves the mispredict
    // *rate* a trained predictor would see.
    const double loop_events = model.loop_branches * units;
    if (loop_events >= 1.0) {
        const uint64_t pc = model.code_base + 0x28;
        const int sim = static_cast<int>(
            std::min<double>(loop_events, 192.0));
        const double weight = loop_events / sim;
        for (int i = 0; i < sim; ++i) {
            const bool taken = i + 1 < sim;  // loop exit on last
            const bool correct = branches_.predict(pc, taken);
            branch_events_ += weight;
            // Real front-ends carry dedicated loop predictors that
            // catch most trip-count exits gshare's history cannot;
            // discount loop-exit mispredicts accordingly.
            if (!correct)
                branch_misses_ += weight * kLoopPredictorFactor;
        }
    }

    // Data-dependent branches: replay the decision bits the kernel
    // derived from real pixel data. Each bit is a representative
    // sample of the invocation's data-dependent branch outcomes.
    const double data_events = model.data_branches * units;
    if (n_decisions > 0 && data_events >= 1.0) {
        const double weight = data_events / n_decisions;
        for (int i = 0; i < n_decisions; ++i) {
            const uint64_t pc = model.code_base + 0x60 +
                16ull * (i & 7);
            const bool taken = (decision_bits >> i) & 1;
            const bool correct = branches_.predict(pc, taken);
            branch_events_ += weight;
            if (!correct)
                branch_misses_ += weight;
        }
    }
}

UarchReport
TraceSimulator::report() const
{
    UarchReport rep;
    rep.work = all_work_;

    const InstrCounts traced = instructionCount(traced_work_, config_.isa);
    const double kilo = traced.total() / 1000.0;
    if (kilo > 0) {
        rep.l1i_mpki = caches_.l1i().misses() / kilo;
        rep.branch_mpki = branch_misses_ / kilo;
        rep.l2_mpki = caches_.l2().misses() / kilo;
        rep.l3_mpki = caches_.l3().misses() / kilo;
    }

    const InstrCounts all = instructionCount(all_work_, config_.isa);
    rep.instructions = all.total();
    rep.vector_instructions = all.vector;
    rep.cycles = simdCycles(all_work_, config_.isa);

    TopDownInputs inputs;
    inputs.instructions = traced.total();
    inputs.vector_instructions = traced.vector;
    inputs.l1i_misses = static_cast<double>(caches_.l1i().misses());
    inputs.branch_mispredicts = branch_misses_;
    const double l2_misses = static_cast<double>(caches_.l2().misses());
    const double l3_misses = static_cast<double>(caches_.l3().misses());
    inputs.l1d_misses =
        static_cast<double>(caches_.l1d().misses()) - l2_misses;
    inputs.l2_misses = l2_misses - l3_misses;
    inputs.l3_misses = l3_misses;
    if (inputs.l1d_misses < 0)
        inputs.l1d_misses = 0;
    if (inputs.l2_misses < 0)
        inputs.l2_misses = 0;
    rep.topdown = topDown(inputs);
    rep.topdown_inputs = inputs;
    return rep;
}

} // namespace vbench::uarch
