#pragma once

/**
 * @file
 * Branch predictor models: bimodal and gshare.
 */

#include <cstdint>
#include <vector>

namespace vbench::uarch {

/** Common statistics interface for branch predictors. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict-and-update for one conditional branch.
     * @param pc branch address.
     * @param taken actual outcome.
     * @return true if the prediction was correct.
     */
    virtual bool predict(uint64_t pc, bool taken) = 0;

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    void resetStats() { lookups_ = mispredicts_ = 0; }

  protected:
    /** Record one outcome into the stats. */
    bool
    tally(bool correct)
    {
        ++lookups_;
        if (!correct)
            ++mispredicts_;
        return correct;
    }

  private:
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

/** Classic 2-bit saturating counter table indexed by PC. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(int table_bits = 12);

    bool predict(uint64_t pc, bool taken) override;

  private:
    std::vector<uint8_t> counters_;
    uint64_t mask_;
};

/**
 * gshare: 2-bit counters indexed by PC XOR global history. The model
 * the MPKI analysis uses; long enough history to learn loop trip
 * patterns, small enough to alias under heavy data-dependent branching.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(int table_bits = 14, int history_bits = 12);

    bool predict(uint64_t pc, bool taken) override;

  private:
    std::vector<uint8_t> counters_;
    uint64_t table_mask_;
    uint64_t history_mask_;
    uint64_t history_ = 0;
};

} // namespace vbench::uarch
