#include "uarch/branch.h"

namespace vbench::uarch {

namespace {

/** 2-bit saturating counter update; >= 2 predicts taken. */
bool
updateCounter(uint8_t &counter, bool taken)
{
    const bool prediction = counter >= 2;
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
    return prediction == taken;
}

} // namespace

BimodalPredictor::BimodalPredictor(int table_bits)
    : counters_(1ull << table_bits, 1),
      mask_((1ull << table_bits) - 1)
{
}

bool
BimodalPredictor::predict(uint64_t pc, bool taken)
{
    uint8_t &counter = counters_[(pc >> 2) & mask_];
    return tally(updateCounter(counter, taken));
}

GsharePredictor::GsharePredictor(int table_bits, int history_bits)
    : counters_(1ull << table_bits, 1),
      table_mask_((1ull << table_bits) - 1),
      history_mask_((1ull << history_bits) - 1)
{
}

bool
GsharePredictor::predict(uint64_t pc, bool taken)
{
    const uint64_t index = ((pc >> 2) ^ history_) & table_mask_;
    uint8_t &counter = counters_[index];
    const bool correct = updateCounter(counter, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
    return tally(correct);
}

} // namespace vbench::uarch
