#pragma once

/**
 * @file
 * The kernel taxonomy shared between the instrumented codecs and the
 * microarchitecture simulators.
 *
 * Every computational kernel in the transcoding pipeline is described
 * by a static KernelModel: its synthetic code footprint (placement in
 * a virtual text segment), its instruction cost per unit of work split
 * into vectorizable and control portions, and its branch behaviour.
 * The codecs report *dynamic* facts per invocation (work units and
 * data-derived decision bits); the models supply the static facts a
 * real binary would carry. Together they drive the cache, branch
 * predictor, top-down, and SIMD analyses of paper §5.1-5.2.
 */

#include <cstdint>

namespace vbench::uarch {

/** Transcoding pipeline kernels, encoder and decoder side. */
enum class KernelId {
    Dispatch = 0,       ///< shared control/orchestration code
    FrameCopy,          ///< plane copies, padding, format shuffles
    MotionSearchCtl,    ///< search loop control and candidate pruning
    Sad,                ///< block sum-of-absolute-differences
    SubpelInterp,       ///< half-pel interpolation filters
    IntraPredict,       ///< intra predictor generation
    ModeDecision,       ///< RDO candidate evaluation and selection
    TransformFwd,       ///< forward integer transform
    TransformInv,       ///< inverse integer transform
    Quant,              ///< quantization
    Dequant,            ///< dequantization
    EntropyVlc,         ///< Exp-Golomb / run-level coding
    EntropyArith,       ///< adaptive binary range coder
    Deblock,            ///< in-loop deblocking filter
    Reconstruct,        ///< residual add + clamp
    RateControl,        ///< QP adaptation, pass bookkeeping
    DecodeParse,        ///< decoder-side bitstream parsing
    NumKernels,
};

inline constexpr int kNumKernels = static_cast<int>(KernelId::NumKernels);

/** Human-readable kernel name for reports. */
const char *kernelName(KernelId id);

/**
 * Static per-kernel microarchitectural description.
 *
 * Instruction costs are per *unit of work*, where the unit is the
 * kernel's natural work item (documented per kernel in kernels.cc):
 * a 16x16 SAD evaluation, a 4x4 transform block, one coded symbol...
 * The split into vec_ops and ctl_ops feeds the SIMD model: vec_ops
 * shrink with wider SIMD (up to width_cap_bits), ctl_ops never do.
 */
struct KernelModel {
    KernelId id;
    /// Byte offset of this kernel's code in the virtual text segment.
    uint32_t code_base;
    /// Code footprint in bytes (drives the I-cache working set).
    uint32_t code_size;
    /// Data-parallel (vectorizable) operations per work unit.
    double vec_ops;
    /// Control/sequential operations per work unit; never vectorizes.
    double ctl_ops;
    /// Widest SIMD register this kernel can fill, in bits. Kernels on
    /// narrow blocks cap below 256, which is why AVX2 only partially
    /// replaces AVX in Fig. 8.
    int width_cap_bits;
    /// Predictable loop-control branches per work unit.
    double loop_branches;
    /// Data-dependent branches per work unit (outcomes supplied by
    /// the codec as decision bits).
    double data_branches;
    /// Approximate bytes of pixel/coefficient data read per unit.
    double bytes_per_unit;
};

/** Model lookup. Never fails: every KernelId has an entry. */
const KernelModel &kernelModel(KernelId id);

/** Total size of the virtual text segment covered by all kernels. */
uint32_t textSegmentSize();

} // namespace vbench::uarch
