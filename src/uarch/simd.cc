#include "uarch/simd.h"

#include <algorithm>

namespace vbench::uarch {

const char *
isaName(IsaLevel level)
{
    switch (level) {
      case IsaLevel::Scalar: return "scalar";
      case IsaLevel::SSE: return "sse";
      case IsaLevel::SSE2: return "sse2";
      case IsaLevel::SSE3: return "sse3";
      case IsaLevel::SSE4: return "sse4";
      case IsaLevel::AVX: return "avx";
      case IsaLevel::AVX2: return "avx2";
    }
    return "unknown";
}

double
elementsPerVectorInstr(IsaLevel level, int width_cap_bits)
{
    if (width_cap_bits <= 0)
        return 1.0;
    // (integer elements per instr at full width, efficiency factor)
    // Efficiency < 1 accounts for loads, shuffles, reductions, and
    // masked tails that dilute raw lane counts in real kernels.
    double width_elems;
    double efficiency;
    switch (level) {
      case IsaLevel::Scalar: return 1.0;
      case IsaLevel::SSE: width_elems = 8; efficiency = 0.35; break;
      case IsaLevel::SSE2: width_elems = 16; efficiency = 0.50; break;
      case IsaLevel::SSE3: width_elems = 16; efficiency = 0.53; break;
      case IsaLevel::SSE4: width_elems = 16; efficiency = 0.58; break;
      case IsaLevel::AVX: width_elems = 16; efficiency = 0.61; break;
      case IsaLevel::AVX2: width_elems = 32; efficiency = 0.61; break;
      default: width_elems = 1; efficiency = 1.0; break;
    }
    const double cap_elems = width_cap_bits / 8.0;
    return std::min(width_elems, cap_elems) * efficiency;
}

IsaLevel
encodingBucket(IsaLevel enabled, int width_cap_bits)
{
    if (enabled == IsaLevel::AVX2 && width_cap_bits < 256)
        return IsaLevel::AVX;
    return enabled;
}

InstrCounts
instructionCount(const KernelWork &work, IsaLevel enabled)
{
    InstrCounts counts;
    for (int k = 0; k < kNumKernels; ++k) {
        const KernelModel &model = kernelModel(static_cast<KernelId>(k));
        const double units = work.units[k];
        if (units <= 0)
            continue;
        counts.scalar += model.ctl_ops * units;
        if (model.vec_ops > 0) {
            const double elems =
                elementsPerVectorInstr(enabled, model.width_cap_bits);
            if (enabled == IsaLevel::Scalar || model.width_cap_bits <= 0) {
                counts.scalar += model.vec_ops * units;
            } else {
                counts.vector += model.vec_ops * units / elems;
            }
        }
    }
    return counts;
}

CycleBreakdown
simdCycles(const KernelWork &work, IsaLevel enabled)
{
    CycleBreakdown breakdown;
    for (int k = 0; k < kNumKernels; ++k) {
        const KernelModel &model = kernelModel(static_cast<KernelId>(k));
        const double units = work.units[k];
        if (units <= 0)
            continue;
        breakdown.cycles[static_cast<int>(IsaLevel::Scalar)] +=
            model.ctl_ops * units * kScalarCpi;
        if (model.vec_ops <= 0)
            continue;
        if (enabled == IsaLevel::Scalar || model.width_cap_bits <= 0) {
            breakdown.cycles[static_cast<int>(IsaLevel::Scalar)] +=
                model.vec_ops * units * kScalarCpi;
        } else {
            const double elems =
                elementsPerVectorInstr(enabled, model.width_cap_bits);
            const IsaLevel bucket =
                encodingBucket(enabled, model.width_cap_bits);
            breakdown.cycles[static_cast<int>(bucket)] +=
                model.vec_ops * units / elems * kVectorCpi;
        }
    }
    return breakdown;
}

} // namespace vbench::uarch
