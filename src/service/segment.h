#pragma once

/**
 * @file
 * Split-and-stitch segment pipeline: cut a clip into closed-GOP
 * segments, encode each independently (chaining rate-controller state
 * across the cuts), and stitch the segment bitstreams back into one
 * stream. The result is byte-identical to the whole-file closed-GOP
 * encode for every rate-control mode — the proof obligation behind the
 * service's segment-level scheduling (docs/SERVICE.md).
 */

#include <string>
#include <vector>

#include "codec/encoder.h"
#include "codec/types.h"
#include "ngc/ngc_encoder.h"
#include "video/video.h"

namespace vbench::service {

/**
 * Cut a clip into segments of `segment_frames` frames (last may be
 * shorter). Frames are copied; each segment keeps the source geometry
 * and frame rate.
 */
std::vector<video::Video> splitVideo(const video::Video &source,
                                     int segment_frames);

/** Outcome of a segmented encode chain. */
struct SegmentedEncodeResult {
    std::vector<codec::ByteBuffer> segments;  ///< per-segment streams
    codec::ByteBuffer stitched;               ///< concatenated stream
    bool ok = false;
    std::string error;
};

/**
 * Encode a clip as an independently-encoded segment chain with VBC
 * and stitch the result. `base.segment_frames` is overwritten with
 * @p segment_frames; rate-controller state is chained across segments
 * via RcSnapshot, and two-pass runs the analysis pass per segment and
 * concatenates the stats into the whole-clip table, so the stitched
 * stream is byte-identical to `Encoder::encode` of the whole clip with
 * the same config.
 */
SegmentedEncodeResult encodeSegmentedVbc(const codec::EncoderConfig &base,
                                         const video::Video &source,
                                         int segment_frames);

/** NGC flavor of encodeSegmentedVbc; same exactness contract. */
SegmentedEncodeResult encodeSegmentedNgc(const ngc::NgcConfig &base,
                                         const video::Video &source,
                                         int segment_frames);

} // namespace vbench::service
