#include "service/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

#include "codec/stitch.h"
#include "core/reference.h"
#include "core/runtime_config.h"
#include "service/segment.h"
#include "video/rng.h"

namespace vbench::service {

namespace {

/** Sample an index from a cumulative weight table. */
size_t
sampleCdf(const std::vector<double> &cdf, double u)
{
    const auto it = std::lower_bound(cdf.begin(), cdf.end(),
                                     u * cdf.back());
    return std::min(static_cast<size_t>(it - cdf.begin()),
                    cdf.size() - 1);
}

std::vector<RungSpec>
rungsFor(core::Scenario scenario, const video::ClipSpec &spec,
         int ladder_rungs)
{
    std::vector<RungSpec> rungs;
    core::TranscodeRequest base = core::referenceRequest(
        scenario, spec.width, spec.height, spec.fps);
    if (scenario == core::Scenario::Popular && ladder_rungs > 1) {
        // Multi-bitrate ladder: the head-content re-transcode produces
        // every delivery operating point in one request. No scaler
        // exists in this repo, so rungs vary bitrate, not resolution.
        for (int r = 0; r < ladder_rungs; ++r) {
            RungSpec rung;
            rung.name = "r" + std::to_string(r);
            rung.request = base;
            // Descending ladder: 1.0x, 0.65x, 0.42x, ... of the
            // reference bitrate.
            rung.request.rc.bitrate_bps =
                base.rc.bitrate_bps * std::pow(0.65, r);
            rungs.push_back(std::move(rung));
        }
        return rungs;
    }
    RungSpec rung;
    rung.name = "r0";
    rung.request = std::move(base);
    rungs.push_back(std::move(rung));
    return rungs;
}

} // namespace

Corpus
buildCorpus(const std::vector<video::ClipSpec> &specs, int frames_per_clip,
            int segment_frames)
{
    Corpus corpus;
    corpus.segment_frames = segment_frames;
    for (const video::ClipSpec &spec : specs) {
        CorpusClip clip;
        clip.spec = spec;
        video::Video original =
            video::synthesizeClip(spec, frames_per_clip);
        clip.universal = std::make_shared<const codec::ByteBuffer>(
            core::makeUniversalStream(original, segment_frames));
        // Ingest-side split-and-stitch: cut the upload stream at its
        // forced IDRs instead of re-encoding per segment.
        const std::optional<std::vector<codec::ByteBuffer>> seg_streams =
            codec::splitStream(*clip.universal, segment_frames);
        std::vector<video::Video> seg_videos =
            splitVideo(original, segment_frames);
        if (seg_streams &&
            seg_streams->size() == seg_videos.size()) {
            for (size_t i = 0; i < seg_videos.size(); ++i) {
                clip.seg_original.push_back(
                    std::make_shared<const video::Video>(
                        std::move(seg_videos[i])));
                clip.seg_universal.push_back(
                    std::make_shared<const codec::ByteBuffer>(
                        std::move((*seg_streams)[i])));
            }
        }
        clip.original = std::make_shared<const video::Video>(
            std::move(original));
        corpus.clips.push_back(std::move(clip));
    }
    return corpus;
}

std::vector<ServiceRequest>
generateWorkload(const WorkloadConfig &config, const Corpus &corpus)
{
    std::vector<ServiceRequest> workload;
    if (corpus.clips.empty())
        return workload;

    const double rate = config.arrival_rate_hz > 0
        ? config.arrival_rate_hz
        : arrivalRateFromEnv(3.0);

    // Zipf popularity over corpus rank: weight 1 / (rank+1)^s.
    const double zipf_s = config.zipf_exponent > 0
        ? config.zipf_exponent
        : zipfExponentFromEnv(1.0);
    std::vector<double> clip_cdf;
    double acc = 0;
    for (size_t rank = 0; rank < corpus.clips.size(); ++rank) {
        acc += 1.0 /
            std::pow(static_cast<double>(rank + 1), zipf_s);
        clip_cdf.push_back(acc);
    }
    std::vector<double> mix_cdf;
    acc = 0;
    for (int s = 0; s < core::kNumScenarios; ++s) {
        acc += std::max(0.0, config.mix[static_cast<size_t>(s)]);
        mix_cdf.push_back(acc);
    }
    if (!(mix_cdf.back() > 0))
        return workload;

    video::Rng rng(config.seed);
    double t = 0;
    uint64_t id = 0;
    while (true) {
        // Exponential inter-arrival gap (open-loop Poisson process).
        t += -std::log(1.0 - rng.uniform()) / rate;
        if (t > config.duration_s)
            break;
        ServiceRequest req;
        req.id = id++;
        req.arrival_s = t;
        req.scenario = static_cast<core::Scenario>(
            sampleCdf(mix_cdf, rng.uniform()));
        req.clip = sampleCdf(clip_cdf, rng.uniform());

        const CorpusClip &clip = corpus.clips[req.clip];
        const double clip_duration = clip.original->duration();
        const double seg_duration =
            corpus.segment_frames / clip.spec.fps;
        switch (req.scenario) {
          case core::Scenario::Live:
            req.live_paced = true;
            req.segment_deadline_s = config.live_slack * seg_duration;
            break;
          case core::Scenario::Vod:
          case core::Scenario::Platform:
            req.request_deadline_s =
                clip_duration / std::max(1e-6, config.vod_throughput);
            break;
          case core::Scenario::Upload:
            req.request_deadline_s = config.upload_slack * clip_duration;
            break;
          case core::Scenario::Popular:
            req.request_deadline_s =
                config.popular_slack * clip_duration;
            break;
        }
        req.rungs =
            rungsFor(req.scenario, clip.spec, config.ladder_rungs);
        workload.push_back(std::move(req));
    }
    return workload;
}

int
segmentFramesFromEnv(int fallback)
{
    const int v = core::freshRuntimeConfig().segment_frames;
    return v > 0 ? v : fallback;
}

double
arrivalRateFromEnv(double fallback)
{
    const double v = core::freshRuntimeConfig().arrival_rate_hz;
    return v > 0 ? v : fallback;
}

double
zipfExponentFromEnv(double fallback)
{
    const double v = core::freshRuntimeConfig().zipf_s;
    return v > 0 ? v : fallback;
}

} // namespace vbench::service
