#include "service/segment_job.h"

#include <bit>
#include <cstring>
#include <memory>
#include <utility>

#include "codec/decoder.h"

namespace vbench::service {

namespace {

/** Little-endian field writer over a growing ByteBuffer. */
class Writer
{
  public:
    explicit Writer(codec::ByteBuffer &out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }

    void u16(uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }

    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    void str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }

    void bytes(const codec::ByteBuffer &b)
    {
        u32(static_cast<uint32_t>(b.size()));
        out_.insert(out_.end(), b.begin(), b.end());
    }

  private:
    codec::ByteBuffer &out_;
};

/**
 * Bounds-checked little-endian reader. Every getter reports failure
 * through ok(); the first short read poisons the reader so a caller
 * can decode the whole fixed layout and check once.
 */
class Reader
{
  public:
    explicit Reader(const codec::ByteBuffer &in) : in_(in) {}

    bool ok() const { return ok_; }
    bool atEnd() const { return pos_ == in_.size(); }

    /**
     * Name the wire field the next getters decode. On the first short
     * read the reader freezes this name and the field's start offset,
     * so a truncation error can say WHICH field died and WHERE — the
     * rpc supervisor logs that line verbatim when a child's reply is
     * cut off mid-stream.
     */
    void field(const char *name)
    {
        if (ok_) {
            field_ = name;
            field_pos_ = pos_;
        }
    }

    const char *failField() const { return field_; }
    size_t failOffset() const { return field_pos_; }

    uint8_t u8()
    {
        if (!need(1))
            return 0;
        return in_[pos_++];
    }

    uint16_t u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v = static_cast<uint16_t>(v | (in_[pos_++] << (8 * i)));
        return v;
    }

    uint32_t u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(in_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(in_[pos_++]) << (8 * i);
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        const uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(&in_[pos_]), n);
        pos_ += n;
        return s;
    }

    codec::ByteBuffer bytes()
    {
        const uint32_t n = u32();
        if (!need(n))
            return {};
        codec::ByteBuffer b(in_.begin() + static_cast<long>(pos_),
                            in_.begin() + static_cast<long>(pos_ + n));
        pos_ += n;
        return b;
    }

  private:
    bool need(size_t n)
    {
        if (!ok_ || in_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const codec::ByteBuffer &in_;
    size_t pos_ = 0;
    bool ok_ = true;
    const char *field_ = "header";
    size_t field_pos_ = 0;
};

void
putToolPreset(Writer &w, const codec::ToolPreset &t)
{
    w.u8(static_cast<uint8_t>(t.search));
    w.i32(t.range);
    w.u8(t.subpel ? 1 : 0);
    w.i32(t.subpel_iters);
    w.u8(t.inter8 ? 1 : 0);
    w.i32(t.refs);
    w.i32(t.rdo);
    w.u8(t.adaptive_quant ? 1 : 0);
    w.u8(static_cast<uint8_t>(t.entropy));
    w.u8(t.deblock ? 1 : 0);
    w.i32(t.intra_modes);
    w.f64(t.early_skip_scale);
    w.u8(t.scenecut ? 1 : 0);
    w.u8(t.satd_subpel ? 1 : 0);
}

codec::ToolPreset
getToolPreset(Reader &r)
{
    codec::ToolPreset t;
    t.search = static_cast<codec::SearchKind>(r.u8());
    t.range = r.i32();
    t.subpel = r.u8() != 0;
    t.subpel_iters = r.i32();
    t.inter8 = r.u8() != 0;
    t.refs = r.i32();
    t.rdo = r.i32();
    t.adaptive_quant = r.u8() != 0;
    t.entropy = static_cast<codec::EntropyMode>(r.u8());
    t.deblock = r.u8() != 0;
    t.intra_modes = r.i32();
    t.early_skip_scale = r.f64();
    t.scenecut = r.u8() != 0;
    t.satd_subpel = r.u8() != 0;
    return t;
}

bool
checkHeader(Reader &r, uint32_t magic, const char *what,
            std::string *error)
{
    if (r.u32() != magic) {
        if (error)
            *error = std::string(what) + ": bad magic";
        return false;
    }
    const uint16_t version = r.u16();
    if (!r.ok() || version != kSegmentWireVersion) {
        if (error)
            *error = std::string(what) + ": unsupported wire version " +
                std::to_string(version) + " (want " +
                std::to_string(kSegmentWireVersion) + ")";
        return false;
    }
    return true;
}

bool
checkTail(const Reader &r, const char *what, std::string *error)
{
    if (!r.ok()) {
        if (error)
            *error = std::string(what) + ": truncated message (field " +
                r.failField() + ", at byte " +
                std::to_string(r.failOffset()) + ")";
        return false;
    }
    if (!r.atEnd()) {
        if (error)
            *error = std::string(what) + ": trailing bytes";
        return false;
    }
    return true;
}

} // namespace

std::string
SegmentJob::label() const
{
    return "svc." + std::to_string(request_id) + "." + rung + ".s" +
        std::to_string(segment_index);
}

cache::CacheKey
SegmentJob::cacheKey() const
{
    cache::KeyBuilder kb;
    kb.u32(0x76624B32u);  // "vbK2": key-schema version tag
    kb.i32(segment_index);
    kb.bytes(input);
    kb.u8(static_cast<uint8_t>(params.kind));
    kb.u8(static_cast<uint8_t>(params.rc.mode));
    kb.i32(params.rc.qp);
    kb.f64(params.rc.crf);
    kb.f64(params.rc.bitrate_bps);
    kb.f64(params.rc.fps);
    kb.f64(params.rc.pixels_per_frame);
    kb.i32(params.rc.min_qp);
    kb.i32(params.rc.ip_qp_offset);
    kb.i32(params.effort);
    kb.i32(params.ngc_speed);
    kb.i32(params.gop);
    kb.i32(params.entropy_override);
    kb.i32(params.deblock_override);
    kb.boolean(params.tools_override.has_value());
    if (params.tools_override) {
        const codec::ToolPreset &t = *params.tools_override;
        kb.u8(static_cast<uint8_t>(t.search));
        kb.i32(t.range);
        kb.boolean(t.subpel);
        kb.i32(t.subpel_iters);
        kb.boolean(t.inter8);
        kb.i32(t.refs);
        kb.i32(t.rdo);
        kb.boolean(t.adaptive_quant);
        kb.u8(static_cast<uint8_t>(t.entropy));
        kb.boolean(t.deblock);
        kb.i32(t.intra_modes);
        kb.f64(t.early_skip_scale);
        kb.boolean(t.scenecut);
        kb.boolean(t.satd_subpel);
    }
    kb.i32(params.slice_count);
    kb.i32(params.segment_frames);
    kb.boolean(params.rc_in.has_value());
    if (params.rc_in) {
        kb.f64(params.rc_in->spent_bits);
        kb.f64(params.rc_in->planned_bits);
        kb.i32(params.rc_in->frames_done);
    }
    return kb.finish();
}

codec::ByteBuffer
SegmentJob::serialize() const
{
    codec::ByteBuffer out;
    out.reserve(input.size() + 256);
    Writer w(out);
    w.u32(kSegmentJobMagic);
    w.u16(kSegmentWireVersion);
    w.u64(request_id);
    w.str(rung);
    w.i32(segment_index);
    w.u8(static_cast<uint8_t>(scenario));
    w.bytes(input);

    w.u8(static_cast<uint8_t>(params.kind));
    w.u8(static_cast<uint8_t>(params.rc.mode));
    w.i32(params.rc.qp);
    w.f64(params.rc.crf);
    w.f64(params.rc.bitrate_bps);
    w.f64(params.rc.fps);
    w.f64(params.rc.pixels_per_frame);
    w.i32(params.rc.min_qp);
    w.i32(params.rc.ip_qp_offset);
    w.i32(params.effort);
    w.i32(params.ngc_speed);
    w.i32(params.gop);
    w.i32(params.entropy_override);
    w.i32(params.deblock_override);
    w.u8(params.tools_override.has_value() ? 1 : 0);
    if (params.tools_override)
        putToolPreset(w, *params.tools_override);
    w.i32(params.frame_threads);
    w.i32(params.slice_count);
    w.i32(params.segment_frames);
    w.u8(params.rc_in.has_value() ? 1 : 0);
    if (params.rc_in) {
        w.f64(params.rc_in->spent_bits);
        w.f64(params.rc_in->planned_bits);
        w.i32(params.rc_in->frames_done);
    }
    w.u64(params.span.trace_id);
    w.u64(params.span.span_id);
    w.u64(params.span.parent_id);
    return out;
}

std::optional<SegmentJob>
SegmentJob::deserialize(const codec::ByteBuffer &bytes,
                        std::string *error)
{
    Reader r(bytes);
    if (!checkHeader(r, kSegmentJobMagic, "SegmentJob", error))
        return std::nullopt;
    SegmentJob job;
    r.field("request_id");
    job.request_id = r.u64();
    r.field("rung");
    job.rung = r.str();
    r.field("segment_index");
    job.segment_index = r.i32();
    r.field("scenario");
    const uint8_t scenario = r.u8();
    if (r.ok() && scenario >= core::kNumScenarios) {
        if (error)
            *error = "SegmentJob: unknown scenario " +
                std::to_string(scenario);
        return std::nullopt;
    }
    job.scenario = static_cast<core::Scenario>(scenario);
    r.field("input");
    job.input = r.bytes();

    r.field("encoder_kind");
    const uint8_t kind = r.u8();
    if (r.ok() &&
        kind > static_cast<uint8_t>(core::EncoderKind::QsvLike)) {
        if (error)
            *error =
                "SegmentJob: unknown encoder kind " + std::to_string(kind);
        return std::nullopt;
    }
    job.params.kind = static_cast<core::EncoderKind>(kind);
    r.field("rc_mode");
    const uint8_t mode = r.u8();
    if (r.ok() && mode > static_cast<uint8_t>(codec::RcMode::TwoPass)) {
        if (error)
            *error = "SegmentJob: unknown rc mode " + std::to_string(mode);
        return std::nullopt;
    }
    job.params.rc.mode = static_cast<codec::RcMode>(mode);
    r.field("rc_config");
    job.params.rc.qp = r.i32();
    job.params.rc.crf = r.f64();
    job.params.rc.bitrate_bps = r.f64();
    job.params.rc.fps = r.f64();
    job.params.rc.pixels_per_frame = r.f64();
    job.params.rc.min_qp = r.i32();
    job.params.rc.ip_qp_offset = r.i32();
    r.field("encode_params");
    job.params.effort = r.i32();
    job.params.ngc_speed = r.i32();
    job.params.gop = r.i32();
    job.params.entropy_override = r.i32();
    job.params.deblock_override = r.i32();
    r.field("tools_override");
    if (r.u8() != 0)
        job.params.tools_override = getToolPreset(r);
    r.field("frame_threads");
    job.params.frame_threads = r.i32();
    r.field("slice_count");
    job.params.slice_count = r.i32();
    r.field("segment_frames");
    job.params.segment_frames = r.i32();
    r.field("rc_in");
    if (r.u8() != 0) {
        codec::RcSnapshot rc;
        rc.spent_bits = r.f64();
        rc.planned_bits = r.f64();
        rc.frames_done = r.i32();
        job.params.rc_in = rc;
    }
    r.field("span");
    job.params.span.trace_id = r.u64();
    job.params.span.span_id = r.u64();
    job.params.span.parent_id = r.u64();
    if (!checkTail(r, "SegmentJob", error))
        return std::nullopt;
    return job;
}

codec::ByteBuffer
SegmentResult::serialize() const
{
    codec::ByteBuffer out;
    out.reserve(stream.size() + 192);
    Writer w(out);
    w.u32(kSegmentResultMagic);
    w.u16(kSegmentWireVersion);
    w.u64(request_id);
    w.str(rung);
    w.i32(segment_index);
    w.u8(ok ? 1 : 0);
    w.str(error);
    w.bytes(stream);
    w.f64(rc_state.spent_bits);
    w.f64(rc_state.planned_bits);
    w.i32(rc_state.frames_done);
    w.f64(critical_path.queue_wait_ms);
    w.f64(critical_path.rc_chain_ms);
    w.f64(critical_path.encode_ms);
    w.f64(critical_path.stitch_ms);
    w.f64(m.speed_mpix_s);
    w.f64(m.bitrate_bpps);
    w.f64(m.psnr_db);
    w.f64(seconds);
    w.i32(frame_threads);
    w.i32(slice_count);
    return out;
}

std::optional<SegmentResult>
SegmentResult::deserialize(const codec::ByteBuffer &bytes,
                           std::string *error)
{
    Reader r(bytes);
    if (!checkHeader(r, kSegmentResultMagic, "SegmentResult", error))
        return std::nullopt;
    SegmentResult res;
    r.field("request_id");
    res.request_id = r.u64();
    r.field("rung");
    res.rung = r.str();
    r.field("segment_index");
    res.segment_index = r.i32();
    r.field("ok");
    res.ok = r.u8() != 0;
    r.field("error");
    res.error = r.str();
    r.field("stream");
    res.stream = r.bytes();
    r.field("rc_state");
    res.rc_state.spent_bits = r.f64();
    res.rc_state.planned_bits = r.f64();
    res.rc_state.frames_done = r.i32();
    r.field("critical_path");
    res.critical_path.queue_wait_ms = r.f64();
    res.critical_path.rc_chain_ms = r.f64();
    res.critical_path.encode_ms = r.f64();
    res.critical_path.stitch_ms = r.f64();
    r.field("measurement");
    res.m.speed_mpix_s = r.f64();
    res.m.bitrate_bpps = r.f64();
    res.m.psnr_db = r.f64();
    r.field("seconds");
    res.seconds = r.f64();
    r.field("frame_threads");
    res.frame_threads = r.i32();
    r.field("slice_count");
    res.slice_count = r.i32();
    if (!checkTail(r, "SegmentResult", error))
        return std::nullopt;
    return res;
}

SegmentResult
executeSegmentJob(const SegmentJob &job, const video::Video *original)
{
    SegmentResult res;
    res.request_id = job.request_id;
    res.rung = job.rung;
    res.segment_index = job.segment_index;

    std::optional<video::Video> decoded;
    if (original == nullptr) {
        // No pristine reference travels on the wire; a remote worker
        // measures quality against the decoded input instead. The
        // encoded bytes do not depend on the reference at all.
        decoded = codec::decode(job.input);
        if (!decoded) {
            res.error = "undecodable segment input";
            return res;
        }
        original = &*decoded;
    }

    const core::TranscodeOutcome outcome =
        core::transcode(job.input, *original, job.params);
    res.ok = outcome.ok;
    res.error = outcome.error;
    res.stream = outcome.stream;
    res.rc_state = outcome.rc_state;
    res.critical_path = outcome.critical_path;
    res.m = outcome.m;
    res.seconds = outcome.seconds;
    res.frame_threads = outcome.frame_threads;
    res.slice_count = outcome.slice_count;
    return res;
}

sched::TranscodeJob
toTranscodeJob(SegmentJob job,
               std::shared_ptr<const video::Video> original)
{
    sched::TranscodeJob tj;
    tj.label = job.label();
    tj.input =
        std::make_shared<codec::ByteBuffer>(std::move(job.input));
    tj.original = std::move(original);
    tj.request = job.params;
    return tj;
}

} // namespace vbench::service
