#pragma once

/**
 * @file
 * SLA scoring for the transcoding service: per-scenario segment
 * latency quantiles (p50/p95/p99 via obs::Histogram::valueAtQuantile),
 * deadline hit-rate, goodput (pixels of on-time, successful output per
 * wall second), and dropped-request rate. Scores export into an
 * obs::MetricsRegistry and emit one obs run report per scenario
 * (VBENCH_METRICS_OUT).
 *
 * Beyond the aggregates, the scorer keeps one obs::ExemplarStore per
 * scenario: each scored segment may carry its trace_id and
 * critical-path breakdown, and the report surfaces the slowest-decile
 * entries (latency >= the scenario's p90) next to the percentile
 * lines — so a bad p99 in a scorecard names the exact requests behind
 * it and where their time went (docs/OBSERVABILITY.md).
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"

namespace vbench::service {

/** Scored SLA summary for one scenario. */
struct ScenarioScore {
    core::Scenario scenario = core::Scenario::Upload;
    uint64_t requests = 0;  ///< arrivals (admitted + dropped)
    uint64_t dropped = 0;   ///< shed at admission
    uint64_t segments = 0;  ///< segment transcodes completed
    uint64_t failed = 0;    ///< segments whose transcode failed
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    /// Deadline hits / completed segments (1 when nothing completed).
    double hit_rate = 1.0;
    /// Megapixels of on-time, successful output per wall second.
    double goodput_mpix_s = 0;
    /// Dropped / arrived requests (0 when nothing arrived).
    double drop_rate = 0;
    /// Modeled fleet dollars spent on this scenario's segments (0 when
    /// the run had no fleet attached).
    double cost_dollars = 0;
    /// Dollars per delivered stream (stitched rung); 0 without
    /// streams or cost.
    double dollars_per_stream = 0;
    /// Segments served from the transcode output cache (byte-for-byte
    /// identical to a fresh encode, docs/CACHE.md).
    uint64_t cache_hits = 0;
    /// cache_hits / segments (0 when nothing completed).
    double cache_hit_rate = 0;
    /// Mean segment PSNR, dB (successful segments).
    double mean_psnr_db = 0;
    /// Dollars per stream per dB of quality — the cost-efficiency
    /// number the placement policies compete on.
    double dollars_per_quality_point = 0;
    /// Latency cut defining the slowest decile: the scenario's p90,
    /// lowered one histogram sub-bucket (12.5%) so bucket rounding
    /// never under-selects the decile.
    double exemplar_cut_ms = 0;
    /// Slowest-decile segments, slowest first: trace_id + critical
    /// path for every retained segment at or above the p90 cut.
    std::vector<obs::Exemplar> exemplars;
};

/** Full service scorecard. */
struct SlaReport {
    std::vector<ScenarioScore> scenarios;  ///< only scenarios with traffic
    double wall_seconds = 0;
    uint64_t total_requests = 0;
    uint64_t total_dropped = 0;
    uint64_t total_segments = 0;
    double overall_hit_rate = 1.0;
    double overall_goodput_mpix_s = 0;
    /// Total modeled fleet dollars (0 when the run had no fleet).
    double total_cost_dollars = 0;
    /// Transcode output cache rollup (docs/CACHE.md). Filled by the
    /// service from TranscodeCache::stats when a cache is attached;
    /// all-zero (enabled=false) otherwise.
    bool cache_enabled = false;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    double cache_hit_rate = 0;
    uint64_t cache_resident_bytes = 0;
    double cache_storage_dollars = 0;
    double cache_compute_dollars = 0;
    double cache_saved_dollars = 0;
    /// The store-vs-recompute bottom line: storage rent + compute
    /// dollars actually paid (what the cache policies compete on).
    double cache_total_dollars = 0;
};

/**
 * Accumulates service events and turns them into an SlaReport. Driven
 * from the service's single dispatcher thread; not thread-safe.
 */
class SlaScorer
{
  public:
    void recordArrival(core::Scenario scenario);
    void recordDrop(core::Scenario scenario);

    /**
     * One finished segment transcode.
     * @param latency_s completion minus availability (Live) or arrival.
     * @param hit       finished within its deadline.
     * @param pixels    luma pixels of the segment's output.
     * @param ok        the transcode succeeded.
     * @param trace_id  the segment's trace (0 = untraced: no exemplar
     *                  is retained, aggregates still update).
     * @param path      critical-path breakdown; its components sum to
     *                  `latency_s` (stitch excluded — request-level).
     * @param label     human-readable segment id for the exemplar.
     * @param cost_dollars modeled fleet dollars charged for the
     *                  segment (0 = no fleet attached).
     * @param psnr_db   segment quality; <= 0 skips the quality mean.
     * @param cache_hit the segment was served from the output cache.
     */
    void recordSegment(core::Scenario scenario, double latency_s, bool hit,
                       uint64_t pixels, bool ok, uint64_t trace_id = 0,
                       const obs::CriticalPath &path = obs::CriticalPath{},
                       const std::string &label = std::string(),
                       double cost_dollars = 0, double psnr_db = 0,
                       bool cache_hit = false);

    /** One finished rung stitch (request-level critical-path tail). */
    void recordStitch(core::Scenario scenario, double stitch_ms);

    /** Build the scorecard for a run that took `wall_seconds`. */
    SlaReport report(double wall_seconds) const;

    /**
     * Export counters (service.requests.*, service.dropped.*, ...) and
     * the per-scenario latency histograms
     * (service.segment_latency_us.*) into a metrics registry.
     */
    void exportMetrics(obs::MetricsRegistry &metrics) const;

    /**
     * Emit one obs run report per scenario with traffic (label
     * "service.<scenario>", SLA numbers in `extra`) through
     * core::emitRunReport — a no-op unless VBENCH_METRICS_OUT is set.
     */
    void emitRunReports(const SlaReport &report) const;

  private:
    struct PerScenario {
        uint64_t requests = 0;
        uint64_t dropped = 0;
        uint64_t segments = 0;
        uint64_t failed = 0;
        uint64_t hits = 0;
        uint64_t cache_hits = 0;
        uint64_t stitches = 0;
        uint64_t ontime_pixels = 0;  ///< pixels of on-time ok segments
        double cost_dollars = 0;     ///< modeled fleet dollars
        double psnr_sum_db = 0;      ///< over successful segments
        uint64_t psnr_count = 0;
        obs::Histogram latency_us;
        /// Critical-path aggregates (microseconds, same resolution as
        /// latency_us so the stage shares are comparable).
        obs::Histogram queue_wait_us;
        obs::Histogram rc_chain_us;
        obs::Histogram encode_us;
        obs::Histogram stitch_us;
        obs::ExemplarStore exemplars;  ///< K slowest traced segments
    };

    std::array<PerScenario, core::kNumScenarios> scenarios_;
};

} // namespace vbench::service
