#pragma once

/**
 * @file
 * SLA scoring for the transcoding service: per-scenario segment
 * latency quantiles (p50/p95/p99 via obs::Histogram::valueAtQuantile),
 * deadline hit-rate, goodput (pixels of on-time, successful output per
 * wall second), and dropped-request rate. Scores export into an
 * obs::MetricsRegistry and emit one obs run report per scenario
 * (VBENCH_METRICS_OUT).
 */

#include <array>
#include <cstdint>
#include <vector>

#include "core/scenario.h"
#include "obs/metrics.h"

namespace vbench::service {

/** Scored SLA summary for one scenario. */
struct ScenarioScore {
    core::Scenario scenario = core::Scenario::Upload;
    uint64_t requests = 0;  ///< arrivals (admitted + dropped)
    uint64_t dropped = 0;   ///< shed at admission
    uint64_t segments = 0;  ///< segment transcodes completed
    uint64_t failed = 0;    ///< segments whose transcode failed
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    /// Deadline hits / completed segments (1 when nothing completed).
    double hit_rate = 1.0;
    /// Megapixels of on-time, successful output per wall second.
    double goodput_mpix_s = 0;
    /// Dropped / arrived requests (0 when nothing arrived).
    double drop_rate = 0;
};

/** Full service scorecard. */
struct SlaReport {
    std::vector<ScenarioScore> scenarios;  ///< only scenarios with traffic
    double wall_seconds = 0;
    uint64_t total_requests = 0;
    uint64_t total_dropped = 0;
    uint64_t total_segments = 0;
    double overall_hit_rate = 1.0;
    double overall_goodput_mpix_s = 0;
};

/**
 * Accumulates service events and turns them into an SlaReport. Driven
 * from the service's single dispatcher thread; not thread-safe.
 */
class SlaScorer
{
  public:
    void recordArrival(core::Scenario scenario);
    void recordDrop(core::Scenario scenario);

    /**
     * One finished segment transcode.
     * @param latency_s completion minus availability (Live) or arrival.
     * @param hit       finished within its deadline.
     * @param pixels    luma pixels of the segment's output.
     * @param ok        the transcode succeeded.
     */
    void recordSegment(core::Scenario scenario, double latency_s, bool hit,
                       uint64_t pixels, bool ok);

    /** Build the scorecard for a run that took `wall_seconds`. */
    SlaReport report(double wall_seconds) const;

    /**
     * Export counters (service.requests.*, service.dropped.*, ...) and
     * the per-scenario latency histograms
     * (service.segment_latency_us.*) into a metrics registry.
     */
    void exportMetrics(obs::MetricsRegistry &metrics) const;

    /**
     * Emit one obs run report per scenario with traffic (label
     * "service.<scenario>", SLA numbers in `extra`) through
     * core::emitRunReport — a no-op unless VBENCH_METRICS_OUT is set.
     */
    void emitRunReports(const SlaReport &report) const;

  private:
    struct PerScenario {
        uint64_t requests = 0;
        uint64_t dropped = 0;
        uint64_t segments = 0;
        uint64_t failed = 0;
        uint64_t hits = 0;
        uint64_t ontime_pixels = 0;  ///< pixels of on-time ok segments
        obs::Histogram latency_us;
    };

    std::array<PerScenario, core::kNumScenarios> scenarios_;
};

} // namespace vbench::service
