#pragma once

/**
 * @file
 * Bounded admission queue with deadline-aware dispatch: the front door
 * of the transcoding service (docs/SERVICE.md).
 *
 * Requests are admitted with an optional absolute deadline. Dispatch
 * is earliest-deadline-first among deadline-carrying entries (Live),
 * FIFO among the rest — and a deadline always outranks no deadline,
 * because the FIFO classes (Upload/VoD/Popular) only lose throughput
 * to waiting while Live loses its SLA. A full queue rejects at offer()
 * time: the caller sheds the request and counts the drop instead of
 * building an unbounded backlog it can never serve in time.
 *
 * Header-only and codec-free on purpose: the TSan lane rebuilds the
 * service's concurrency substrate from source (tests/CMakeLists.txt),
 * which stays cheap only while this file pulls in no pixel code.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>

namespace vbench::service {

/** One queued admission ticket. */
struct Admitted {
    /// Caller-chosen key (the service uses the request id).
    uint64_t key = 0;
    /// Absolute deadline on the service clock, seconds. Infinity
    /// (the default) means "no deadline": dispatched FIFO, after any
    /// deadline-carrying entry.
    double deadline_s = std::numeric_limits<double>::infinity();
    /// Admission order, assigned by the queue (FIFO tie-break).
    uint64_t seq = 0;
};

/**
 * Thread-safe bounded admission queue. offer() never blocks — a full
 * queue is a shed, not backpressure — and poll() never waits.
 */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    /**
     * Try to admit. Returns false (and counts the shed) when the
     * queue is at capacity.
     */
    bool
    offer(uint64_t key,
          double deadline_s = std::numeric_limits<double>::infinity())
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++offered_;
        if (items_.size() >= capacity_) {
            ++shed_;
            return false;
        }
        Admitted item;
        item.key = key;
        item.deadline_s = deadline_s;
        item.seq = next_seq_++;
        items_.push_back(item);
        return true;
    }

    /**
     * Pop the next ticket: earliest finite deadline first, then FIFO.
     * Empty optional when the queue is empty.
     */
    std::optional<Admitted>
    poll()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (items_.empty())
            return std::nullopt;
        size_t best = 0;
        for (size_t i = 1; i < items_.size(); ++i) {
            const Admitted &a = items_[i];
            const Admitted &b = items_[best];
            if (a.deadline_s < b.deadline_s ||
                (a.deadline_s == b.deadline_s && a.seq < b.seq))
                best = i;
        }
        Admitted item = items_[best];
        items_.erase(items_.begin() +
                     static_cast<std::deque<Admitted>::difference_type>(
                         best));
        return item;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

    /** Total offer() calls (admitted + shed). */
    uint64_t
    offered() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return offered_;
    }

    /** Requests rejected because the queue was full. */
    uint64_t
    shed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return shed_;
    }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::deque<Admitted> items_;
    uint64_t next_seq_ = 0;
    uint64_t offered_ = 0;
    uint64_t shed_ = 0;
};

} // namespace vbench::service
