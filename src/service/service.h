#pragma once

/**
 * @file
 * The request-driven transcoding service (docs/SERVICE.md): admission
 * control in front of the sched::Scheduler worker pool, segment-level
 * split-and-stitch dispatch, and SLA scoring.
 *
 * One dispatcher loop plays the timed workload against the real clock:
 * arrivals enter the bounded AdmissionQueue (full queue = shed request
 * + drop counter), admitted requests are dispatched
 * earliest-deadline-first for Live and FIFO otherwise, and each
 * segment becomes one TranscodeJob on the scheduler pool. Bitrate-
 * controlled rungs encode their segments as a chain (RcSnapshot
 * carried segment to segment); constant-quality rungs fan all
 * segments out at once. Finished rungs stitch their segment streams
 * into the delivery stream. Frame-thread requests are left at 0 so
 * sched::decideFrameThreads() composes the wavefront width with the
 * pool's job-level parallelism.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "codec/types.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "service/sla.h"
#include "service/workload.h"

namespace vbench::service {

class SegmentExecutor;

/** Service sizing. Zeros mean "pick the sane default". */
struct ServiceConfig {
    /// Scheduler worker threads; <= 0 uses the scheduler default
    /// (VBENCH_JOBS or hardware concurrency).
    int workers = 0;
    /// Scheduler job-queue capacity; 0 uses 2 × workers.
    size_t queue_capacity = 0;
    /// Admission queue capacity: requests waiting for dispatch beyond
    /// this are shed (load shedding, not backpressure).
    size_t admission_capacity = 32;
    /// Requests being actively transcoded at once; 0 uses
    /// workers + 2.
    size_t max_active_requests = 0;
    /// Dispatcher poll interval, seconds.
    double poll_interval_s = 0.0005;
    /// Metrics sink for service counters, SLA histograms, and the
    /// scheduler's merged worker shards. Null disables.
    obs::MetricsRegistry *metrics = nullptr;
    /// Trace sink for the per-request span trees, flow arrows, and the
    /// scheduler's merged worker timelines. Null falls back to the
    /// process-wide tracer (VBENCH_TRACE); when that is also off,
    /// request span ids are still minted (exemplars stay resolvable
    /// across runs) but no trace events are recorded.
    obs::Tracer *tracer = nullptr;
    /// Live telemetry: sample the service gauges (queue depth,
    /// in-flight jobs, worker utilization, shed count, frame-thread
    /// clamps) on a background thread while the run plays.
    bool enable_telemetry = true;
    /// Telemetry sampling period, seconds (<= 0 uses 10 ms).
    double telemetry_interval_s = 0.010;
    /**
     * Heterogeneous fleet model (docs/FLEET.md). When set, every
     * segment is additionally *placed* on a modeled fleet worker:
     * the placement policy books it onto a machine type, and the
     * booking's modeled time/cost feed the SLA scorer's $/stream
     * columns and the fleet run report. Execution still happens on
     * the local scheduler pool — streams are placement-invariant.
     * Null = no fleet, cost columns stay zero.
     */
    const fleet::FleetConfig *fleet = nullptr;
    /// Per-type performance model for the fleet; null uses the
    /// PerfModel defaults (see fleet::calibratePerfModel).
    const fleet::PerfModel *fleet_model = nullptr;
    /**
     * Transcode output cache (docs/CACHE.md). When set, the dispatcher
     * consults it — keyed on SegmentJob::cacheKey() — before placing a
     * segment on the fleet/scheduler; a hit returns the stored stream
     * and RcSnapshot out-state so chained rungs continue unchanged,
     * and every miss's result is offered back under the cache's
     * store-vs-recompute policy. Streams are byte-identical with the
     * cache on or off. The cache outlives the run (the caller owns
     * it), so a warm cache carries across runs. Null = no cache.
     */
    cache::TranscodeCache *cache = nullptr;
    /**
     * Route every segment through the wire: serialize the SegmentJob
     * and execute the *deserialized* copy. Proves the message carries
     * everything a remote worker needs (tests assert the stitched
     * outputs stay byte-identical with this on).
     */
    bool wire_loopback = false;
    /// Keep each stitched delivery stream in ServiceResult::outputs
    /// (key "<request>.<rung>") for byte-identity tests.
    bool collect_outputs = false;
    /**
     * Execution seam override (service/executor.h). When set, every
     * segment is submitted here instead of the built-in pool; the
     * caller owns it and it must outlive run(). Null picks the
     * built-in executor from VBENCH_WORKERS: the in-process scheduler
     * pool (local, the default) or an rpc::RemotePool of fork/exec'd
     * vbench_worker children (proc, docs/RPC.md). Streams are
     * executor-invariant — byte-identical either way.
     */
    SegmentExecutor *executor = nullptr;
};

/** What a service run produced. */
struct ServiceResult {
    SlaReport sla;
    uint64_t admitted = 0;
    uint64_t dropped = 0;          ///< requests shed at admission
    uint64_t completed = 0;        ///< requests with all segments done
    uint64_t failed_requests = 0;  ///< completed but ≥1 segment failed
    uint64_t stitched_rungs = 0;   ///< rungs whose segments stitched
    uint64_t stitch_failures = 0;
    double wall_seconds = 0;
    /// Sampled gauge time series for the run (empty when telemetry is
    /// disabled). Every gauge carries at least one point: the sampler
    /// takes a final synchronous sample after the run drains.
    std::vector<obs::TelemetrySeries> telemetry;
    /// Per-type fleet rollup (empty without a fleet).
    std::vector<fleet::TypeUsage> fleet_usage;
    /// Total modeled fleet dollars (0 without a fleet).
    double fleet_cost_dollars = 0;
    /// Output-cache snapshot at run end (all-zero without a cache);
    /// the SlaReport cache_* rollup mirrors the headline numbers.
    cache::CacheStats cache_stats;
    /// Stitched delivery streams when ServiceConfig::collect_outputs.
    std::map<std::string, codec::ByteBuffer> outputs;
};

/**
 * The service. Owns nothing between runs; run() spins up a scheduler
 * pool, plays the workload in real time, and tears down.
 */
class TranscodeService
{
  public:
    TranscodeService(const ServiceConfig &config, const Corpus &corpus);

    /**
     * Play a timed workload (sorted or not — it is sorted by arrival
     * internally) against the wall clock and return the scorecard.
     * Emits per-scenario run reports (VBENCH_METRICS_OUT) and exports
     * metrics into ServiceConfig::metrics before returning.
     */
    ServiceResult run(const std::vector<ServiceRequest> &workload);

  private:
    ServiceConfig config_;
    const Corpus &corpus_;
};

} // namespace vbench::service
