#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <atomic>

#include "codec/stitch.h"
#include "core/runtime_config.h"
#include "core/transcoder.h"
#include "fleet/fleet.h"
#include "ngc/ngc_bitstream.h"
#include "obs/clock.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "core/report.h"
#include "rpc/remote_pool.h"
#include "sched/frame_threads.h"
#include "sched/scheduler.h"
#include "service/admission.h"
#include "service/executor.h"
#include "service/segment_job.h"
#include "video/video.h"

namespace vbench::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Rate-control modes whose controller state crosses segment
 * boundaries. Chained rungs submit segment k+1 only after segment k
 * returned its RcSnapshot; constant-quality rungs fan out at once.
 */
bool
isChained(const core::TranscodeRequest &request)
{
    return request.rc.mode == codec::RcMode::Abr ||
        request.rc.mode == codec::RcMode::TwoPass;
}

std::optional<codec::ByteBuffer>
stitchForKind(core::EncoderKind kind,
              std::vector<codec::ByteBuffer> streams)
{
    switch (kind) {
      case core::EncoderKind::Vbc:
        return codec::stitchStreams(streams);
      case core::EncoderKind::NgcHevc:
      case core::EncoderKind::NgcVp9:
        return ngc::stitchNgcStreams(streams);
      default:
        // Hardware model backends are driven per whole request; the
        // single stream passes through unstitched.
        if (streams.size() == 1)
            return std::move(streams[0]);
        return std::nullopt;
    }
}

/**
 * The in-process side of the execution seam: the sched::Scheduler
 * pool behind the SegmentExecutor interface. This is the default and
 * the behavior every earlier PR shipped — VBENCH_WORKERS=proc swaps
 * in rpc::RemotePool without the dispatcher noticing.
 */
class LocalExecutor final : public SegmentExecutor
{
  public:
    explicit LocalExecutor(const sched::SchedulerConfig &config)
        : scheduler_(config)
    {
    }

    sched::JobHandle
    submit(SegmentJob job,
           std::shared_ptr<const video::Video> original) override
    {
        return scheduler_.submit(
            toTranscodeJob(std::move(job), std::move(original)));
    }

    int workers() const override { return scheduler_.workers(); }
    size_t queueCapacity() const override
    {
        return scheduler_.queueCapacity();
    }
    size_t activeJobs() const override
    {
        return sched::activeTranscodeJobs();
    }
    void drainObs() override { scheduler_.mergeObsShards(); }

  private:
    sched::Scheduler scheduler_;
};

/** One ladder rung's segment chain while the request is active. */
struct RungRun {
    std::string name;
    core::TranscodeRequest tmpl;
    bool chained = false;
    int next_submit = 0;  ///< first segment not yet submitted
    int done = 0;         ///< segments completed
    bool failed = false;  ///< any segment transcode failed
    std::optional<codec::RcSnapshot> carry;
    std::vector<codec::ByteBuffer> streams;  ///< by segment
    std::vector<sched::JobHandle> handles;   ///< by segment
    std::vector<double> avail;  ///< availability time per segment
    std::vector<std::string> labels;         ///< job label per segment
    /// Per-segment span (child of the request root), set at submit.
    std::vector<obs::SpanContext> seg_spans;
    /// Per-segment fleet booking (invalid tickets without a fleet).
    std::vector<fleet::Ticket> tickets;
    /// Availability on the monotonic ns clock (the critical-path and
    /// latency origin, so components decompose without residue).
    std::vector<uint64_t> avail_ns;
    /// Per-segment cache key, remembered at submit so the collect loop
    /// can offer the encoded miss back (key_valid gates entries — a
    /// segment that hit, or ran without a cache, has none).
    std::vector<cache::CacheKey> keys;
    std::vector<uint8_t> key_valid;
};

/** A request between admission and completion. */
struct ActiveRequest {
    const ServiceRequest *req = nullptr;
    int segments = 0;
    std::vector<RungRun> rungs;
    obs::SpanContext span;   ///< the request's trace root
    uint64_t offer_ns = 0;   ///< when the request entered admission
};

} // namespace

TranscodeService::TranscodeService(const ServiceConfig &config,
                                   const Corpus &corpus)
    : config_(config), corpus_(corpus)
{
}

ServiceResult
TranscodeService::run(const std::vector<ServiceRequest> &workload)
{
    ServiceResult out;

    std::vector<const ServiceRequest *> pending;
    std::map<uint64_t, const ServiceRequest *> by_id;
    for (const ServiceRequest &req : workload) {
        if (req.clip >= corpus_.clips.size() || req.rungs.empty())
            continue;
        pending.push_back(&req);
        by_id[req.id] = &req;
    }
    std::sort(pending.begin(), pending.end(),
              [](const ServiceRequest *a, const ServiceRequest *b) {
                  return a->arrival_s != b->arrival_s
                      ? a->arrival_s < b->arrival_s
                      : a->id < b->id;
              });

    // One trace sink for the whole run: request span trees recorded
    // here, and the scheduler merges its per-worker timelines (encode
    // slices, flow ends) into the same tracer so the tree connects.
    obs::Tracer *tracer =
        config_.tracer ? config_.tracer : obs::globalTracer();

    // The execution seam (service/executor.h, docs/RPC.md): the
    // dispatcher submits SegmentJobs and collects JobHandles; WHERE a
    // segment encodes is the executor's business. A caller-supplied
    // executor wins; otherwise VBENCH_WORKERS picks the in-process
    // scheduler pool (local, default) or a pool of fork/exec'd
    // vbench_worker child processes (proc).
    std::unique_ptr<SegmentExecutor> owned_exec;
    SegmentExecutor *exec = config_.executor;
    if (exec == nullptr) {
        const core::RuntimeConfig rt = core::freshRuntimeConfig();
        if (rt.workers_mode == "proc") {
            rpc::RemotePoolConfig rpc_config;
            rpc_config.workers = config_.workers;
            rpc_config.worker_binary = rt.worker_bin;
            rpc_config.timeout_ms = rt.rpc_timeout_ms;
            rpc_config.retries = rt.rpc_retries;
            rpc_config.hedge_pct = rt.hedge_pct;
            rpc_config.tracer = tracer;
            owned_exec =
                std::make_unique<rpc::RemotePool>(std::move(rpc_config));
        } else {
            sched::SchedulerConfig sched_config;
            sched_config.workers = config_.workers;
            sched_config.queue_capacity = config_.queue_capacity;
            sched_config.merge_metrics = config_.metrics;
            sched_config.merge_tracer = config_.tracer;
            owned_exec = std::make_unique<LocalExecutor>(sched_config);
        }
        exec = owned_exec.get();
    }

    // Keep submitted-but-unfinished jobs under workers + queue slots so
    // submit() never blocks the dispatcher.
    const size_t inflight_cap = static_cast<size_t>(exec->workers()) +
        exec->queueCapacity();
    const size_t max_active = config_.max_active_requests > 0
        ? config_.max_active_requests
        : static_cast<size_t>(exec->workers()) + 2;

    // The modeled heterogeneous fleet (docs/FLEET.md): placements and
    // dollar accounting only — execution stays on the local pool.
    std::optional<fleet::Fleet> fleet;
    if (config_.fleet != nullptr &&
        fleet::validateFleetConfig(*config_.fleet).empty()) {
        fleet.emplace(*config_.fleet, config_.fleet_model
                          ? *config_.fleet_model
                          : fleet::PerfModel{});
        if (tracer) {
            int fw = 0;
            for (const fleet::WorkerTypeSpec &t :
                 config_.fleet->types)
                for (int i = 0; i < t.count; ++i, ++fw)
                    tracer->nameRow(
                        obs::fleetTid(fw),
                        "fleet " + t.name + " #" + std::to_string(i));
        }
    }

    AdmissionQueue admission(config_.admission_capacity);
    SlaScorer scorer;
    std::map<uint64_t, ActiveRequest> active;
    /// Admitted requests not yet dispatched: root span + offer time
    /// (moved into the ActiveRequest when admission.poll() picks them).
    std::map<uint64_t, std::pair<obs::SpanContext, uint64_t>> queued;

    // Jobs submitted to the scheduler and not yet collected. Atomic
    // because the telemetry sampler reads it from its own thread.
    std::atomic<size_t> inflight{0};

    // Live telemetry: gauge probes snapshotted on a background thread
    // while the dispatcher plays the workload. Every probe reads
    // thread-safe state only (the admission queue's own lock, atomics,
    // the metrics registry's lock).
    obs::MetricsRegistry *gauge_metrics = config_.metrics
        ? config_.metrics
        : (obs::metricsEnabled() ? &obs::globalMetrics() : nullptr);
    obs::TelemetrySampler::Config tele_config;
    if (config_.telemetry_interval_s > 0)
        tele_config.interval_s = config_.telemetry_interval_s;
    obs::TelemetrySampler sampler(tele_config);
    if (config_.enable_telemetry) {
        sampler.addGauge("service.queue_depth", [&admission] {
            return static_cast<double>(admission.size());
        });
        sampler.addGauge("service.inflight_jobs", [&inflight] {
            return static_cast<double>(
                inflight.load(std::memory_order_relaxed));
        });
        const int workers = exec->workers();
        sampler.addGauge("service.worker_utilization", [exec, workers] {
            return static_cast<double>(exec->activeJobs()) /
                static_cast<double>(workers > 0 ? workers : 1);
        });
        if (exec->remote()) {
            // Child-process pool health (stats() is a thread-safe
            // snapshot; mutex-guarded like every other gauge source).
            sampler.addGauge("service.rpc.workers_alive", [exec] {
                const ExecutorStats s = exec->stats();
                double alive = 0;
                for (const ExecutorWorkerInfo &w : s.workers)
                    alive += w.alive ? 1 : 0;
                return alive;
            });
            sampler.addGauge("service.rpc.inflight", [exec] {
                return static_cast<double>(exec->activeJobs());
            });
        }
        sampler.addGauge("service.shed_requests", [&admission] {
            return static_cast<double>(admission.shed());
        });
        // Worker shards merge at the end of the run, so this gauge is
        // authoritative at the final stop() sample and a lower bound
        // while jobs are still in flight.
        sampler.addGauge("service.frame_threads_clamped",
                         [gauge_metrics] {
                             return gauge_metrics
                                 ? static_cast<double>(
                                       gauge_metrics
                                           ->counter("encode.frame_"
                                                     "threads_clamped")
                                           .value())
                                 : 0.0;
                         });
        if (config_.cache) {
            // Output-cache gauges (mutex-guarded accessors, safe from
            // the sampler thread). Like every service gauge, the final
            // synchronous stop() sample lands after the run drains, so
            // the last point is the run's authoritative value.
            cache::TranscodeCache *tc = config_.cache;
            sampler.addGauge("service.cache_hit_rate", [tc] {
                return tc->hitRate();
            });
            sampler.addGauge("service.cache_resident_bytes", [tc] {
                return static_cast<double>(tc->residentBytes());
            });
        }
        if (fleet) {
            // Per-type modeled busy fraction, sampled on the fleet's
            // own clock (mutex-guarded, safe from the sampler thread).
            const double fleet_t0 = obs::nowSeconds();
            for (size_t t = 0; t < fleet->config().types.size(); ++t)
                sampler.addGauge(
                    "fleet.util." + fleet->config().types[t].name,
                    [&f = *fleet, t, fleet_t0] {
                        const std::vector<double> util =
                            f.typeUtilization(obs::nowSeconds() -
                                              fleet_t0);
                        return t < util.size() ? util[t] : 0.0;
                    });
        }
        sampler.start();
    }

    // Segment inputs when the corpus was pre-cut, the whole clip as a
    // single "segment" otherwise (segmenting off, or splitStream
    // declined the stream).
    const auto segInput = [](const CorpusClip &clip, int k) {
        return clip.seg_universal.empty()
            ? clip.universal
            : clip.seg_universal[static_cast<size_t>(k)];
    };
    const auto segOriginal = [](const CorpusClip &clip, int k) {
        return clip.seg_original.empty()
            ? clip.original
            : clip.seg_original[static_cast<size_t>(k)];
    };

    const uint64_t t0_ns = obs::nowNs();
    const double t0 = static_cast<double>(t0_ns) * 1e-9;
    // Workload seconds -> the shared monotonic ns clock.
    const auto toNs = [t0_ns](double service_seconds) {
        return t0_ns +
            static_cast<uint64_t>(
                std::max(0.0, service_seconds) * 1e9);
    };
    size_t next_arrival = 0;

    while (out.completed + out.dropped < pending.size()) {
        const double now = obs::nowSeconds() - t0;

        // Arrivals due by now enter the bounded admission queue; a
        // full queue sheds the request (load shedding, not blocking).
        while (next_arrival < pending.size() &&
               pending[next_arrival]->arrival_s <= now) {
            const ServiceRequest *req = pending[next_arrival++];
            scorer.recordArrival(req->scenario);
            const double deadline = req->live_paced
                ? req->arrival_s + req->segment_deadline_s
                : kInf;
            if (admission.offer(req->id, deadline)) {
                ++out.admitted;
                // Root of this request's trace tree. Minted whether or
                // not a tracer is attached, so exemplar trace ids are
                // stable; events are only recorded when tracing.
                queued[req->id] = {obs::SpanContext::newTrace(),
                                   obs::nowNs()};
                if (tracer)
                    tracer->nameRow(
                        obs::requestTid(req->id),
                        "request " + std::to_string(req->id) + " (" +
                            core::toString(req->scenario) + ")");
            } else {
                scorer.recordDrop(req->scenario);
                ++out.dropped;
            }
        }

        // Admit queued requests (earliest finite deadline first, FIFO
        // otherwise) up to the active-request cap.
        while (active.size() < max_active) {
            const std::optional<Admitted> next = admission.poll();
            if (!next)
                break;
            const ServiceRequest *req = by_id[next->key];
            const CorpusClip &clip = corpus_.clips[req->clip];
            ActiveRequest ar;
            ar.req = req;
            ar.segments = std::max(1, clip.segmentCount());
            if (const auto it = queued.find(req->id);
                it != queued.end()) {
                ar.span = it->second.first;
                ar.offer_ns = it->second.second;
                queued.erase(it);
            }
            if (tracer && ar.span.valid()) {
                // Admission wait: offer -> EDF/FIFO dispatch.
                obs::ScopeEvent wait;
                wait.name = "admission_wait";
                wait.span = ar.span.child();
                wait.tid = obs::requestTid(req->id);
                wait.start_ns = ar.offer_ns;
                wait.dur_ns = obs::nowNs() - ar.offer_ns;
                tracer->addScope(std::move(wait));
            }
            for (const RungSpec &spec : req->rungs) {
                RungRun rr;
                rr.name = spec.name;
                rr.tmpl = spec.request;
                rr.tmpl.segment_frames =
                    clip.segmentCount() > 0 ? corpus_.segment_frames : 0;
                // Pin the entropy slice count into the job description
                // now: slices change the encoded bytes, so the cache
                // key and any remote worker must see the resolved
                // value, never "read your own VBENCH_SLICES".
                if (rr.tmpl.slice_count <= 0)
                    rr.tmpl.slice_count =
                        core::freshRuntimeConfig().slices;
                rr.chained = isChained(rr.tmpl);
                rr.streams.resize(static_cast<size_t>(ar.segments));
                rr.handles.resize(static_cast<size_t>(ar.segments));
                rr.avail.resize(static_cast<size_t>(ar.segments), 0.0);
                rr.labels.resize(static_cast<size_t>(ar.segments));
                rr.seg_spans.resize(static_cast<size_t>(ar.segments));
                rr.tickets.resize(static_cast<size_t>(ar.segments));
                rr.avail_ns.resize(static_cast<size_t>(ar.segments), 0);
                rr.keys.resize(static_cast<size_t>(ar.segments));
                rr.key_valid.resize(static_cast<size_t>(ar.segments), 0);
                ar.rungs.push_back(std::move(rr));
            }
            active.emplace(req->id, std::move(ar));
        }

        // Submit every segment that is ready: chained rungs wait for
        // the previous segment's RcSnapshot, Live requests wait for
        // the segment to exist (the stream is still being produced).
        for (auto &[id, ar] : active) {
            const ServiceRequest &req = *ar.req;
            const CorpusClip &clip = corpus_.clips[req.clip];
            const double seg_duration = clip.segmentCount() > 0
                ? corpus_.segment_frames / clip.spec.fps
                : clip.original->duration();
            for (RungRun &rr : ar.rungs) {
                while (rr.next_submit < ar.segments &&
                       inflight < inflight_cap) {
                    const int k = rr.next_submit;
                    if (rr.chained && k > rr.done)
                        break;
                    const double avail = req.live_paced
                        ? req.arrival_s + k * seg_duration
                        : req.arrival_s;
                    if (req.live_paced &&
                        obs::nowSeconds() - t0 < avail)
                        break;
                    // The wire boundary: everything a worker needs is
                    // a SegmentJob — input bytes, params, RC carry.
                    SegmentJob sj;
                    sj.request_id = req.id;
                    sj.rung = rr.name;
                    sj.segment_index = k;
                    sj.scenario = req.scenario;
                    sj.input = *segInput(clip, k);
                    sj.params = rr.tmpl;
                    if (rr.chained && k > 0)
                        sj.params.rc_in = rr.carry;
                    // One child span per segment: the scheduler hangs
                    // the worker-side encode slice and the flow-arrow
                    // end off it (sched::Scheduler::runJob).
                    sj.params.span = ar.span.valid()
                        ? ar.span.child()
                        : obs::SpanContext{};
                    if (config_.wire_loopback) {
                        // Remote-worker path, in-process: execute the
                        // *deserialized* copy of the message.
                        std::string wire_error;
                        std::optional<SegmentJob> round =
                            SegmentJob::deserialize(sj.serialize(),
                                                    &wire_error);
                        if (round)
                            sj = std::move(*round);
                        else
                            std::fprintf(stderr,
                                         "vbench: wire loopback "
                                         "failed: %s\n",
                                         wire_error.c_str());
                    }
                    rr.labels[static_cast<size_t>(k)] = sj.label();
                    rr.seg_spans[static_cast<size_t>(k)] =
                        sj.params.span;
                    rr.avail[static_cast<size_t>(k)] = avail;
                    rr.avail_ns[static_cast<size_t>(k)] = toNs(avail);
                    // Output cache (docs/CACHE.md): probe the canonical
                    // transcode identity before booking any compute. A
                    // hit completes the segment right here — stream and
                    // RC out-state byte-identical to a fresh encode —
                    // so a chained rung's next segment can submit in
                    // this same pass. pass_one stats are host-local and
                    // uncacheable (never set on service jobs; guarded
                    // anyway).
                    if (config_.cache &&
                        sj.params.pass_one == nullptr) {
                        const size_t sk = static_cast<size_t>(k);
                        const cache::CacheKey key = sj.cacheKey();
                        std::optional<cache::CachedSegment> got =
                            config_.cache->lookup(
                                key, obs::nowSeconds() - t0);
                        if (got) {
                            const uint64_t seg_avail_ns =
                                rr.avail_ns[sk];
                            const uint64_t end_ns = obs::nowNs();
                            const double done_at =
                                static_cast<double>(end_ns - t0_ns) *
                                1e-9;
                            const double latency =
                                end_ns > seg_avail_ns
                                ? static_cast<double>(end_ns -
                                                      seg_avail_ns) *
                                    1e-9
                                : 0.0;
                            const bool hit = req.live_paced
                                ? latency <= req.segment_deadline_s
                                : done_at <= req.arrival_s +
                                    req.request_deadline_s;
                            // No queue, no encode: the whole latency
                            // is pre-dispatch wait, so the critical
                            // path stays a clean decomposition.
                            obs::CriticalPath cp;
                            cp.rc_chain_ms = latency * 1e3;
                            scorer.recordSegment(
                                req.scenario, latency, hit,
                                segOriginal(clip, k)->totalPixels(),
                                true, rr.seg_spans[sk].trace_id, cp,
                                rr.labels[sk], 0.0, got->psnr_db,
                                /*cache_hit=*/true);
                            if (tracer && rr.seg_spans[sk].valid()) {
                                const obs::SpanContext &seg =
                                    rr.seg_spans[sk];
                                const int32_t rtid =
                                    obs::requestTid(req.id);
                                const uint64_t dur_ns =
                                    end_ns > seg_avail_ns
                                    ? end_ns - seg_avail_ns
                                    : 0;
                                obs::ScopeEvent scope;
                                scope.name = "segment " + rr.name +
                                    ".s" + std::to_string(k);
                                scope.span = seg;
                                scope.tid = rtid;
                                scope.start_ns = seg_avail_ns;
                                scope.dur_ns = dur_ns;
                                tracer->addScope(std::move(scope));
                                obs::ScopeEvent hit_scope;
                                hit_scope.name = "cache_hit " +
                                    rr.name + ".s" +
                                    std::to_string(k);
                                hit_scope.span = seg.child();
                                hit_scope.tid = rtid;
                                hit_scope.start_ns = seg_avail_ns;
                                hit_scope.dur_ns = dur_ns;
                                tracer->addScope(
                                    std::move(hit_scope));
                            }
                            rr.streams[sk] = std::move(got->stream);
                            if (rr.chained)
                                rr.carry = got->rc_out;
                            ++rr.done;
                            ++rr.next_submit;
                            continue;
                        }
                        rr.keys[sk] = key;
                        rr.key_valid[sk] = 1;
                    }
                    if (fleet) {
                        fleet::JobMeta meta;
                        meta.pixels = static_cast<double>(
                            segOriginal(clip, k)->totalPixels());
                        meta.work_scalar_s =
                            fleet->model().scalarWorkSeconds(
                                meta.pixels);
                        meta.ready_s = avail;
                        meta.deadline_s = req.live_paced
                            ? avail + req.segment_deadline_s
                            : req.arrival_s + req.request_deadline_s;
                        meta.scenario = req.scenario;
                        rr.tickets[static_cast<size_t>(k)] =
                            fleet->place(meta,
                                         obs::nowSeconds() - t0);
                    }
                    rr.handles[static_cast<size_t>(k)] =
                        exec->submit(std::move(sj),
                                     segOriginal(clip, k));
                    ++inflight;
                    ++rr.next_submit;
                }
            }
        }

        // Collect completions and score them against the SLA.
        std::vector<uint64_t> finished;
        for (auto &[id, ar] : active) {
            const ServiceRequest &req = *ar.req;
            const CorpusClip &clip = corpus_.clips[req.clip];
            for (RungRun &rr : ar.rungs) {
                for (int k = 0; k < rr.next_submit; ++k) {
                    sched::JobHandle &handle =
                        rr.handles[static_cast<size_t>(k)];
                    if (!handle.valid() || !handle.finished())
                        continue;
                    const sched::JobResult &jr = handle.wait();
                    const size_t sk = static_cast<size_t>(k);
                    // Completion on the shared monotonic clock: the
                    // job's own end timestamp when it ran (exact — no
                    // dispatcher poll lag), the poll clock otherwise.
                    const uint64_t end_ns =
                        jr.end_ns ? jr.end_ns : obs::nowNs();
                    const double done_at =
                        static_cast<double>(end_ns - t0_ns) * 1e-9;
                    const uint64_t avail_ns =
                        rr.avail_ns[sk] ? rr.avail_ns[sk] : t0_ns;
                    const double latency = end_ns > avail_ns
                        ? static_cast<double>(end_ns - avail_ns) * 1e-9
                        : 0.0;
                    const bool hit = req.live_paced
                        ? latency <= req.segment_deadline_s
                        : done_at <=
                            req.arrival_s + req.request_deadline_s;
                    // Close the critical-path decomposition: the
                    // scheduler filled queue_wait and encode over
                    // [submit, end]; rc_chain is the pre-queue wait
                    // [avail, submit] (RC-carry predecessor for
                    // chained rungs, admission/dispatch delay for the
                    // rest). All on one clock, so the components tile
                    // [avail, end] — exactly the scored latency.
                    obs::CriticalPath cp = jr.outcome.critical_path;
                    cp.rc_chain_ms = jr.submit_ns > avail_ns
                        ? static_cast<double>(jr.submit_ns - avail_ns) *
                            1e-6
                        : 0.0;
                    // Settle the fleet booking against the measured
                    // encode time: the modeled worker charges what
                    // the job actually cost on its machine type.
                    double cost_dollars = 0;
                    const fleet::Ticket &ticket = rr.tickets[sk];
                    if (fleet && ticket.valid()) {
                        cost_dollars =
                            fleet->settle(ticket, jr.seconds);
                        if (tracer) {
                            obs::ScopeEvent booking;
                            booking.name = rr.labels[sk];
                            booking.span = rr.seg_spans[sk].valid()
                                ? rr.seg_spans[sk].child()
                                : obs::SpanContext{};
                            booking.tid =
                                obs::fleetTid(ticket.worker);
                            booking.start_ns = toNs(ticket.start_s);
                            booking.dur_ns = static_cast<uint64_t>(
                                std::max(0.0, ticket.exec_s) * 1e9);
                            tracer->addScope(std::move(booking));
                        }
                    }
                    scorer.recordSegment(req.scenario, latency, hit,
                                         segOriginal(clip, k)
                                             ->totalPixels(),
                                         jr.ok(),
                                         rr.seg_spans[sk].trace_id, cp,
                                         rr.labels[sk], cost_dollars,
                                         jr.outcome.m.psnr_db);
                    if (tracer && rr.seg_spans[sk].valid() &&
                        jr.end_ns) {
                        const obs::SpanContext &seg = rr.seg_spans[sk];
                        const int32_t rtid = obs::requestTid(req.id);
                        obs::ScopeEvent scope;
                        scope.name = "segment " + rr.name + ".s" +
                            std::to_string(k);
                        scope.span = seg;
                        scope.tid = rtid;
                        scope.start_ns = avail_ns;
                        scope.dur_ns = end_ns - avail_ns;
                        tracer->addScope(std::move(scope));
                        if (rr.chained && k > 0 &&
                            jr.submit_ns > avail_ns) {
                            obs::ScopeEvent chain;
                            chain.name = "rc_chain " + rr.name + ".s" +
                                std::to_string(k);
                            chain.span = seg.child();
                            chain.tid = rtid;
                            chain.start_ns = avail_ns;
                            chain.dur_ns = jr.submit_ns - avail_ns;
                            tracer->addScope(std::move(chain));
                        }
                        obs::ScopeEvent queued_scope;
                        queued_scope.name = "queued " + rr.name + ".s" +
                            std::to_string(k);
                        queued_scope.span = seg.child();
                        queued_scope.tid = rtid;
                        queued_scope.start_ns = jr.submit_ns;
                        queued_scope.dur_ns =
                            jr.start_ns > jr.submit_ns
                            ? jr.start_ns - jr.submit_ns
                            : 0;
                        tracer->addScope(std::move(queued_scope));
                        // Flow arrow: queued slice here -> encode
                        // slice on the worker row (end recorded by
                        // the scheduler at job start).
                        obs::FlowEvent flow;
                        flow.name = "dispatch";
                        flow.flow_id = seg.span_id;
                        flow.tid = rtid;
                        flow.ts_ns = jr.submit_ns;
                        flow.begin = true;
                        tracer->addFlow(std::move(flow));
                    }
                    if (jr.ok()) {
                        rr.streams[static_cast<size_t>(k)] =
                            jr.outcome.stream;
                        if (rr.chained)
                            rr.carry = jr.outcome.rc_state;
                        // Offer the encoded miss back; whether it is
                        // stored is the cache policy's dollar call.
                        if (config_.cache && rr.key_valid[sk]) {
                            cache::CachedSegment cs;
                            cs.stream = jr.outcome.stream;
                            cs.rc_out = jr.outcome.rc_state;
                            cs.psnr_db = jr.outcome.m.psnr_db;
                            cs.bitrate_bpps = jr.outcome.m.bitrate_bpps;
                            cs.speed_mpix_s = jr.outcome.m.speed_mpix_s;
                            cs.encode_seconds = jr.seconds;
                            config_.cache->insert(
                                rr.keys[sk], std::move(cs),
                                obs::nowSeconds() - t0);
                        }
                    } else {
                        rr.failed = true;
                        // Unblock the chain: later segments start
                        // fresh rather than never running.
                        if (rr.chained)
                            rr.carry.reset();
                    }
                    handle = sched::JobHandle();
                    ++rr.done;
                    --inflight;
                }
            }

            bool all_done = true;
            for (const RungRun &rr : ar.rungs)
                all_done = all_done && rr.done == ar.segments;
            if (!all_done)
                continue;

            bool any_failed = false;
            for (RungRun &rr : ar.rungs) {
                if (rr.failed) {
                    any_failed = true;
                    ++out.stitch_failures;
                    continue;
                }
                const uint64_t stitch_start = obs::nowNs();
                std::optional<codec::ByteBuffer> delivery =
                    stitchForKind(rr.tmpl.kind, std::move(rr.streams));
                const bool stitched = delivery.has_value();
                const uint64_t stitch_end = obs::nowNs();
                if (stitched && config_.collect_outputs)
                    out.outputs.emplace(
                        std::to_string(req.id) + "." + rr.name,
                        std::move(*delivery));
                scorer.recordStitch(
                    req.scenario,
                    static_cast<double>(stitch_end - stitch_start) *
                        1e-6);
                if (tracer && ar.span.valid()) {
                    obs::ScopeEvent scope;
                    scope.name = "stitch " + rr.name;
                    scope.span = ar.span.child();
                    scope.tid = obs::requestTid(req.id);
                    scope.start_ns = stitch_start;
                    scope.dur_ns = stitch_end - stitch_start;
                    tracer->addScope(std::move(scope));
                }
                if (stitched)
                    ++out.stitched_rungs;
                else
                    ++out.stitch_failures;
            }
            if (any_failed)
                ++out.failed_requests;
            ++out.completed;
            if (tracer && ar.span.valid()) {
                // The request's root slice: arrival through the last
                // stitch. Everything above (admission_wait, segments,
                // rc_chain/queued, stitches) nests inside it, and the
                // worker-side encode slices connect by parent span id
                // and the dispatch flow arrows.
                const uint64_t arrival_ns = toNs(req.arrival_s);
                const uint64_t done_ns = obs::nowNs();
                obs::ScopeEvent root;
                root.name = "request " + std::to_string(req.id);
                root.span = ar.span;
                root.tid = obs::requestTid(req.id);
                root.start_ns = arrival_ns;
                root.dur_ns =
                    done_ns > arrival_ns ? done_ns - arrival_ns : 0;
                tracer->addScope(std::move(root));
            }
            finished.push_back(id);
        }
        for (uint64_t id : finished)
            active.erase(id);

        if (finished.empty())
            std::this_thread::sleep_for(std::chrono::duration<double>(
                config_.poll_interval_s));
    }

    out.wall_seconds = obs::nowSeconds() - t0;
    // Merge worker shards before the sampler's final synchronous
    // sample so gauges fed by merged counters (frame-thread clamps)
    // end on the authoritative value.
    exec->drainObs();
    sampler.stop();
    out.telemetry = sampler.snapshot();
    out.sla = scorer.report(out.wall_seconds);
    if (config_.cache) {
        // Snapshot with rent accrued through the end of the run; the
        // SlaReport rollup mirrors the headline numbers so scorecards
        // and benches read one struct.
        out.cache_stats = config_.cache->stats(out.wall_seconds);
        const cache::CacheStats &cs = out.cache_stats;
        out.sla.cache_enabled = true;
        out.sla.cache_hits = cs.hits;
        out.sla.cache_misses = cs.misses;
        out.sla.cache_hit_rate = cs.hitRate();
        out.sla.cache_resident_bytes = cs.resident_bytes;
        out.sla.cache_storage_dollars = cs.storage_dollars;
        out.sla.cache_compute_dollars = cs.compute_dollars;
        out.sla.cache_saved_dollars = cs.saved_dollars;
        out.sla.cache_total_dollars = cs.totalDollars();
    }
    if (gauge_metrics)
        scorer.exportMetrics(*gauge_metrics);
    if (config_.cache && gauge_metrics) {
        const cache::CacheStats &cs = out.cache_stats;
        gauge_metrics->counter("service.cache.lookups").add(cs.lookups);
        gauge_metrics->counter("service.cache.hits").add(cs.hits);
        gauge_metrics->counter("service.cache.misses").add(cs.misses);
        gauge_metrics->counter("service.cache.inserts").add(cs.inserts);
        gauge_metrics->counter("service.cache.admitted")
            .add(cs.admitted);
        gauge_metrics->counter("service.cache.rejected")
            .add(cs.rejected);
        gauge_metrics->counter("service.cache.evictions")
            .add(cs.evictions);
        gauge_metrics->counter("service.cache.resident_bytes")
            .add(cs.resident_bytes);
        // Counters are integral; dollars export at micro-dollar
        // resolution (same convention as service.cost_microdollars).
        gauge_metrics->counter("service.cache.storage_microdollars")
            .add(static_cast<uint64_t>(cs.storage_dollars * 1e6));
        gauge_metrics->counter("service.cache.compute_microdollars")
            .add(static_cast<uint64_t>(cs.compute_dollars * 1e6));
        gauge_metrics->counter("service.cache.saved_microdollars")
            .add(static_cast<uint64_t>(cs.saved_dollars * 1e6));
    }
    scorer.emitRunReports(out.sla);
    if (fleet) {
        out.fleet_usage = fleet->typeUsage();
        out.fleet_cost_dollars = fleet->totalCost();
        core::RunReport fr;
        fr.label = "service.fleet";
        fr.backend = "service";
        fr.seconds = out.wall_seconds;
        fr.extra.emplace_back(
            "workers", static_cast<double>(fleet->workerCount()));
        fr.extra.emplace_back(
            "types",
            static_cast<double>(fleet->config().types.size()));
        fr.extra.emplace_back("total_cost_dollars",
                              out.fleet_cost_dollars);
        for (const fleet::TypeUsage &u : out.fleet_usage) {
            fr.extra.emplace_back(u.name + ".count",
                                  static_cast<double>(u.count));
            fr.extra.emplace_back(u.name + ".jobs",
                                  static_cast<double>(u.jobs));
            fr.extra.emplace_back(u.name + ".busy_s", u.busy_seconds);
            fr.extra.emplace_back(u.name + ".cost_dollars",
                                  u.cost_dollars);
            fr.extra.emplace_back(
                u.name + ".util",
                u.count > 0 && out.wall_seconds > 0
                    ? u.busy_seconds /
                        (static_cast<double>(u.count) *
                         out.wall_seconds)
                    : 0.0);
        }
        fr.extra_str.emplace_back(
            "topology",
            fleet::formatFleetSpec(fleet->config().types));
        fr.extra_str.emplace_back(
            "policy", fleet::policyName(fleet->config().policy));
        fr.extra_str.emplace_back("model", fleet->model().source);
        core::emitRunReport(fr);
    }
    if (exec->remote()) {
        // The rpc supervision scorecard (docs/RPC.md): counters into
        // the metrics sink (service.rpc.* — the bench smoke gate and
        // the prom snapshot read these) and a service.rpc run report
        // with one pid/tier/jobs/respawns row per child worker slot
        // (obs_lint --require-rpc schema-checks it).
        const ExecutorStats rs = exec->stats();
        if (gauge_metrics) {
            obs::MetricsRegistry &m = *gauge_metrics;
            m.counter("service.rpc.dispatched").add(rs.dispatched);
            m.counter("service.rpc.completed").add(rs.completed);
            m.counter("service.rpc.retries").add(rs.retries);
            m.counter("service.rpc.respawns").add(rs.respawns);
            m.counter("service.rpc.worker_deaths")
                .add(rs.worker_deaths);
            m.counter("service.rpc.timeouts").add(rs.timeouts);
            m.counter("service.rpc.protocol_errors")
                .add(rs.protocol_errors);
            m.counter("service.rpc.hedges").add(rs.hedges);
            m.counter("service.rpc.hedge_wins").add(rs.hedge_wins);
            m.counter("service.rpc.hedge_losses")
                .add(rs.hedge_losses);
            m.counter("service.rpc.degraded_local")
                .add(rs.degraded_local);
            m.counter("service.rpc.kills_injected")
                .add(rs.kills_injected);
        }
        core::RunReport rr;
        rr.label = "service.rpc";
        rr.backend = "service";
        rr.seconds = out.wall_seconds;
        rr.extra.emplace_back(
            "workers", static_cast<double>(rs.workers.size()));
        rr.extra.emplace_back("dispatched",
                              static_cast<double>(rs.dispatched));
        rr.extra.emplace_back("completed",
                              static_cast<double>(rs.completed));
        rr.extra.emplace_back("retries",
                              static_cast<double>(rs.retries));
        rr.extra.emplace_back("respawns",
                              static_cast<double>(rs.respawns));
        rr.extra.emplace_back(
            "worker_deaths", static_cast<double>(rs.worker_deaths));
        rr.extra.emplace_back("timeouts",
                              static_cast<double>(rs.timeouts));
        rr.extra.emplace_back(
            "protocol_errors",
            static_cast<double>(rs.protocol_errors));
        rr.extra.emplace_back("hedges",
                              static_cast<double>(rs.hedges));
        rr.extra.emplace_back("hedge_wins",
                              static_cast<double>(rs.hedge_wins));
        rr.extra.emplace_back("hedge_losses",
                              static_cast<double>(rs.hedge_losses));
        rr.extra.emplace_back(
            "degraded_local", static_cast<double>(rs.degraded_local));
        rr.extra.emplace_back(
            "kills_injected", static_cast<double>(rs.kills_injected));
        for (size_t w = 0; w < rs.workers.size(); ++w) {
            const ExecutorWorkerInfo &wi = rs.workers[w];
            const std::string prefix = "w" + std::to_string(w);
            rr.extra.emplace_back(prefix + ".pid",
                                  static_cast<double>(wi.pid));
            rr.extra.emplace_back(prefix + ".jobs",
                                  static_cast<double>(wi.jobs));
            rr.extra.emplace_back(prefix + ".respawns",
                                  static_cast<double>(wi.respawns));
            rr.extra.emplace_back(prefix + ".alive",
                                  wi.alive ? 1.0 : 0.0);
            rr.extra_str.emplace_back(prefix + ".tier", wi.tier);
        }
        core::emitRunReport(rr);
    }
    if (config_.cache) {
        const cache::CacheStats &cs = out.cache_stats;
        core::RunReport cr;
        cr.label = "service.cache";
        cr.backend = "service";
        cr.seconds = out.wall_seconds;
        cr.extra.emplace_back("lookups",
                              static_cast<double>(cs.lookups));
        cr.extra.emplace_back("hits", static_cast<double>(cs.hits));
        cr.extra.emplace_back("misses",
                              static_cast<double>(cs.misses));
        cr.extra.emplace_back("hit_rate", cs.hitRate());
        cr.extra.emplace_back("inserts",
                              static_cast<double>(cs.inserts));
        cr.extra.emplace_back("admitted",
                              static_cast<double>(cs.admitted));
        cr.extra.emplace_back("rejected",
                              static_cast<double>(cs.rejected));
        cr.extra.emplace_back("evictions",
                              static_cast<double>(cs.evictions));
        cr.extra.emplace_back(
            "resident_entries",
            static_cast<double>(cs.resident_entries));
        cr.extra.emplace_back("resident_bytes",
                              static_cast<double>(cs.resident_bytes));
        cr.extra.emplace_back(
            "capacity_bytes",
            static_cast<double>(
                config_.cache->config().capacity_bytes));
        cr.extra.emplace_back("storage_dollars", cs.storage_dollars);
        cr.extra.emplace_back("compute_dollars", cs.compute_dollars);
        cr.extra.emplace_back("saved_dollars", cs.saved_dollars);
        cr.extra.emplace_back("total_dollars", cs.totalDollars());
        cr.extra_str.emplace_back(
            "policy",
            cache::policyName(config_.cache->config().policy));
        core::emitRunReport(cr);
    }
    if (!out.telemetry.empty()) {
        core::RunReport tr;
        tr.label = "service.telemetry";
        tr.backend = "service";
        tr.seconds = out.wall_seconds;
        tr.extra.emplace_back("ticks",
                              static_cast<double>(sampler.tickCount()));
        for (const obs::TelemetrySeries &s : out.telemetry) {
            tr.extra.emplace_back(
                s.name + ".points",
                static_cast<double>(s.points.size()));
            tr.extra.emplace_back(s.name + ".last", s.last());
            tr.extra.emplace_back(s.name + ".max", s.max());
            tr.extra.emplace_back(s.name + ".mean", s.mean());
        }
        core::emitRunReport(tr);
    }
    // Prometheus/OpenMetrics snapshot (VBENCH_PROM_OUT): counters and
    // histograms from the metrics sink plus the latest gauge samples.
    if (obs::promEnabled() &&
        obs::writePromFile(obs::config().prom_path, gauge_metrics,
                           config_.enable_telemetry ? &sampler
                                                    : nullptr))
        obs::markPromWritten();
    return out;
}

} // namespace vbench::service
