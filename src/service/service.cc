#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "codec/stitch.h"
#include "core/transcoder.h"
#include "ngc/ngc_bitstream.h"
#include "obs/clock.h"
#include "sched/scheduler.h"
#include "service/admission.h"
#include "video/video.h"

namespace vbench::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Rate-control modes whose controller state crosses segment
 * boundaries. Chained rungs submit segment k+1 only after segment k
 * returned its RcSnapshot; constant-quality rungs fan out at once.
 */
bool
isChained(const core::TranscodeRequest &request)
{
    return request.rc.mode == codec::RcMode::Abr ||
        request.rc.mode == codec::RcMode::TwoPass;
}

std::optional<codec::ByteBuffer>
stitchForKind(core::EncoderKind kind,
              std::vector<codec::ByteBuffer> streams)
{
    switch (kind) {
      case core::EncoderKind::Vbc:
        return codec::stitchStreams(streams);
      case core::EncoderKind::NgcHevc:
      case core::EncoderKind::NgcVp9:
        return ngc::stitchNgcStreams(streams);
      default:
        // Hardware model backends are driven per whole request; the
        // single stream passes through unstitched.
        if (streams.size() == 1)
            return std::move(streams[0]);
        return std::nullopt;
    }
}

/** One ladder rung's segment chain while the request is active. */
struct RungRun {
    std::string name;
    core::TranscodeRequest tmpl;
    bool chained = false;
    int next_submit = 0;  ///< first segment not yet submitted
    int done = 0;         ///< segments completed
    bool failed = false;  ///< any segment transcode failed
    std::optional<codec::RcSnapshot> carry;
    std::vector<codec::ByteBuffer> streams;  ///< by segment
    std::vector<sched::JobHandle> handles;   ///< by segment
    std::vector<double> avail;  ///< availability time per segment
};

/** A request between admission and completion. */
struct ActiveRequest {
    const ServiceRequest *req = nullptr;
    int segments = 0;
    std::vector<RungRun> rungs;
};

} // namespace

TranscodeService::TranscodeService(const ServiceConfig &config,
                                   const Corpus &corpus)
    : config_(config), corpus_(corpus)
{
}

ServiceResult
TranscodeService::run(const std::vector<ServiceRequest> &workload)
{
    ServiceResult out;

    std::vector<const ServiceRequest *> pending;
    std::map<uint64_t, const ServiceRequest *> by_id;
    for (const ServiceRequest &req : workload) {
        if (req.clip >= corpus_.clips.size() || req.rungs.empty())
            continue;
        pending.push_back(&req);
        by_id[req.id] = &req;
    }
    std::sort(pending.begin(), pending.end(),
              [](const ServiceRequest *a, const ServiceRequest *b) {
                  return a->arrival_s != b->arrival_s
                      ? a->arrival_s < b->arrival_s
                      : a->id < b->id;
              });

    sched::SchedulerConfig sched_config;
    sched_config.workers = config_.workers;
    sched_config.queue_capacity = config_.queue_capacity;
    sched_config.merge_metrics = config_.metrics;
    sched::Scheduler scheduler(sched_config);

    // Keep submitted-but-unfinished jobs under workers + queue slots so
    // Scheduler::submit() never blocks the dispatcher.
    const size_t inflight_cap = static_cast<size_t>(scheduler.workers()) +
        scheduler.queueCapacity();
    const size_t max_active = config_.max_active_requests > 0
        ? config_.max_active_requests
        : static_cast<size_t>(scheduler.workers()) + 2;

    AdmissionQueue admission(config_.admission_capacity);
    SlaScorer scorer;
    std::map<uint64_t, ActiveRequest> active;

    // Segment inputs when the corpus was pre-cut, the whole clip as a
    // single "segment" otherwise (segmenting off, or splitStream
    // declined the stream).
    const auto segInput = [](const CorpusClip &clip, int k) {
        return clip.seg_universal.empty()
            ? clip.universal
            : clip.seg_universal[static_cast<size_t>(k)];
    };
    const auto segOriginal = [](const CorpusClip &clip, int k) {
        return clip.seg_original.empty()
            ? clip.original
            : clip.seg_original[static_cast<size_t>(k)];
    };

    const double t0 = obs::nowSeconds();
    size_t next_arrival = 0;
    size_t inflight = 0;

    while (out.completed + out.dropped < pending.size()) {
        const double now = obs::nowSeconds() - t0;

        // Arrivals due by now enter the bounded admission queue; a
        // full queue sheds the request (load shedding, not blocking).
        while (next_arrival < pending.size() &&
               pending[next_arrival]->arrival_s <= now) {
            const ServiceRequest *req = pending[next_arrival++];
            scorer.recordArrival(req->scenario);
            const double deadline = req->live_paced
                ? req->arrival_s + req->segment_deadline_s
                : kInf;
            if (admission.offer(req->id, deadline)) {
                ++out.admitted;
            } else {
                scorer.recordDrop(req->scenario);
                ++out.dropped;
            }
        }

        // Admit queued requests (earliest finite deadline first, FIFO
        // otherwise) up to the active-request cap.
        while (active.size() < max_active) {
            const std::optional<Admitted> next = admission.poll();
            if (!next)
                break;
            const ServiceRequest *req = by_id[next->key];
            const CorpusClip &clip = corpus_.clips[req->clip];
            ActiveRequest ar;
            ar.req = req;
            ar.segments = std::max(1, clip.segmentCount());
            for (const RungSpec &spec : req->rungs) {
                RungRun rr;
                rr.name = spec.name;
                rr.tmpl = spec.request;
                rr.tmpl.segment_frames =
                    clip.segmentCount() > 0 ? corpus_.segment_frames : 0;
                rr.chained = isChained(rr.tmpl);
                rr.streams.resize(static_cast<size_t>(ar.segments));
                rr.handles.resize(static_cast<size_t>(ar.segments));
                rr.avail.resize(static_cast<size_t>(ar.segments), 0.0);
                ar.rungs.push_back(std::move(rr));
            }
            active.emplace(req->id, std::move(ar));
        }

        // Submit every segment that is ready: chained rungs wait for
        // the previous segment's RcSnapshot, Live requests wait for
        // the segment to exist (the stream is still being produced).
        for (auto &[id, ar] : active) {
            const ServiceRequest &req = *ar.req;
            const CorpusClip &clip = corpus_.clips[req.clip];
            const double seg_duration = clip.segmentCount() > 0
                ? corpus_.segment_frames / clip.spec.fps
                : clip.original->duration();
            for (RungRun &rr : ar.rungs) {
                while (rr.next_submit < ar.segments &&
                       inflight < inflight_cap) {
                    const int k = rr.next_submit;
                    if (rr.chained && k > rr.done)
                        break;
                    const double avail = req.live_paced
                        ? req.arrival_s + k * seg_duration
                        : req.arrival_s;
                    if (req.live_paced &&
                        obs::nowSeconds() - t0 < avail)
                        break;
                    sched::TranscodeJob job;
                    job.label = "svc." + std::to_string(req.id) + "." +
                        rr.name + ".s" + std::to_string(k);
                    job.input = segInput(clip, k);
                    job.original = segOriginal(clip, k);
                    job.request = rr.tmpl;
                    if (rr.chained && k > 0)
                        job.request.rc_in = rr.carry;
                    rr.avail[static_cast<size_t>(k)] = avail;
                    rr.handles[static_cast<size_t>(k)] =
                        scheduler.submit(std::move(job));
                    ++inflight;
                    ++rr.next_submit;
                }
            }
        }

        // Collect completions and score them against the SLA.
        std::vector<uint64_t> finished;
        for (auto &[id, ar] : active) {
            const ServiceRequest &req = *ar.req;
            const CorpusClip &clip = corpus_.clips[req.clip];
            for (RungRun &rr : ar.rungs) {
                for (int k = 0; k < rr.next_submit; ++k) {
                    sched::JobHandle &handle =
                        rr.handles[static_cast<size_t>(k)];
                    if (!handle.valid() || !handle.finished())
                        continue;
                    const sched::JobResult &jr = handle.wait();
                    const double done_at = obs::nowSeconds() - t0;
                    const double latency =
                        done_at - rr.avail[static_cast<size_t>(k)];
                    const bool hit = req.live_paced
                        ? latency <= req.segment_deadline_s
                        : done_at <=
                            req.arrival_s + req.request_deadline_s;
                    scorer.recordSegment(req.scenario, latency, hit,
                                         segOriginal(clip, k)
                                             ->totalPixels(),
                                         jr.ok());
                    if (jr.ok()) {
                        rr.streams[static_cast<size_t>(k)] =
                            jr.outcome.stream;
                        if (rr.chained)
                            rr.carry = jr.outcome.rc_state;
                    } else {
                        rr.failed = true;
                        // Unblock the chain: later segments start
                        // fresh rather than never running.
                        if (rr.chained)
                            rr.carry.reset();
                    }
                    handle = sched::JobHandle();
                    ++rr.done;
                    --inflight;
                }
            }

            bool all_done = true;
            for (const RungRun &rr : ar.rungs)
                all_done = all_done && rr.done == ar.segments;
            if (!all_done)
                continue;

            bool any_failed = false;
            for (RungRun &rr : ar.rungs) {
                if (rr.failed) {
                    any_failed = true;
                    ++out.stitch_failures;
                    continue;
                }
                if (stitchForKind(rr.tmpl.kind, std::move(rr.streams)))
                    ++out.stitched_rungs;
                else
                    ++out.stitch_failures;
            }
            if (any_failed)
                ++out.failed_requests;
            ++out.completed;
            finished.push_back(id);
        }
        for (uint64_t id : finished)
            active.erase(id);

        if (finished.empty())
            std::this_thread::sleep_for(std::chrono::duration<double>(
                config_.poll_interval_s));
    }

    out.wall_seconds = obs::nowSeconds() - t0;
    scheduler.mergeObsShards();
    out.sla = scorer.report(out.wall_seconds);
    if (config_.metrics)
        scorer.exportMetrics(*config_.metrics);
    scorer.emitRunReports(out.sla);
    return out;
}

} // namespace vbench::service
