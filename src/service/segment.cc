#include "service/segment.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "codec/stitch.h"
#include "ngc/ngc_bitstream.h"

namespace vbench::service {

std::vector<video::Video>
splitVideo(const video::Video &source, int segment_frames)
{
    std::vector<video::Video> segments;
    if (segment_frames <= 0 || source.empty())
        return segments;
    for (int begin = 0; begin < source.frameCount();
         begin += segment_frames) {
        const int end =
            std::min(begin + segment_frames, source.frameCount());
        video::Video seg(source.width(), source.height(), source.fps(),
                         source.name());
        for (int i = begin; i < end; ++i)
            seg.append(source.frame(i));
        segments.push_back(std::move(seg));
    }
    return segments;
}

SegmentedEncodeResult
encodeSegmentedVbc(const codec::EncoderConfig &base,
                   const video::Video &source, int segment_frames)
{
    SegmentedEncodeResult result;
    const std::vector<video::Video> parts =
        splitVideo(source, segment_frames);
    if (parts.empty()) {
        result.error = "no segments (empty source or segment_frames<=0)";
        return result;
    }

    codec::EncoderConfig cfg = base;
    cfg.segment_frames = segment_frames;
    cfg.rc_in.reset();
    cfg.pass_one = nullptr;

    // Two-pass exactness: pass 1 is a closed-GOP constant-QP encode,
    // so each segment's pass-1 frame bits equal the whole-file pass's
    // — concatenating them reproduces the whole-clip stat table, and
    // every segment's controller then computes the same budgets the
    // whole-file encode would.
    codec::PassOneStats whole_clip_stats;
    if (cfg.rc.mode == codec::RcMode::TwoPass) {
        whole_clip_stats.pass_qp = 30;
        for (const video::Video &part : parts) {
            const codec::PassOneStats s =
                codec::collectPassOneStats(cfg, part);
            whole_clip_stats.frame_bits.insert(
                whole_clip_stats.frame_bits.end(), s.frame_bits.begin(),
                s.frame_bits.end());
        }
        cfg.pass_one = &whole_clip_stats;
    }

    std::optional<codec::RcSnapshot> carry;
    for (const video::Video &part : parts) {
        codec::EncoderConfig seg_cfg = cfg;
        seg_cfg.rc_in = carry;
        codec::Encoder encoder(seg_cfg);
        codec::EncodeResult encoded = encoder.encode(part);
        carry = encoded.rc_state;
        result.segments.push_back(std::move(encoded.stream));
    }

    const std::optional<codec::ByteBuffer> stitched =
        codec::stitchStreams(result.segments);
    if (!stitched) {
        result.error = "segment streams did not stitch";
        return result;
    }
    result.stitched = *stitched;
    result.ok = true;
    return result;
}

SegmentedEncodeResult
encodeSegmentedNgc(const ngc::NgcConfig &base, const video::Video &source,
                   int segment_frames)
{
    SegmentedEncodeResult result;
    const std::vector<video::Video> parts =
        splitVideo(source, segment_frames);
    if (parts.empty()) {
        result.error = "no segments (empty source or segment_frames<=0)";
        return result;
    }

    ngc::NgcConfig cfg = base;
    cfg.segment_frames = segment_frames;
    cfg.rc_in.reset();
    cfg.pass_one = nullptr;

    codec::PassOneStats whole_clip_stats;
    if (cfg.rc.mode == codec::RcMode::TwoPass) {
        whole_clip_stats.pass_qp = 30;
        for (const video::Video &part : parts) {
            const codec::PassOneStats s =
                ngc::collectNgcPassOneStats(cfg, part);
            whole_clip_stats.frame_bits.insert(
                whole_clip_stats.frame_bits.end(), s.frame_bits.begin(),
                s.frame_bits.end());
        }
        cfg.pass_one = &whole_clip_stats;
    }

    std::optional<codec::RcSnapshot> carry;
    for (const video::Video &part : parts) {
        ngc::NgcConfig seg_cfg = cfg;
        seg_cfg.rc_in = carry;
        ngc::NgcEncoder encoder(seg_cfg);
        codec::EncodeResult encoded = encoder.encode(part);
        carry = encoded.rc_state;
        result.segments.push_back(std::move(encoded.stream));
    }

    const std::optional<codec::ByteBuffer> stitched =
        ngc::stitchNgcStreams(result.segments);
    if (!stitched) {
        result.error = "segment streams did not stitch";
        return result;
    }
    result.stitched = *stitched;
    result.ok = true;
    return result;
}

} // namespace vbench::service
