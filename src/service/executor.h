#pragma once

/**
 * @file
 * The dispatcher's execution seam. service.cc's submit/collect loops
 * speak this interface and nothing else about how a segment actually
 * runs: LocalExecutor (service.cc) wraps the in-process
 * sched::Scheduler pool, rpc::RemotePool routes each SegmentJob to a
 * fork/exec'd vbench_worker child (VBENCH_WORKERS=proc, docs/RPC.md).
 * Both resolve the same sched::JobHandle future, fill the same
 * JobResult fields (submit/start/end timestamps on the shared
 * monotonic clock, critical-path tiling over [submit, end], measured
 * encode seconds for fleet settlement), and record the same encode
 * scope + dispatch flow-arrow end — so placement, cost booking, cache
 * insertion, SLA scoring, and span trees are executor-invariant.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "service/segment_job.h"
#include "video/video.h"

namespace vbench::service {

/** One executor worker slot, for the service.rpc run report. */
struct ExecutorWorkerInfo {
    int64_t pid = 0;       ///< child pid (0 for in-process slots)
    std::string tier;      ///< handshake-advertised kernel ISA tier
    uint64_t jobs = 0;     ///< attempts dispatched to this slot
    uint64_t respawns = 0; ///< times the slot's child was restarted
    bool alive = false;
};

/** Counters a remote executor accumulates (all zero for local). */
struct ExecutorStats {
    bool remote = false;
    uint64_t dispatched = 0;       ///< job attempts sent to children
    uint64_t completed = 0;        ///< jobs resolved (any attempt won)
    uint64_t retries = 0;          ///< re-dispatches after infra failure
    uint64_t respawns = 0;         ///< child restarts (death or timeout)
    uint64_t worker_deaths = 0;    ///< connection lost mid-job
    uint64_t timeouts = 0;         ///< per-job deadline expiries
    uint64_t protocol_errors = 0;  ///< framing/deserialize violations
    uint64_t hedges = 0;           ///< straggler duplicates dispatched
    uint64_t hedge_wins = 0;       ///< duplicates that finished first
    uint64_t hedge_losses = 0;     ///< losing attempts discarded
    uint64_t degraded_local = 0;   ///< jobs run in-process as last resort
    uint64_t kills_injected = 0;   ///< fault-injection SIGKILLs fired
    std::vector<ExecutorWorkerInfo> workers;
};

/** Where the dispatcher sends segments to be encoded. */
class SegmentExecutor
{
  public:
    virtual ~SegmentExecutor() = default;

    /**
     * Enqueue one segment job. `original` is the host-local pristine
     * quality reference (never serialized; remote executors may ignore
     * it except for last-resort in-process degradation). The handle
     * resolves exactly like a Scheduler submit.
     */
    virtual sched::JobHandle
    submit(SegmentJob job,
           std::shared_ptr<const video::Video> original) = 0;

    virtual int workers() const = 0;
    virtual size_t queueCapacity() const = 0;
    /** Jobs submitted and not yet resolved (telemetry gauge). */
    virtual size_t activeJobs() const = 0;
    virtual bool remote() const { return false; }
    /** Thread-safe counter snapshot (service.rpc report + smoke gates). */
    virtual ExecutorStats stats() const { return {}; }
    /** Flush deferred observability (scheduler shard merge). */
    virtual void drainObs() {}
};

} // namespace vbench::service
