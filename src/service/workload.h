#pragma once

/**
 * @file
 * Service workload generation: a Zipf-popularity corpus of
 * segment-aligned clips, and an open-loop Poisson arrival process that
 * turns the five vbench scenarios (§2.3) into timed, deadline-carrying
 * service requests.
 *
 * Environment knobs (read by the bench / defaults, explicit config
 * wins): VBENCH_ARRIVAL_RATE (requests/second, float),
 * VBENCH_SEGMENT_FRAMES (frames per segment, int), and VBENCH_ZIPF_S
 * (Zipf popularity exponent, float).
 */

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "codec/types.h"
#include "core/scenario.h"
#include "core/transcoder.h"
#include "video/suite.h"
#include "video/video.h"

namespace vbench::service {

/**
 * One corpus clip, pre-segmented on both sides of the transcode: the
 * pristine frames (quality reference) and the universal-format upload
 * stream, cut at the forced IDR boundaries so each segment is an
 * independently decodable transcode input.
 */
struct CorpusClip {
    video::ClipSpec spec;
    std::shared_ptr<const video::Video> original;
    std::shared_ptr<const codec::ByteBuffer> universal;
    std::vector<std::shared_ptr<const video::Video>> seg_original;
    std::vector<std::shared_ptr<const codec::ByteBuffer>> seg_universal;

    int segmentCount() const
    {
        return static_cast<int>(seg_original.size());
    }
};

/** The service's content library. */
struct Corpus {
    std::vector<CorpusClip> clips;
    int segment_frames = 0;
};

/**
 * Synthesize the corpus: render each spec (`frames_per_clip` frames),
 * encode its universal stream with IDRs forced every `segment_frames`
 * frames, and pre-cut both representations into segments. The
 * universal segments come from codec::splitStream on the whole upload
 * — the service's ingest-side split-and-stitch, no re-encode.
 */
Corpus buildCorpus(const std::vector<video::ClipSpec> &specs,
                   int frames_per_clip, int segment_frames);

/** One transcode output the request must produce (a ladder rung). */
struct RungSpec {
    std::string name;
    core::TranscodeRequest request;
};

/** One timed service request. */
struct ServiceRequest {
    uint64_t id = 0;
    core::Scenario scenario = core::Scenario::Upload;
    size_t clip = 0;       ///< corpus index
    double arrival_s = 0;  ///< on the open-loop service clock
    /// Live pacing: segment k only becomes available at
    /// arrival_s + k * segment_duration (the stream is still being
    /// produced); other scenarios have the whole input at arrival.
    bool live_paced = false;
    /// Per-segment deadline budget after the segment's availability
    /// (Live). Infinity when unused.
    double segment_deadline_s = std::numeric_limits<double>::infinity();
    /// Whole-request deadline budget after arrival (throughput-target
    /// scenarios). Infinity when unused.
    double request_deadline_s = std::numeric_limits<double>::infinity();
    /// Output ladder: one rung for most scenarios, a multi-bitrate
    /// ladder for Popular. (The repo has no scaler, so ladder rungs
    /// vary bitrate at constant resolution — see docs/SERVICE.md.)
    std::vector<RungSpec> rungs;
};

/** Open-loop workload shape. */
struct WorkloadConfig {
    double duration_s = 4.0;  ///< arrival window length
    /// Mean arrivals/second; <= 0 falls back to VBENCH_ARRIVAL_RATE,
    /// then to 3.0.
    double arrival_rate_hz = 0;
    /// Zipf popularity exponent over corpus rank (clip order);
    /// <= 0 falls back to VBENCH_ZIPF_S, then to 1.0.
    double zipf_exponent = 0;
    uint64_t seed = 1;
    /// Scenario mix weights, indexed by core::Scenario; normalized
    /// internally.
    std::array<double, core::kNumScenarios> mix = {1, 1, 1, 1, 1};
    /// Live: segment deadline = slack × segment duration.
    double live_slack = 3.0;
    /// VoD/Platform throughput target in multiples of real time;
    /// request deadline = clip duration / target.
    double vod_throughput = 0.25;
    /// Upload: request deadline = slack × clip duration.
    double upload_slack = 10.0;
    /// Popular: request deadline = slack × clip duration (high-effort
    /// re-transcodes are batch work, but not unbounded).
    double popular_slack = 20.0;
    /// Popular ladder size (bitrate rungs per request).
    int ladder_rungs = 3;
};

/**
 * Generate the timed request sequence: Poisson arrivals (exponential
 * inter-arrival gaps), Zipf-sampled clips, mix-sampled scenarios,
 * deadlines from the per-scenario budgets above. Deterministic in the
 * seed; sorted by arrival time.
 */
std::vector<ServiceRequest> generateWorkload(const WorkloadConfig &config,
                                             const Corpus &corpus);

/**
 * VBENCH_SEGMENT_FRAMES when set, else `fallback`. Parsed through
 * core::RuntimeConfig — a malformed value fails fast instead of being
 * silently ignored.
 */
int segmentFramesFromEnv(int fallback);

/** VBENCH_ARRIVAL_RATE when set, else `fallback`. Same contract. */
double arrivalRateFromEnv(double fallback);

/** VBENCH_ZIPF_S when set, else `fallback`. Same contract. */
double zipfExponentFromEnv(double fallback);

} // namespace vbench::service
