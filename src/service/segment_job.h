#pragma once

/**
 * @file
 * The service's wire-level job boundary: one segment transcode as a
 * versioned, byte-serializable message pair. A SegmentJob carries
 * everything a worker needs — the segment's universal-format bytes,
 * the encode parameters, and the rate-control carry from the previous
 * segment of a chained rung — and a SegmentResult carries everything
 * the dispatcher needs back: the encoded stream, the controller state
 * for the next segment, and the critical-path breakdown. Nothing else
 * crosses the boundary, which is the point: a worker holding only the
 * serialized SegmentJob (a remote machine, a fleet::Worker, the local
 * scheduler) produces a byte-identical stream.
 *
 * Wire format: little-endian, fixed field order, a 4-byte magic and a
 * 2-byte version up front. Strings and byte blobs are u32
 * length-prefixed. deserialize() rejects bad magic, unknown versions,
 * truncated fields, and trailing bytes with a descriptive error —
 * never a partial message.
 *
 * Host-local members of core::TranscodeRequest (tracer/metrics/probe/
 * cancel pointers, pass_one) are NOT serialized: they are execution-
 * environment attachments, not job description. Span ids ARE carried,
 * so a remote worker's slices join the request's distributed trace.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "cache/cache.h"
#include "codec/types.h"
#include "core/scenario.h"
#include "core/transcoder.h"
#include "obs/exemplar.h"
#include "sched/scheduler.h"
#include "video/video.h"

namespace vbench::service {

/** Wire magic "VBSJ" / "VBSR" (little-endian u32) and version. */
inline constexpr uint32_t kSegmentJobMagic = 0x4A53'4256u;
inline constexpr uint32_t kSegmentResultMagic = 0x5253'4256u;
inline constexpr uint16_t kSegmentWireVersion = 2;

/**
 * One segment transcode, self-contained. The dispatcher builds one
 * per (request, rung, segment) and converts it into a scheduler job;
 * serialize() turns it into the message a remote worker would receive.
 */
struct SegmentJob {
    uint64_t request_id = 0;
    std::string rung;          ///< ladder rung name
    int32_t segment_index = 0; ///< position in the rung's chain
    core::Scenario scenario = core::Scenario::Upload;
    /// The segment's universal-format input stream.
    codec::ByteBuffer input;
    /// Encode parameters. Only the wire subset survives serialization
    /// (see file comment); params.rc_in is the RcSnapshot carry.
    core::TranscodeRequest params;

    /** Scheduler/trace label: "svc.<id>.<rung>.s<k>". */
    std::string label() const;

    /**
     * Canonical transcode identity for the output cache
     * (docs/CACHE.md): a digest over exactly the fields that determine
     * the encoded bytes — the input stream, the segment index, the
     * encode-parameter wire subset, and the rc_in carry. Identity
     * fields that do NOT affect the output are excluded on purpose, so
     * identical content hits across requests: request_id, rung display
     * name, scenario, span ids, and frame_threads (streams are
     * byte-identical at every wavefront width — tests/codec/
     * test_frame_threads.cc). slice_count IS part of the key: entropy
     * slices change the emitted bytes (reset contexts, length
     * prefixes), so each slice configuration is a distinct transcode
     * identity. Host-local pass_one stats cannot be canonicalized;
     * callers must not cache jobs that carry them.
     */
    cache::CacheKey cacheKey() const;

    codec::ByteBuffer serialize() const;

    /**
     * Parse a serialized SegmentJob. Returns nullopt and sets `error`
     * on malformed input (bad magic, version, truncation, trailing
     * bytes).
     */
    static std::optional<SegmentJob>
    deserialize(const codec::ByteBuffer &bytes, std::string *error);
};

/** What one executed SegmentJob produced, wire-serializable. */
struct SegmentResult {
    uint64_t request_id = 0;
    std::string rung;
    int32_t segment_index = 0;
    bool ok = false;
    std::string error;         ///< transcode error when !ok
    codec::ByteBuffer stream;  ///< the encoded segment
    /// Controller state after this segment — the next SegmentJob of a
    /// chained rung carries it as params.rc_in.
    codec::RcSnapshot rc_state;
    obs::CriticalPath critical_path;
    core::Measurement m;       ///< speed / bitrate / PSNR
    double seconds = 0;        ///< on-worker transcode wall clock
    int32_t frame_threads = 1; ///< effective wavefront width
    int32_t slice_count = 1;   ///< effective entropy slice count

    codec::ByteBuffer serialize() const;

    static std::optional<SegmentResult>
    deserialize(const codec::ByteBuffer &bytes, std::string *error);
};

/**
 * Execute a SegmentJob on this host. `original` supplies the pristine
 * quality reference when the caller has it (the local dispatcher
 * keeps the corpus in memory); a remote worker passes null and the
 * decoded input stands in — the encoded bytes are identical either
 * way, only the reported PSNR baseline differs.
 */
SegmentResult executeSegmentJob(const SegmentJob &job,
                                const video::Video *original = nullptr);

/**
 * Convert a SegmentJob into the scheduler's in-memory job form. The
 * dispatcher's path to the local pool: SegmentJob -> TranscodeJob ->
 * sched::Scheduler::submit. `original` is the host-local quality
 * reference (not part of the wire message).
 */
sched::TranscodeJob
toTranscodeJob(SegmentJob job,
               std::shared_ptr<const video::Video> original);

} // namespace vbench::service
