#include "service/sla.h"

#include <cmath>
#include <string>

#include "core/report.h"

namespace vbench::service {

namespace {

uint64_t
toMicros(double seconds)
{
    return seconds <= 0
        ? 0
        : static_cast<uint64_t>(std::llround(seconds * 1e6));
}

} // namespace

void
SlaScorer::recordArrival(core::Scenario scenario)
{
    ++scenarios_[static_cast<size_t>(scenario)].requests;
}

void
SlaScorer::recordDrop(core::Scenario scenario)
{
    ++scenarios_[static_cast<size_t>(scenario)].dropped;
}

void
SlaScorer::recordSegment(core::Scenario scenario, double latency_s,
                         bool hit, uint64_t pixels, bool ok,
                         uint64_t trace_id, const obs::CriticalPath &path,
                         const std::string &label, double cost_dollars,
                         double psnr_db, bool cache_hit)
{
    PerScenario &s = scenarios_[static_cast<size_t>(scenario)];
    ++s.segments;
    if (cache_hit)
        ++s.cache_hits;
    s.cost_dollars += cost_dollars;
    s.latency_us.observe(toMicros(latency_s));
    s.queue_wait_us.observe(toMicros(path.queue_wait_ms * 1e-3));
    s.rc_chain_us.observe(toMicros(path.rc_chain_ms * 1e-3));
    s.encode_us.observe(toMicros(path.encode_ms * 1e-3));
    if (trace_id != 0) {
        obs::Exemplar e;
        e.trace_id = trace_id;
        e.latency_ms = latency_s * 1e3;
        e.path = path;
        e.label = label;
        s.exemplars.record(std::move(e));
    }
    if (!ok) {
        ++s.failed;
        return;
    }
    if (psnr_db > 0) {
        s.psnr_sum_db += psnr_db;
        ++s.psnr_count;
    }
    if (hit) {
        ++s.hits;
        s.ontime_pixels += pixels;
    }
}

void
SlaScorer::recordStitch(core::Scenario scenario, double stitch_ms)
{
    PerScenario &s = scenarios_[static_cast<size_t>(scenario)];
    ++s.stitches;
    s.stitch_us.observe(toMicros(stitch_ms * 1e-3));
}

SlaReport
SlaScorer::report(double wall_seconds) const
{
    SlaReport report;
    report.wall_seconds = wall_seconds;
    uint64_t total_hits = 0;
    uint64_t total_ontime_pixels = 0;
    for (int i = 0; i < core::kNumScenarios; ++i) {
        const PerScenario &s = scenarios_[static_cast<size_t>(i)];
        if (s.requests == 0 && s.segments == 0)
            continue;
        ScenarioScore score;
        score.scenario = static_cast<core::Scenario>(i);
        score.requests = s.requests;
        score.dropped = s.dropped;
        score.segments = s.segments;
        score.failed = s.failed;
        score.p50_ms = s.latency_us.valueAtQuantile(0.50) / 1e3;
        score.p95_ms = s.latency_us.valueAtQuantile(0.95) / 1e3;
        score.p99_ms = s.latency_us.valueAtQuantile(0.99) / 1e3;
        score.hit_rate = s.segments > 0
            ? static_cast<double>(s.hits) / static_cast<double>(s.segments)
            : 1.0;
        score.goodput_mpix_s = wall_seconds > 0
            ? static_cast<double>(s.ontime_pixels) / wall_seconds / 1e6
            : 0.0;
        score.drop_rate = s.requests > 0
            ? static_cast<double>(s.dropped) /
                static_cast<double>(s.requests)
            : 0.0;
        score.cache_hits = s.cache_hits;
        score.cache_hit_rate = s.segments > 0
            ? static_cast<double>(s.cache_hits) /
                static_cast<double>(s.segments)
            : 0.0;
        // Slowest decile: everything retained at or above the p90 cut.
        // The log-bucketed histogram reports a bucket's high edge — up
        // to one sub-bucket (12.5%) above the true quantile — so take
        // the matching lower bound; the decile is never under-selected
        // (a few p89 stragglers may ride along, which is fine).
        score.exemplar_cut_ms =
            s.latency_us.valueAtQuantile(0.90) / 1e3 / 1.125;
        score.exemplars = s.exemplars.atOrAbove(score.exemplar_cut_ms);
        // Cost efficiency: dollars per delivered stream (a stitched
        // rung is one delivery stream) and per stream-dB of quality.
        score.cost_dollars = s.cost_dollars;
        score.dollars_per_stream = s.stitches > 0
            ? s.cost_dollars / static_cast<double>(s.stitches)
            : 0.0;
        score.mean_psnr_db = s.psnr_count > 0
            ? s.psnr_sum_db / static_cast<double>(s.psnr_count)
            : 0.0;
        score.dollars_per_quality_point =
            score.mean_psnr_db > 0 && s.stitches > 0
            ? score.dollars_per_stream / score.mean_psnr_db
            : 0.0;
        report.total_cost_dollars += s.cost_dollars;
        report.scenarios.push_back(score);
        report.total_requests += s.requests;
        report.total_dropped += s.dropped;
        report.total_segments += s.segments;
        total_hits += s.hits;
        total_ontime_pixels += s.ontime_pixels;
    }
    report.overall_hit_rate = report.total_segments > 0
        ? static_cast<double>(total_hits) /
            static_cast<double>(report.total_segments)
        : 1.0;
    report.overall_goodput_mpix_s = wall_seconds > 0
        ? static_cast<double>(total_ontime_pixels) / wall_seconds / 1e6
        : 0.0;
    return report;
}

void
SlaScorer::exportMetrics(obs::MetricsRegistry &metrics) const
{
    for (int i = 0; i < core::kNumScenarios; ++i) {
        const PerScenario &s = scenarios_[static_cast<size_t>(i)];
        if (s.requests == 0 && s.segments == 0)
            continue;
        const std::string name =
            core::toString(static_cast<core::Scenario>(i));
        metrics.counter("service.requests." + name).add(s.requests);
        metrics.counter("service.dropped." + name).add(s.dropped);
        metrics.counter("service.segments." + name).add(s.segments);
        metrics.counter("service.segments_failed." + name).add(s.failed);
        metrics.counter("service.deadline_hits." + name).add(s.hits);
        metrics.counter("service.cache_hits." + name).add(s.cache_hits);
        metrics.counter("service.stitches." + name).add(s.stitches);
        // Counters are integral; dollars export at micro-dollar
        // resolution so sub-cent segment costs survive.
        metrics.counter("service.cost_microdollars." + name)
            .add(static_cast<uint64_t>(s.cost_dollars * 1e6));
        metrics.histogram("service.segment_latency_us." + name)
            .mergeFrom(s.latency_us);
        metrics.histogram("service.queue_wait_us." + name)
            .mergeFrom(s.queue_wait_us);
        metrics.histogram("service.rc_chain_us." + name)
            .mergeFrom(s.rc_chain_us);
        metrics.histogram("service.encode_us." + name)
            .mergeFrom(s.encode_us);
        metrics.histogram("service.stitch_us." + name)
            .mergeFrom(s.stitch_us);
    }
}

void
SlaScorer::emitRunReports(const SlaReport &report) const
{
    for (const ScenarioScore &score : report.scenarios) {
        core::RunReport run;
        run.label =
            std::string("service.") + core::toString(score.scenario);
        run.backend = "service";
        run.seconds = report.wall_seconds;
        run.extra.emplace_back("requests",
                               static_cast<double>(score.requests));
        run.extra.emplace_back("dropped",
                               static_cast<double>(score.dropped));
        run.extra.emplace_back("segments",
                               static_cast<double>(score.segments));
        run.extra.emplace_back("failed",
                               static_cast<double>(score.failed));
        run.extra.emplace_back("p50_ms", score.p50_ms);
        run.extra.emplace_back("p95_ms", score.p95_ms);
        run.extra.emplace_back("p99_ms", score.p99_ms);
        run.extra.emplace_back("hit_rate", score.hit_rate);
        run.extra.emplace_back("goodput_mpix_s", score.goodput_mpix_s);
        run.extra.emplace_back("drop_rate", score.drop_rate);
        run.extra.emplace_back("cache_hits",
                               static_cast<double>(score.cache_hits));
        run.extra.emplace_back("cache_hit_rate", score.cache_hit_rate);
        run.extra.emplace_back("cost_dollars", score.cost_dollars);
        run.extra.emplace_back("dollars_per_stream",
                               score.dollars_per_stream);
        run.extra.emplace_back("dollars_per_quality_point",
                               score.dollars_per_quality_point);
        run.extra.emplace_back("exemplars",
                               static_cast<double>(score.exemplars.size()));
        if (!score.exemplars.empty()) {
            // The p99 line's escort: the worst retained segment's
            // breakdown, and the trace ids to chase in the trace file.
            const obs::Exemplar &top = score.exemplars.front();
            run.extra.emplace_back("top_latency_ms", top.latency_ms);
            run.extra.emplace_back("top_queue_wait_ms",
                                   top.path.queue_wait_ms);
            run.extra.emplace_back("top_rc_chain_ms",
                                   top.path.rc_chain_ms);
            run.extra.emplace_back("top_encode_ms", top.path.encode_ms);
            std::string ids;
            size_t listed = 0;
            for (const obs::Exemplar &e : score.exemplars) {
                if (listed++ == 8)
                    break;
                if (!ids.empty())
                    ids += ",";
                ids += std::to_string(e.trace_id);
            }
            run.extra_str.emplace_back("exemplar_trace_ids", ids);
            run.extra_str.emplace_back("top_label", top.label);
        }
        core::emitRunReport(run);
    }
}

} // namespace vbench::service
