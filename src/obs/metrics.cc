#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <ostream>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace vbench::obs {

int
Histogram::bucketIndex(uint64_t value) noexcept
{
    if (value < 8)
        return static_cast<int>(value);
    const int octave = 63 - std::countl_zero(value);  // >= 3
    const uint64_t lo = uint64_t{1} << octave;
    const int sub = static_cast<int>((value - lo) >> (octave - 3));
    return 8 + (octave - 3) * kSubBuckets + sub;
}

uint64_t
Histogram::bucketLo(int index) noexcept
{
    if (index < 8)
        return static_cast<uint64_t>(index);
    const int octave = 3 + (index - 8) / kSubBuckets;
    const int sub = (index - 8) % kSubBuckets;
    return (uint64_t{1} << octave) +
        (static_cast<uint64_t>(sub) << (octave - 3));
}

uint64_t
Histogram::bucketHi(int index) noexcept
{
    if (index < 8)
        return static_cast<uint64_t>(index) + 1;
    const int octave = 3 + (index - 8) / kSubBuckets;
    const uint64_t lo = bucketLo(index);
    const uint64_t hi = lo + (uint64_t{1} << (octave - 3));
    return hi > lo ? hi : UINT64_MAX;  // top bucket saturates
}

void
Histogram::observe(uint64_t value) noexcept
{
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t
Histogram::count() const noexcept
{
    return count_.load(std::memory_order_relaxed);
}

uint64_t
Histogram::sum() const noexcept
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const noexcept
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / n;
}

double
Histogram::percentile(double p) const noexcept
{
    return valueAtQuantile(std::clamp(p, 0.0, 100.0) / 100.0);
}

double
Histogram::valueAtQuantile(double q) const noexcept
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    if (q != q)  // NaN: no meaningful rank; clamp would propagate it
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank in [1, n] of the sample at quantile q.
    const double rank = q * (static_cast<double>(n) - 1.0) + 1.0;
    uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
        if (c == 0)
            continue;
        if (static_cast<double>(cum + c) >= rank) {
            // Linear interpolation inside the bucket's value range.
            const double frac =
                (rank - static_cast<double>(cum)) / static_cast<double>(c);
            const double lo = static_cast<double>(bucketLo(i));
            const double hi = static_cast<double>(bucketHi(i));
            return lo + frac * (hi - lo);
        }
        cum += c;
    }
    return static_cast<double>(bucketHi(kNumBuckets - 1));
}

void
Histogram::mergeFrom(const Histogram &other) noexcept
{
    for (int i = 0; i < kNumBuckets; ++i) {
        const uint64_t c =
            other.buckets_[i].load(std::memory_order_relaxed);
        if (c != 0)
            buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

uint64_t
Histogram::bucketCount(int index) const noexcept
{
    return buckets_[index].load(std::memory_order_relaxed);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::writeText(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_)
        out << "counter " << name << " " << c->value() << "\n";
    for (const auto &[name, h] : histograms_) {
        out << "histogram " << name << " count=" << h->count()
            << " mean=" << h->mean() << " p50=" << h->percentile(50)
            << " p90=" << h->percentile(90) << " p99=" << h->percentile(99)
            << "\n";
    }
}

void
MetricsRegistry::writeJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out << ",";
        first = false;
        out << jsonString(name) << ":" << c->value();
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            out << ",";
        first = false;
        out << jsonString(name) << ":{\"count\":" << h->count()
            << ",\"mean\":" << jsonNumber(h->mean())
            << ",\"p50\":" << jsonNumber(h->percentile(50))
            << ",\"p90\":" << jsonNumber(h->percentile(90))
            << ",\"p99\":" << jsonNumber(h->percentile(99)) << "}";
    }
    out << "}}";
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        MetricsSnapshot::HistogramStats s;
        s.name = name;
        s.count = h->count();
        s.sum = h->sum();
        s.mean = h->mean();
        s.p50 = h->percentile(50);
        s.p90 = h->percentile(90);
        s.p99 = h->percentile(99);
        snap.histograms.push_back(std::move(s));
    }
    return snap;
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry &other)
{
    // Snapshot the other side's entries under its lock, then fold them
    // in via this registry's own accessors — never holding both locks,
    // so A.mergeFrom(B) and B.mergeFrom(A) cannot deadlock.
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, const Histogram *>> histograms;
    {
        std::lock_guard<std::mutex> lock(other.mu_);
        counters.reserve(other.counters_.size());
        for (const auto &[name, c] : other.counters_)
            counters.emplace_back(name, c->value());
        histograms.reserve(other.histograms_.size());
        for (const auto &[name, h] : other.histograms_)
            histograms.emplace_back(name, h.get());
    }
    for (const auto &[name, value] : counters)
        if (value != 0)
            counter(name).add(value);
    // Histogram pointers stay valid for `other`'s lifetime, and the
    // bucket-wise merge is lock-free on both sides.
    for (const auto &[name, h] : histograms)
        histogram(name).mergeFrom(*h);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    histograms_.clear();
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + histograms_.size();
}

} // namespace vbench::obs
