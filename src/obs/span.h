#pragma once

/**
 * @file
 * Request-scoped span identity. A SpanContext names one node of a
 * distributed trace tree: every span carries the trace it belongs to
 * (`trace_id`), its own identity (`span_id`), and its parent
 * (`parent_id`, 0 at the root). The service mints one root context per
 * client request and derives children for admission wait, dispatch,
 * each segment encode, and the stitch, so one request yields a single
 * connected tree across the dispatcher and every worker thread that
 * touched it (docs/OBSERVABILITY.md).
 *
 * Ids are process-unique (one shared atomic counter, never 0), so a
 * merged trace file can interleave many requests without collisions.
 * A default-constructed context is invalid (`trace_id == 0`) and every
 * recording path treats it as "no request tracing" at the usual
 * one-branch cost.
 */

#include <atomic>
#include <cstdint>

namespace vbench::obs {

namespace detail {

inline std::atomic<uint64_t> &
spanIdCounter()
{
    static std::atomic<uint64_t> next{1};
    return next;
}

} // namespace detail

/** Allocate a process-unique id (monotonic, never 0). */
inline uint64_t
nextSpanId()
{
    return detail::spanIdCounter().fetch_add(1,
                                             std::memory_order_relaxed);
}

/** One node of a request's trace tree. */
struct SpanContext {
    uint64_t trace_id = 0;  ///< the request's trace; 0 = no tracing
    uint64_t span_id = 0;   ///< this span
    uint64_t parent_id = 0; ///< enclosing span; 0 = trace root

    bool valid() const { return trace_id != 0; }

    /** A child span of this context (same trace, fresh id). */
    SpanContext
    child() const
    {
        return SpanContext{trace_id, nextSpanId(), span_id};
    }

    /** Mint a fresh root context (new trace). */
    static SpanContext
    newTrace()
    {
        const uint64_t id = nextSpanId();
        return SpanContext{id, id, 0};
    }
};

} // namespace vbench::obs
