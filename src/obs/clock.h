#pragma once

/**
 * @file
 * The one monotonic clock every vbench component shares. The paper's
 * speed metric is wall-clock-based (§2.3), so the transcoder driver,
 * the benches, and the tracing layer must all read the same clock or
 * their numbers are not comparable.
 */

#include <chrono>
#include <cstdint>
#include <ctime>

namespace vbench::obs {

/** Monotonic now, nanoseconds since an arbitrary epoch. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Monotonic now, seconds since an arbitrary epoch. */
inline double
nowSeconds()
{
    return static_cast<double>(nowNs()) * 1e-9;
}

/**
 * CPU seconds consumed by the calling thread. Unlike the wall clock,
 * this does not inflate when workers timeslice an oversubscribed
 * machine, so the scheduler sums it across jobs to estimate what a
 * serial replay would have cost (its honest speedup denominator).
 * Returns a negative value where the clock is unavailable.
 */
inline double
threadCpuSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return -1.0;
    return static_cast<double>(ts.tv_sec) +
        static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return -1.0;
#endif
}

/** Elapsed-seconds stopwatch over the monotonic clock. */
class Stopwatch
{
  public:
    Stopwatch() : start_(nowNs()) {}

    double
    seconds() const
    {
        return static_cast<double>(nowNs() - start_) * 1e-9;
    }

    void
    reset()
    {
        start_ = nowNs();
    }

  private:
    uint64_t start_;
};

} // namespace vbench::obs
