#pragma once

/**
 * @file
 * The one monotonic clock every vbench component shares. The paper's
 * speed metric is wall-clock-based (§2.3), so the transcoder driver,
 * the benches, and the tracing layer must all read the same clock or
 * their numbers are not comparable.
 */

#include <chrono>
#include <cstdint>

namespace vbench::obs {

/** Monotonic now, nanoseconds since an arbitrary epoch. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Monotonic now, seconds since an arbitrary epoch. */
inline double
nowSeconds()
{
    return static_cast<double>(nowNs()) * 1e-9;
}

/** Elapsed-seconds stopwatch over the monotonic clock. */
class Stopwatch
{
  public:
    Stopwatch() : start_(nowNs()) {}

    double
    seconds() const
    {
        return static_cast<double>(nowNs() - start_) * 1e-9;
    }

    void
    reset()
    {
        start_ = nowNs();
    }

  private:
    uint64_t start_;
};

} // namespace vbench::obs
