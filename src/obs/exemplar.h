#pragma once

/**
 * @file
 * Tail-latency exemplars. An aggregate p99 says the tail is slow; an
 * exemplar says *which request* was slow and *where its time went*,
 * by pairing the measured latency with the request's trace_id (the
 * key into the Chrome trace's span tree) and its critical-path
 * breakdown. The SLA scorer keeps one ExemplarStore per scenario and
 * reports the slowest-decile entries next to the p99 line, so a bad
 * percentile in a scorecard links to concrete, inspectable traces
 * (docs/OBSERVABILITY.md).
 *
 * The store is a bounded keep-K-largest structure (min-heap on
 * latency): recording is O(log K), memory is O(K) no matter how many
 * segments a run transcodes, and the K retained entries are exactly
 * the K slowest seen. K defaults to 256 — deep enough that the
 * slowest decile of any realistic benchmark run survives intact.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vbench::obs {

/**
 * Where a request's wall-clock went, in milliseconds. The stages
 * partition the measured latency (same tiling contract as trace
 * stages): queue_wait + rc_chain + encode sum to a segment's latency;
 * stitch is request-level and accounted once per rung.
 */
struct CriticalPath {
    double queue_wait_ms = 0;  ///< scheduler submit -> job start
    /// Pre-submit wait: availability -> scheduler submit (the RC-carry
    /// predecessor for chained rungs, admission/dispatch otherwise).
    double rc_chain_ms = 0;
    double encode_ms = 0;      ///< on-worker transcode wall clock
    double stitch_ms = 0;      ///< bitstream stitch (request-level)

    double
    total_ms() const
    {
        return queue_wait_ms + rc_chain_ms + encode_ms + stitch_ms;
    }
};

/** One retained slow request/segment. */
struct Exemplar {
    uint64_t trace_id = 0;  ///< resolves into the Chrome trace
    double latency_ms = 0;  ///< measured end-to-end latency
    CriticalPath path;      ///< where the latency went
    std::string label;      ///< e.g. "vod_1080p.s3" (rung.segment)
};

/**
 * Thread-safe bounded store of the K largest-latency exemplars.
 * record() from many workers is safe; snapshots copy.
 */
class ExemplarStore
{
  public:
    explicit ExemplarStore(size_t capacity = 256)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    ExemplarStore(const ExemplarStore &) = delete;
    ExemplarStore &operator=(const ExemplarStore &) = delete;

    /**
     * Offer one exemplar. Kept if the store has room or the latency
     * beats the current minimum (which is then evicted).
     */
    void
    record(Exemplar e)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (heap_.size() < capacity_) {
            heap_.push_back(std::move(e));
            std::push_heap(heap_.begin(), heap_.end(), minFirst);
            return;
        }
        if (e.latency_ms <= heap_.front().latency_ms)
            return;
        std::pop_heap(heap_.begin(), heap_.end(), minFirst);
        heap_.back() = std::move(e);
        std::push_heap(heap_.begin(), heap_.end(), minFirst);
    }

    /** All retained exemplars, slowest first. */
    std::vector<Exemplar>
    sortedDesc() const
    {
        std::vector<Exemplar> out;
        {
            std::lock_guard<std::mutex> lock(mu_);
            out = heap_;
        }
        std::sort(out.begin(), out.end(),
                  [](const Exemplar &a, const Exemplar &b) {
                      return a.latency_ms > b.latency_ms;
                  });
        return out;
    }

    /** Retained exemplars at or above a latency cut, slowest first. */
    std::vector<Exemplar>
    atOrAbove(double latency_ms) const
    {
        std::vector<Exemplar> out = sortedDesc();
        out.erase(std::find_if(out.begin(), out.end(),
                               [latency_ms](const Exemplar &e) {
                                   return e.latency_ms < latency_ms;
                               }),
                  out.end());
        return out;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return heap_.size();
    }

    size_t capacity() const { return capacity_; }

  private:
    static bool
    minFirst(const Exemplar &a, const Exemplar &b)
    {
        return a.latency_ms > b.latency_ms;  // min-heap on latency
    }

    const size_t capacity_;
    mutable std::mutex mu_;
    std::vector<Exemplar> heap_;  ///< min-heap: front = smallest kept
};

} // namespace vbench::obs
