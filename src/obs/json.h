#pragma once

/**
 * @file
 * Minimal JSON emission helpers shared by the trace exporter, the
 * metrics dump, and the run reports. Output only — vbench never parses
 * JSON outside of tests.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace vbench::obs {

/** Escape a string for embedding inside JSON double quotes. */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** A quoted, escaped JSON string literal. */
inline std::string
jsonString(std::string_view s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/**
 * Format a double as a JSON number. JSON has no inf/nan, so
 * non-finite values degrade to null.
 */
inline std::string
jsonNumber(double v)
{
    if (!(v == v) || v > 1.7e308 || v < -1.7e308)
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace vbench::obs
