#include "obs/obs.h"

#include <cstdlib>

namespace vbench::obs {

ObsConfig
parseEnvConfig()
{
    ObsConfig cfg;
    if (const char *trace = std::getenv("VBENCH_TRACE");
        trace && trace[0] != '\0') {
        cfg.trace_enabled = true;
        cfg.trace_path = trace;
    }
    if (const char *metrics = std::getenv("VBENCH_METRICS_OUT");
        metrics && metrics[0] != '\0') {
        cfg.metrics_path = metrics;
    }
    return cfg;
}

const ObsConfig &
config()
{
    static const ObsConfig cfg = parseEnvConfig();
    return cfg;
}

Tracer *
globalTracer()
{
    if (!config().trace_enabled)
        return nullptr;
    static Tracer *tracer = [] {
        // Leaked intentionally: spans may be recorded from atexit-time
        // destructors; the flush below snapshots whatever exists.
        auto *t = new Tracer();
        std::atexit(flushGlobal);
        return t;
    }();
    return tracer;
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

bool
metricsEnabled()
{
    return !config().metrics_path.empty();
}

void
flushGlobal()
{
    if (Tracer *tracer = globalTracer())
        tracer->writeChromeTraceFile(config().trace_path);
}

} // namespace vbench::obs
