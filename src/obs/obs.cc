#include "obs/obs.h"

#include <atomic>
#include <cstdlib>

#include "core/runtime_config.h"
#include "obs/telemetry.h"

namespace vbench::obs {

ObsConfig
parseEnvConfig()
{
    // The env itself is parsed (and validated, fail-fast) in exactly
    // one place: core::RuntimeConfig. This just projects the obs view.
    const core::RuntimeConfig rt = core::freshRuntimeConfig();
    ObsConfig cfg;
    cfg.trace_enabled = !rt.trace_path.empty();
    cfg.trace_path = rt.trace_path;
    cfg.metrics_path = rt.metrics_path;
    cfg.prom_path = rt.prom_path;
    return cfg;
}

const ObsConfig &
config()
{
    static const ObsConfig cfg = parseEnvConfig();
    return cfg;
}

Tracer *
globalTracer()
{
    if (!config().trace_enabled)
        return nullptr;
    static Tracer *tracer = [] {
        // Leaked intentionally: spans may be recorded from atexit-time
        // destructors; the flush below snapshots whatever exists.
        auto *t = new Tracer();
        std::atexit(flushGlobal);
        return t;
    }();
    return tracer;
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

bool
metricsEnabled()
{
    return !config().metrics_path.empty();
}

bool
promEnabled()
{
    return !config().prom_path.empty();
}

namespace {

std::atomic<bool> &
promWrittenFlag()
{
    static std::atomic<bool> written{false};
    return written;
}

} // namespace

void
markPromWritten()
{
    promWrittenFlag().store(true, std::memory_order_release);
}

void
flushGlobal()
{
    if (Tracer *tracer = globalTracer())
        tracer->writeChromeTraceFile(config().trace_path);
    if (promEnabled() &&
        !promWrittenFlag().load(std::memory_order_acquire))
        writePromFile(config().prom_path, &globalMetrics(), nullptr);
}

namespace {

std::atomic<int> &
attributionClaimants()
{
    static std::atomic<int> claimants{0};
    return claimants;
}

} // namespace

GlobalAttributionGuard::GlobalAttributionGuard(bool active)
    : active_(active)
{
    if (!active_)
        return;
    const int prior =
        attributionClaimants().fetch_add(1, std::memory_order_acq_rel);
    if (prior > 0) {
        contended_ = true;
        globalMetrics().counter("obs.fallback_contended").add();
    }
}

GlobalAttributionGuard::~GlobalAttributionGuard()
{
    if (active_)
        attributionClaimants().fetch_sub(1, std::memory_order_acq_rel);
}

int
GlobalAttributionGuard::activeClaimants()
{
    return attributionClaimants().load(std::memory_order_acquire);
}

} // namespace vbench::obs
