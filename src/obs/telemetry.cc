#include "obs/telemetry.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/clock.h"

namespace vbench::obs {

TelemetrySampler::TelemetrySampler() : TelemetrySampler(Config{}) {}

TelemetrySampler::TelemetrySampler(Config config) : config_(config)
{
    if (config_.interval_s <= 0)
        config_.interval_s = 0.010;
    if (config_.ring_capacity == 0)
        config_.ring_capacity = 1;
}

TelemetrySampler::~TelemetrySampler()
{
    stop();
}

void
TelemetrySampler::addGauge(std::string name, std::function<double()> probe)
{
    if (!probe)
        return;
    GaugeSlot slot;
    slot.name = std::move(name);
    slot.probe = std::move(probe);
    slot.ring.resize(config_.ring_capacity);
    std::lock_guard<std::mutex> lock(mu_);
    gauges_.push_back(std::move(slot));
}

void
TelemetrySampler::start()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (running_)
            return;
        stop_requested_ = false;
        stopped_ = false;
        running_ = true;
    }
    thread_ = std::thread(&TelemetrySampler::threadMain, this);
}

void
TelemetrySampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_)
            return;
        stopped_ = true;
        stop_requested_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // Final synchronous sample: even a run shorter than one interval
    // ends with at least one point per gauge, and the last point
    // reflects post-run state (e.g. merged shard metrics).
    sampleOnce();
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
}

bool
TelemetrySampler::running() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
}

void
TelemetrySampler::sampleOnce()
{
    // Probes run without mu_ held: a probe may take the observed
    // object's own lock, and holding ours across it invites ordering
    // trouble. addGauge() only appends, so indices stay stable.
    size_t n;
    {
        std::lock_guard<std::mutex> lock(mu_);
        n = gauges_.size();
    }
    const uint64_t now = nowNs();
    std::vector<double> values(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        std::function<double()> probe;
        {
            std::lock_guard<std::mutex> lock(mu_);
            probe = gauges_[i].probe;
        }
        values[i] = probe();
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n && i < gauges_.size(); ++i) {
        GaugeSlot &g = gauges_[i];
        g.ring[g.head] = TelemetryPoint{now, values[i]};
        g.head = (g.head + 1) % g.ring.size();
        if (g.count < g.ring.size())
            ++g.count;
    }
    ++ticks_;
}

uint64_t
TelemetrySampler::tickCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ticks_;
}

std::vector<TelemetrySeries>
TelemetrySampler::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TelemetrySeries> out;
    out.reserve(gauges_.size());
    for (const GaugeSlot &g : gauges_) {
        TelemetrySeries s;
        s.name = g.name;
        s.points.reserve(g.count);
        // Oldest point first: a full ring starts at the next write
        // slot (head), a partial ring at 0.
        const size_t start = g.count == g.ring.size() ? g.head : 0;
        for (size_t k = 0; k < g.count; ++k)
            s.points.push_back(g.ring[(start + k) % g.ring.size()]);
        out.push_back(std::move(s));
    }
    return out;
}

void
TelemetrySampler::threadMain()
{
    const auto interval =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(config_.interval_s));
    while (true) {
        sampleOnce();
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait_for(lock, interval, [this] { return stop_requested_; });
        if (stop_requested_)
            return;
    }
}

std::string
promName(std::string_view name)
{
    std::string out = "vbench_";
    for (const char c : name) {
        if (c == '.' || c == '-' || c == ' ') {
            out += '_';
            continue;
        }
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
            out += c;
    }
    return out;
}

namespace {

std::string
promValue(double v)
{
    std::ostringstream ss;
    ss.precision(15);
    ss << v;
    return ss.str();
}

} // namespace

void
writePromText(std::ostream &out, const MetricsRegistry *metrics,
              const TelemetrySampler *telemetry)
{
    writePromText(out, metrics,
                  telemetry ? telemetry->snapshot()
                            : std::vector<TelemetrySeries>{});
}

void
writePromText(std::ostream &out, const MetricsRegistry *metrics,
              const std::vector<TelemetrySeries> &series)
{
    if (metrics) {
        const MetricsSnapshot snap = metrics->snapshot();
        for (const auto &[name, value] : snap.counters) {
            const std::string prom = promName(name);
            out << "# TYPE " << prom << " counter\n";
            out << prom << "_total " << value << "\n";
        }
        for (const MetricsSnapshot::HistogramStats &h : snap.histograms) {
            const std::string prom = promName(h.name);
            out << "# TYPE " << prom << " summary\n";
            out << prom << "{quantile=\"0.5\"} " << promValue(h.p50)
                << "\n";
            out << prom << "{quantile=\"0.9\"} " << promValue(h.p90)
                << "\n";
            out << prom << "{quantile=\"0.99\"} " << promValue(h.p99)
                << "\n";
            out << prom << "_sum " << h.sum << "\n";
            out << prom << "_count " << h.count << "\n";
        }
    }
    for (const TelemetrySeries &s : series) {
        const std::string prom = promName(s.name);
        out << "# TYPE " << prom << " gauge\n";
        out << prom << " " << promValue(s.last()) << "\n";
    }
    out << "# EOF\n";
}

bool
writePromFile(const std::string &path, const MetricsRegistry *metrics,
              const TelemetrySampler *telemetry)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writePromText(out, metrics, telemetry);
    return static_cast<bool>(out);
}

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/// `name` minus a standard sample suffix, when present.
std::string_view
familyOf(std::string_view name)
{
    for (const std::string_view suffix :
         {std::string_view("_total"), std::string_view("_sum"),
          std::string_view("_count"), std::string_view("_bucket")}) {
        if (name.size() > suffix.size() &&
            name.substr(name.size() - suffix.size()) == suffix)
            return name.substr(0, name.size() - suffix.size());
    }
    return name;
}

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    for (size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool alpha = std::isalpha(static_cast<unsigned char>(c)) ||
            c == '_' || c == ':';
        const bool digit = std::isdigit(static_cast<unsigned char>(c));
        if (i == 0 ? !alpha : !(alpha || digit))
            return false;
    }
    return true;
}

} // namespace

bool
validatePromText(std::string_view text, std::string *error)
{
    if (text.empty())
        return fail(error, "empty exposition");
    std::set<std::string, std::less<>> declared;
    std::string last_content;
    size_t line_no = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        const size_t eol = text.find('\n', pos);
        const std::string_view line = text.substr(
            pos, (eol == std::string_view::npos ? text.size() : eol) - pos);
        pos = eol == std::string_view::npos ? text.size() : eol + 1;
        ++line_no;
        if (line.empty())
            continue;
        const auto lineError = [&](const std::string &what) {
            return fail(error, "line " + std::to_string(line_no) + ": " +
                                   what + ": " + std::string(line));
        };
        last_content = std::string(line);
        if (line[0] == '#') {
            if (line == "# EOF")
                continue;
            if (line.rfind("# HELP ", 0) == 0)
                continue;
            if (line.rfind("# TYPE ", 0) == 0) {
                // "# TYPE <name> <type>"
                const std::string_view rest = line.substr(7);
                const size_t sp = rest.find(' ');
                if (sp == std::string_view::npos)
                    return lineError("malformed TYPE");
                const std::string_view name = rest.substr(0, sp);
                const std::string_view kind = rest.substr(sp + 1);
                if (!validMetricName(name))
                    return lineError("bad metric name in TYPE");
                if (kind != "counter" && kind != "gauge" &&
                    kind != "histogram" && kind != "summary" &&
                    kind != "untyped")
                    return lineError("unknown metric type");
                declared.insert(std::string(name));
                continue;
            }
            return lineError("unrecognized comment");
        }
        // Sample line: name[{labels}] value [timestamp]
        size_t name_end = 0;
        while (name_end < line.size() && line[name_end] != '{' &&
               line[name_end] != ' ')
            ++name_end;
        const std::string_view name = line.substr(0, name_end);
        if (!validMetricName(name))
            return lineError("bad metric name");
        if (declared.find(familyOf(name)) == declared.end() &&
            declared.find(name) == declared.end())
            return lineError("sample without TYPE declaration");
        size_t rest_pos = name_end;
        if (rest_pos < line.size() && line[rest_pos] == '{') {
            // Labels must close before the value. Our writer never
            // escapes quotes inside label values, so a quote-aware
            // scan for the closing brace suffices.
            bool in_string = false;
            size_t close = std::string_view::npos;
            for (size_t i = rest_pos; i < line.size(); ++i) {
                if (line[i] == '"')
                    in_string = !in_string;
                else if (line[i] == '}' && !in_string) {
                    close = i;
                    break;
                }
            }
            if (close == std::string_view::npos || in_string)
                return lineError("unterminated label set");
            rest_pos = close + 1;
        }
        if (rest_pos >= line.size() || line[rest_pos] != ' ')
            return lineError("missing value");
        const std::string rest(line.substr(rest_pos + 1));
        if (rest.empty())
            return lineError("missing value");
        char *end = nullptr;
        std::strtod(rest.c_str(), &end);
        if (end == rest.c_str())
            return lineError("malformed value");
        // Allow an optional integer timestamp after the value.
        while (*end == ' ')
            ++end;
        if (*end != '\0') {
            char *ts_end = nullptr;
            std::strtoll(end, &ts_end, 10);
            if (ts_end == end || *ts_end != '\0')
                return lineError("trailing garbage after value");
        }
    }
    if (last_content != "# EOF")
        return fail(error, "missing trailing # EOF");
    return true;
}

} // namespace vbench::obs
