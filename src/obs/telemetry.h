#pragma once

/**
 * @file
 * Live telemetry sampling and Prometheus/OpenMetrics text exposition.
 *
 * A TelemetrySampler owns a set of named gauges — cheap, thread-safe
 * probe callbacks like "admission queue depth" or "jobs in flight" —
 * and a background thread that snapshots every gauge at a fixed
 * interval into a bounded ring buffer of (timestamp, value) points.
 * Unlike the MetricsRegistry (monotonic counters and histograms that
 * only tell you what happened by the end of a run), the sampler
 * records *when* the queue was deep and the workers were saturated,
 * which is what turns an SLA scorecard's p99 into an explanation.
 *
 * The ring is fixed-capacity by design: a service run records the
 * last `ring_capacity` samples per gauge and old points fall off, so
 * memory is bounded no matter how long the run. stop() takes one
 * final synchronous sample before joining, so even a run shorter than
 * one interval yields at least one point per gauge.
 *
 * The same header hosts the Prometheus text-format writer used for
 * VBENCH_PROM_OUT snapshots (docs/OBSERVABILITY.md): counters and
 * histogram summaries from a MetricsRegistry plus the latest gauge
 * values, terminated with the OpenMetrics `# EOF` marker, and a
 * validator (`validatePromText`) the schema gates use to reject a
 * malformed exposition before it reaches a real scraper.
 */

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace vbench::obs {

/** One sampled gauge value. */
struct TelemetryPoint {
    uint64_t t_ns = 0;  ///< obs::nowNs() at sample time
    double value = 0;
};

/** The in-order snapshot of one gauge's ring (oldest first). */
struct TelemetrySeries {
    std::string name;
    std::vector<TelemetryPoint> points;

    double
    last() const
    {
        return points.empty() ? 0.0 : points.back().value;
    }

    double
    max() const
    {
        double m = 0;
        for (const TelemetryPoint &p : points)
            m = p.value > m ? p.value : m;
        return m;
    }

    double
    mean() const
    {
        if (points.empty())
            return 0.0;
        double s = 0;
        for (const TelemetryPoint &p : points)
            s += p.value;
        return s / static_cast<double>(points.size());
    }
};

/**
 * Periodic gauge sampler. Gauge probes run on the sampler thread and
 * must therefore be thread-safe against the code they observe (read
 * an atomic, take the observed object's own lock — never touch
 * unsynchronized state). Probes must not block: a stuck probe stalls
 * every other gauge's timeline.
 */
class TelemetrySampler
{
  public:
    struct Config {
        /// Sampling period. The thread wakes, probes every gauge, and
        /// sleeps again; jitter is bounded by probe cost.
        double interval_s = 0.010;
        /// Points retained per gauge (ring buffer; oldest dropped).
        size_t ring_capacity = 512;
    };

    TelemetrySampler();
    explicit TelemetrySampler(Config config);
    ~TelemetrySampler();  ///< stops the thread if still running

    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /**
     * Register a gauge. Safe before or after start(); the next tick
     * picks it up. Names follow the dotted metric convention
     * ("service.queue_depth").
     */
    void addGauge(std::string name, std::function<double()> probe);

    /** Start the sampling thread (no-op when already running). */
    void start();

    /**
     * Take one final synchronous sample, stop the thread, and join.
     * Idempotent; the destructor calls it.
     */
    void stop();

    bool running() const;

    /** Probe every gauge once, now (the thread calls this per tick). */
    void sampleOnce();

    /** Ticks taken so far (including the final stop() sample). */
    uint64_t tickCount() const;

    /** Every gauge's in-order time series (oldest point first). */
    std::vector<TelemetrySeries> snapshot() const;

  private:
    struct GaugeSlot {
        std::string name;
        std::function<double()> probe;
        std::vector<TelemetryPoint> ring;  ///< capacity-bounded
        size_t head = 0;                   ///< next write position
        size_t count = 0;                  ///< points currently held
    };

    void threadMain();

    Config config_;
    mutable std::mutex mu_;
    std::condition_variable cv_;  ///< interruptible inter-tick sleep
    std::vector<GaugeSlot> gauges_;
    uint64_t ticks_ = 0;
    bool stop_requested_ = false;
    bool stopped_ = false;  ///< final sample already taken
    bool running_ = false;
    std::thread thread_;
};

/**
 * A metric name in Prometheus form: dots and dashes become
 * underscores, anything outside [a-zA-Z0-9_] is dropped, and the
 * result is prefixed "vbench_". ("service.queue_depth" →
 * "vbench_service_queue_depth".)
 */
std::string promName(std::string_view name);

/**
 * Write a Prometheus/OpenMetrics text snapshot: every counter of
 * `metrics` as a `counter` family (name suffixed `_total`), every
 * histogram as a `summary` (q0.5/q0.9/q0.99 + `_sum`/`_count`), and
 * every gauge of `telemetry` as a `gauge` carrying its latest sampled
 * value. Either source may be null. Ends with `# EOF`.
 */
void writePromText(std::ostream &out, const MetricsRegistry *metrics,
                   const TelemetrySampler *telemetry);

/**
 * Same, but over an already-taken gauge snapshot (e.g. the series a
 * finished ServiceResult carries) instead of a live sampler.
 */
void writePromText(std::ostream &out, const MetricsRegistry *metrics,
                   const std::vector<TelemetrySeries> &series);

/** writePromText to a file; false if the file can't open. */
bool writePromFile(const std::string &path,
                   const MetricsRegistry *metrics,
                   const TelemetrySampler *telemetry);

/**
 * Validate a Prometheus text exposition: every non-comment line must
 * be `name[{labels}] value [timestamp]` with a previously TYPE-declared
 * family (modulo the standard `_total`/`_sum`/`_count`/`_bucket`
 * suffixes), comments must be `# HELP`/`# TYPE`/`# EOF`, and the
 * final content line must be `# EOF`. On failure returns false and,
 * when `error` is non-null, stores a one-line diagnosis.
 */
bool validatePromText(std::string_view text, std::string *error = nullptr);

} // namespace vbench::obs
