#pragma once

/**
 * @file
 * The stage taxonomy of the transcode pipeline. Phase stages are the
 * driver-level steps of one transcode (always measured, a handful of
 * clock reads per run); leaf stages are the encoder/decoder internals
 * (measured only when a Tracer is attached). Leaf stages are disjoint
 * by construction — their accumulated times partition the traced wall
 * clock — so their totals can be summed and compared against the
 * reported transcode seconds.
 */

#include <cstdint>

namespace vbench::obs {

/** Every named stage, phases first, leaves after. */
enum class Stage : uint8_t {
    // --- Transcode-level phases (driver-measured, always on). ---
    DecodeInput = 0,   ///< decode the universal input stream
    Encode,            ///< the re-encode (wall clock, any backend)
    DecodeOutput,      ///< decode own output for quality measurement
    Measure,           ///< PSNR / bitrate / speed computation
    HwPipeline,        ///< hardware model arithmetic (modeled backends)
    /// One wavefront row analysis span (start of first cell to end of
    /// last, dependency stalls included). A phase stage, not a leaf:
    /// rows overlap in time under frame threading, so they must not
    /// count toward the leaf totals that partition traced wall clock.
    WavefrontRow,
    /// One entropy-slice emission span (the whole slice band, syntax
    /// and residual bits). A phase stage for the same reason as
    /// WavefrontRow: slices overlap in time under slice-parallel
    /// entropy coding — the disjoint leaf share of the same work is
    /// still accounted under EntropyCoding.
    EntropySlice,
    // --- Leaf stages (tracer-measured, disjoint in time). ---
    FrameSetup,        ///< padding, AQ pre-pass, reference upkeep
    MotionEstimation,  ///< inter search incl. early-skip probing
    IntraDecision,     ///< intra predictor evaluation
    PartitionSearch,   ///< NGC quadtree CU planning (its RDO)
    ModeDecision,      ///< VBC candidate sort + RD trials
    TransformQuant,    ///< prediction build + forward transform + quant
    EntropyCoding,     ///< syntax and residual bit emission
    Deblock,           ///< in-loop deblocking filter
    RateControl,       ///< per-frame QP decisions and feedback
    Reconstruct,       ///< dequant + inverse transform + recon writes
    DecodeFrame,       ///< one decoded frame (parse + reconstruct)
    Other,             ///< per-frame glue not attributed above
};

inline constexpr int kNumStages = static_cast<int>(Stage::Other) + 1;

/** Stable snake_case stage names (span/JSON naming convention). */
inline const char *
toString(Stage stage)
{
    switch (stage) {
      case Stage::DecodeInput: return "decode_input";
      case Stage::Encode: return "encode";
      case Stage::DecodeOutput: return "decode_output";
      case Stage::Measure: return "measure";
      case Stage::HwPipeline: return "hw_pipeline";
      case Stage::WavefrontRow: return "wavefront_row";
      case Stage::EntropySlice: return "entropy_slice";
      case Stage::FrameSetup: return "frame_setup";
      case Stage::MotionEstimation: return "motion_estimation";
      case Stage::IntraDecision: return "intra_decision";
      case Stage::PartitionSearch: return "partition_search";
      case Stage::ModeDecision: return "mode_decision";
      case Stage::TransformQuant: return "transform_quant";
      case Stage::EntropyCoding: return "entropy_coding";
      case Stage::Deblock: return "deblock";
      case Stage::RateControl: return "rate_control";
      case Stage::Reconstruct: return "reconstruct";
      case Stage::DecodeFrame: return "decode_frame";
      case Stage::Other: return "other";
    }
    return "unknown";
}

/** Leaf stages partition traced time; phases overlap them. */
inline constexpr bool
isLeafStage(Stage stage)
{
    return static_cast<int>(stage) >= static_cast<int>(Stage::FrameSetup);
}

/**
 * The timeline ("thread" row in a Chrome trace) an event belongs to.
 */
enum class Track : uint8_t {
    Transcode = 0,  ///< driver-level phases
    VbcEncode,      ///< VBC software encoder
    NgcEncode,      ///< next-generation encoder
    HwEncode,       ///< hardware-model encode (frozen VBC tool set)
    Decode,         ///< decoder
};

inline constexpr int kNumTracks = static_cast<int>(Track::Decode) + 1;

inline const char *
toString(Track track)
{
    switch (track) {
      case Track::Transcode: return "transcode";
      case Track::VbcEncode: return "vbc_encode";
      case Track::NgcEncode: return "ngc_encode";
      case Track::HwEncode: return "hw_encode";
      case Track::Decode: return "decode";
    }
    return "unknown";
}

/**
 * Fixed-size per-stage nanosecond accumulator. The encoders keep one
 * per frame and add to it through ScopedStage; no allocation, no
 * locking (single encode thread), one branch when tracing is off.
 */
struct StageAccum {
    uint64_t ns[kNumStages] = {};

    void
    reset()
    {
        for (uint64_t &v : ns)
            v = 0;
    }

    void
    add(Stage stage, uint64_t delta_ns)
    {
        ns[static_cast<int>(stage)] += delta_ns;
    }

    /** Fold another accumulator in (merging per-worker frame shares). */
    void
    addFrom(const StageAccum &other)
    {
        for (int i = 0; i < kNumStages; ++i)
            ns[i] += other.ns[i];
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (const uint64_t v : ns)
            t += v;
        return t;
    }
};

/** Per-stage seconds, the reportable form of accumulated spans. */
struct StageTotals {
    double seconds[kNumStages] = {};

    void
    add(Stage stage, double s)
    {
        seconds[static_cast<int>(stage)] += s;
    }

    void
    set(Stage stage, double s)
    {
        seconds[static_cast<int>(stage)] = s;
    }

    double
    get(Stage stage) const
    {
        return seconds[static_cast<int>(stage)];
    }

    /** Sum over leaf stages only (these partition traced time). */
    double
    leafSeconds() const
    {
        double t = 0;
        for (int i = 0; i < kNumStages; ++i)
            if (isLeafStage(static_cast<Stage>(i)))
                t += seconds[i];
        return t;
    }

    /** Per-stage difference (for before/after tracer snapshots). */
    StageTotals
    minus(const StageTotals &earlier) const
    {
        StageTotals d;
        for (int i = 0; i < kNumStages; ++i)
            d.seconds[i] = seconds[i] - earlier.seconds[i];
        return d;
    }
};

} // namespace vbench::obs
