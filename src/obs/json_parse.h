#pragma once

/**
 * @file
 * A deliberately small recursive-descent JSON parser, shared by the
 * tests and the `obs_lint` schema gate to round-trip the
 * observability subsystem's emitted JSON (Chrome traces, metrics
 * dumps, run reports). Rejects trailing garbage; accepts the full
 * value grammar the emitters can produce: objects, arrays, strings
 * with escapes, numbers, true/false/null. Output stays hand-rolled
 * (obs/json.h); this parser exists so the emitters can be validated
 * without a third-party JSON dependency.
 */

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vbench::obs::jsonlite {

struct Value {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    /** Parse the whole input as one value; nullopt on any error. */
    std::optional<Value>
    parse()
    {
        std::optional<Value> v = parseValue();
        skipSpace();
        if (!v || pos_ != text_.size())
            return std::nullopt;
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    std::optional<Value>
    parseValue()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return std::nullopt;
        const char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            if (!literal("null"))
                return std::nullopt;
            return Value{};
        }
        return parseNumber();
    }

    std::optional<Value>
    parseObject()
    {
        if (!consume('{'))
            return std::nullopt;
        Value v;
        v.kind = Value::Kind::Object;
        skipSpace();
        if (consume('}'))
            return v;
        while (true) {
            skipSpace();
            std::optional<Value> key = parseString();
            if (!key || !consume(':'))
                return std::nullopt;
            std::optional<Value> member = parseValue();
            if (!member)
                return std::nullopt;
            v.object.emplace(std::move(key->string), std::move(*member));
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            return std::nullopt;
        }
    }

    std::optional<Value>
    parseArray()
    {
        if (!consume('['))
            return std::nullopt;
        Value v;
        v.kind = Value::Kind::Array;
        skipSpace();
        if (consume(']'))
            return v;
        while (true) {
            std::optional<Value> element = parseValue();
            if (!element)
                return std::nullopt;
            v.array.push_back(std::move(*element));
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            return std::nullopt;
        }
    }

    std::optional<Value>
    parseString()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return std::nullopt;
        ++pos_;
        Value v;
        v.kind = Value::Kind::String;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.string += c;
                continue;
            }
            if (pos_ >= text_.size())
                return std::nullopt;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': v.string += '"'; break;
              case '\\': v.string += '\\'; break;
              case '/': v.string += '/'; break;
              case 'b': v.string += '\b'; break;
              case 'f': v.string += '\f'; break;
              case 'n': v.string += '\n'; break;
              case 'r': v.string += '\r'; break;
              case 't': v.string += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return std::nullopt;
                // Tests only emit control characters this way; decode
                // the code unit as a single byte (enough for < 0x80).
                const std::string hex(text_.substr(pos_, 4));
                pos_ += 4;
                v.string += static_cast<char>(
                    std::strtoul(hex.c_str(), nullptr, 16));
                break;
              }
              default: return std::nullopt;
            }
        }
        return std::nullopt;
    }

    std::optional<Value>
    parseBool()
    {
        Value v;
        v.kind = Value::Kind::Bool;
        if (literal("true")) {
            v.boolean = true;
            return v;
        }
        if (literal("false")) {
            v.boolean = false;
            return v;
        }
        return std::nullopt;
    }

    std::optional<Value>
    parseNumber()
    {
        const size_t begin = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == begin)
            return std::nullopt;
        const std::string token(text_.substr(begin, pos_ - begin));
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return std::nullopt;
        Value v;
        v.kind = Value::Kind::Number;
        v.number = parsed;
        return v;
    }

    std::string_view text_;
    size_t pos_ = 0;
};

inline std::optional<Value>
parse(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace vbench::obs::jsonlite

namespace vbench {
/// Back-compat alias: the parser began life as a test-only utility
/// (tests/obs/json_test_util.h) and the tests still say `testjson::`.
namespace testjson = obs::jsonlite;
} // namespace vbench
