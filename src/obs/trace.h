#pragma once

/**
 * @file
 * Low-overhead stage tracing. A Tracer collects finished spans
 * (thread-safe, append-only) and exports them as Chrome trace_event
 * JSON loadable in chrome://tracing or https://ui.perfetto.dev. The
 * codecs never pay more than one predictable branch per instrumentation
 * point when no tracer is attached — the same contract as the null
 * UarchProbe.
 *
 * Two recording styles:
 *  - ScopedSpan: a real span with its own begin/end timestamps
 *    (driver phases, per-frame decoder work).
 *  - ScopedStage + Tracer::addFrame: per-stage accumulation inside a
 *    frame. Encoder stages interleave at macroblock granularity, so
 *    each frame accumulates per-stage nanoseconds locally and commits
 *    once; the exporter lays the stages out sequentially inside the
 *    frame span and adds an `other` filler so the children exactly
 *    tile their frame.
 */

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/stage.h"

namespace vbench::obs {

/** One finished span. */
struct TraceEvent {
    Stage stage = Stage::Other;
    Track track = Track::Transcode;
    int32_t frame = -1;      ///< frame index, -1 when not frame-keyed
    bool synthetic = false;  ///< laid out inside a frame, not measured
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
};

/** Thread-safe span collector + Chrome-trace exporter. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record one finished span. Leaf stages count toward totals. */
    void addSpan(Track track, Stage stage, int32_t frame,
                 uint64_t start_ns, uint64_t end_ns);

    /**
     * Commit one encoded frame: a frame-long span plus one synthetic
     * child per nonzero stage in `accum`, with an `other` filler for
     * unattributed frame time. All children are leaf stages and sum
     * exactly to the frame duration.
     */
    void addFrame(Track track, int32_t frame, uint64_t start_ns,
                  uint64_t end_ns, const StageAccum &accum);

    /**
     * Append every span of `other` (and fold its stage totals) into
     * this tracer. This is how the parallel scheduler's per-worker
     * timelines land in the process-wide trace: workers record into
     * private tracers (single writer each) and the batch merges them
     * when it completes. Timestamps are absolute monotonic ns, so the
     * merged timeline interleaves correctly without adjustment.
     */
    void mergeFrom(const Tracer &other);

    /** Snapshot of per-stage accumulated seconds. */
    StageTotals stageTotals() const;

    size_t eventCount() const;

    void clear();

    /** Chrome trace_event JSON (object form, `traceEvents` array). */
    void writeChromeTrace(std::ostream &out) const;

    /** writeChromeTrace to a file; false if the file can't open. */
    bool writeChromeTraceFile(const std::string &path) const;

  private:
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    uint64_t totals_ns_[kNumStages] = {};
};

/**
 * RAII span: records [construction, destruction) on a tracer. Null
 * tracer = one branch, no clock read.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer *tracer, Track track, Stage stage,
               int32_t frame = -1)
        : tracer_(tracer)
    {
        if (tracer_) {
            track_ = track;
            stage_ = stage;
            frame_ = frame;
            start_ns_ = nowNs();
        }
    }

    ~ScopedSpan()
    {
        if (tracer_)
            tracer_->addSpan(track_, stage_, frame_, start_ns_, nowNs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *tracer_;
    Track track_ = Track::Transcode;
    Stage stage_ = Stage::Other;
    int32_t frame_ = -1;
    uint64_t start_ns_ = 0;
};

/**
 * RAII stage timer accumulating into a per-frame StageAccum. Null
 * accumulator = one branch, no clock read, no allocation. Instrumented
 * regions must not nest (nesting double-counts); scopes sit at call
 * sites, never inside shared helpers.
 */
class ScopedStage
{
  public:
    ScopedStage(StageAccum *accum, Stage stage) : accum_(accum)
    {
        if (accum_) {
            stage_ = stage;
            start_ns_ = nowNs();
        }
    }

    ~ScopedStage()
    {
        if (accum_)
            accum_->add(stage_, nowNs() - start_ns_);
    }

    ScopedStage(const ScopedStage &) = delete;
    ScopedStage &operator=(const ScopedStage &) = delete;

  private:
    StageAccum *accum_;
    Stage stage_ = Stage::Other;
    uint64_t start_ns_ = 0;
};

} // namespace vbench::obs
