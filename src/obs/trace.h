#pragma once

/**
 * @file
 * Low-overhead stage tracing. A Tracer collects finished spans
 * (thread-safe, append-only) and exports them as Chrome trace_event
 * JSON loadable in chrome://tracing or https://ui.perfetto.dev. The
 * codecs never pay more than one predictable branch per instrumentation
 * point when no tracer is attached — the same contract as the null
 * UarchProbe.
 *
 * Three recording styles:
 *  - ScopedSpan: a real span with its own begin/end timestamps
 *    (driver phases, per-frame decoder work).
 *  - ScopedStage + Tracer::addFrame: per-stage accumulation inside a
 *    frame. Encoder stages interleave at macroblock granularity, so
 *    each frame accumulates per-stage nanoseconds locally and commits
 *    once; the exporter lays the stages out sequentially inside the
 *    frame span and adds an `other` filler so the children exactly
 *    tile their frame.
 *  - addScope / addFlow: request-scoped distributed tracing. A scope
 *    is a named span carrying a SpanContext (trace / span / parent
 *    ids) and an explicit export row (`tid`), so one service request
 *    renders as a single connected tree; flow events draw the arrows
 *    that bind a dispatch point on one thread row to the execution
 *    slice on another (Chrome `ph:"s"` / `ph:"f"`).
 */

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/span.h"
#include "obs/stage.h"

namespace vbench::obs {

/** One finished span. */
struct TraceEvent {
    Stage stage = Stage::Other;
    Track track = Track::Transcode;
    int32_t frame = -1;      ///< frame index, -1 when not frame-keyed
    bool synthetic = false;  ///< laid out inside a frame, not measured
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
};

/**
 * Export rows ("thread" ids in the Chrome trace) are partitioned:
 * rows 1..kNumTracks belong to the fixed Track enum, kServiceTid is
 * the service dispatcher timeline, workerTid(w) the scheduler
 * workers, requestTid(id) one row per traced service request (its
 * span tree renders as one self-contained lane), and fleetTid(w) one
 * row per modeled fleet worker (placement bookings).
 */
inline constexpr int32_t kServiceTid = 8;

inline constexpr int32_t
workerTid(int worker)
{
    return 16 + worker;
}

inline constexpr int32_t
fleetTid(int worker)
{
    return 600 + worker;
}

/**
 * One row per rpc child-process worker slot (docs/RPC.md): the
 * supervisor records each winning attempt's encode slice and the
 * dispatch flow-arrow end here, named with the child's pid and tier.
 */
inline constexpr int32_t
rpcTid(int worker)
{
    return 768 + worker;
}

inline constexpr int32_t
requestTid(uint64_t request_id)
{
    return 1024 + static_cast<int32_t>(request_id % 4096);
}

/**
 * One finished request-scoped span: a named slice on an explicit
 * export row, stamped with its SpanContext so tooling (and the
 * exemplar store) can reconnect the tree across threads.
 */
struct ScopeEvent {
    std::string name;
    SpanContext span;
    int32_t tid = kServiceTid;
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
};

/**
 * One end of a flow arrow. The pair with the same `flow_id` binds the
 * enclosing slice at (`tid`, `ts_ns`) on the begin side to the one on
 * the end side — this is how an admission-queue dispatch on the
 * service row points at the segment encode on a worker row.
 */
struct FlowEvent {
    std::string name;
    uint64_t flow_id = 0;
    int32_t tid = kServiceTid;
    uint64_t ts_ns = 0;
    bool begin = true;  ///< true: source (`ph:"s"`), false: sink (`ph:"f"`)
};

/** Thread-safe span collector + Chrome-trace exporter. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record one finished span. Leaf stages count toward totals. */
    void addSpan(Track track, Stage stage, int32_t frame,
                 uint64_t start_ns, uint64_t end_ns);

    /**
     * Commit one encoded frame: a frame-long span plus one synthetic
     * child per nonzero stage in `accum`, with an `other` filler for
     * unattributed frame time. All children are leaf stages and sum
     * exactly to the frame duration.
     */
    void addFrame(Track track, int32_t frame, uint64_t start_ns,
                  uint64_t end_ns, const StageAccum &accum);

    /**
     * Record one finished request-scoped span. Scopes with an invalid
     * SpanContext are dropped (the one-branch null contract extends to
     * "no request id").
     */
    void addScope(ScopeEvent scope);

    /** Record one end of a flow arrow (see FlowEvent). */
    void addFlow(FlowEvent flow);

    /**
     * Name an export row (Chrome `thread_name` metadata). Rows
     * 1..kNumTracks are pre-named after the Track enum; callers
     * register service / worker / request rows once before or after
     * recording into them. Re-registration overwrites.
     */
    void nameRow(int32_t tid, std::string name);

    /**
     * Append every span of `other` (and fold its stage totals) into
     * this tracer. This is how the parallel scheduler's per-worker
     * timelines land in the process-wide trace: workers record into
     * private tracers (single writer each) and the batch merges them
     * when it completes. Timestamps are absolute monotonic ns, so the
     * merged timeline interleaves correctly without adjustment.
     */
    void mergeFrom(const Tracer &other);

    /** Snapshot of per-stage accumulated seconds. */
    StageTotals stageTotals() const;

    size_t eventCount() const;

    /** Snapshot of the recorded raw spans (stage + timing). */
    std::vector<TraceEvent> traceEvents() const;

    /** Snapshot of the recorded request-scoped spans. */
    std::vector<ScopeEvent> scopeEvents() const;

    /** Snapshot of the recorded flow-arrow ends. */
    std::vector<FlowEvent> flowEvents() const;

    void clear();

    /** Chrome trace_event JSON (object form, `traceEvents` array). */
    void writeChromeTrace(std::ostream &out) const;

    /** writeChromeTrace to a file; false if the file can't open. */
    bool writeChromeTraceFile(const std::string &path) const;

  private:
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::vector<ScopeEvent> scopes_;
    std::vector<FlowEvent> flows_;
    std::map<int32_t, std::string> row_names_;
    uint64_t totals_ns_[kNumStages] = {};
};

/**
 * RAII span: records [construction, destruction) on a tracer. Null
 * tracer = one branch, no clock read.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer *tracer, Track track, Stage stage,
               int32_t frame = -1)
        : tracer_(tracer)
    {
        if (tracer_) {
            track_ = track;
            stage_ = stage;
            frame_ = frame;
            start_ns_ = nowNs();
        }
    }

    ~ScopedSpan()
    {
        if (tracer_)
            tracer_->addSpan(track_, stage_, frame_, start_ns_, nowNs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *tracer_;
    Track track_ = Track::Transcode;
    Stage stage_ = Stage::Other;
    int32_t frame_ = -1;
    uint64_t start_ns_ = 0;
};

/**
 * RAII stage timer accumulating into a per-frame StageAccum. Null
 * accumulator = one branch, no clock read, no allocation. Instrumented
 * regions must not nest (nesting double-counts); scopes sit at call
 * sites, never inside shared helpers.
 */
class ScopedStage
{
  public:
    ScopedStage(StageAccum *accum, Stage stage) : accum_(accum)
    {
        if (accum_) {
            stage_ = stage;
            start_ns_ = nowNs();
        }
    }

    ~ScopedStage()
    {
        if (accum_)
            accum_->add(stage_, nowNs() - start_ns_);
    }

    ScopedStage(const ScopedStage &) = delete;
    ScopedStage &operator=(const ScopedStage &) = delete;

  private:
    StageAccum *accum_;
    Stage stage_ = Stage::Other;
    uint64_t start_ns_ = 0;
};

} // namespace vbench::obs
