#pragma once

/**
 * @file
 * Named counters and log-bucketed histograms. Counters are wrapping
 * uint64 atomics (overflow wraps modulo 2^64 by design). Histograms
 * bucket by powers of two with 8 linear sub-buckets per octave, so any
 * percentile is recovered within 12.5% relative error without storing
 * samples. The registry hands out stable references and dumps in
 * stable (lexicographic) order as text or JSON.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include <utility>
#include <vector>

namespace vbench::obs {

/** Monotonic counter. add() is lock-free; overflow wraps mod 2^64. */
class Counter
{
  public:
    void
    add(uint64_t delta = 1) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * Log-bucketed histogram of uint64 samples. Values 0..7 get exact
 * buckets; larger values land in one of 8 linear sub-buckets of their
 * power-of-two octave. observe() is lock-free.
 */
class Histogram
{
  public:
    static constexpr int kSubBuckets = 8;
    /// 8 exact small-value buckets + 61 octaves ([2^3,2^64)) x 8 subs.
    static constexpr int kNumBuckets = 8 + 61 * kSubBuckets;

    void observe(uint64_t value) noexcept;

    uint64_t count() const noexcept;

    /** Sum of observed values (wraps mod 2^64 like Counter). */
    uint64_t sum() const noexcept;

    double mean() const noexcept;

    /**
     * Estimated value at percentile p (0..100), by linear
     * interpolation inside the covering bucket. 0 when empty.
     */
    double percentile(double p) const noexcept;

    /**
     * Estimated value at quantile q (0..1): valueAtQuantile(0.99) is
     * p99. Same estimator as percentile() — rank q*(n-1)+1 located in
     * the covering bucket, linearly interpolated across the bucket's
     * [lo, hi) value range — so a quantile that falls entirely inside
     * one bucket is exact at the bucket's resolution.
     *
     * Edge cases (pinned by tests/obs/test_metrics.cc):
     *  - empty histogram: 0 for every q, including 0 and 1;
     *  - q outside [0, 1]: clamped (q<0 behaves as 0, q>1 as 1);
     *  - q = NaN: 0 (an unanswerable query, not a sample estimate);
     *  - q = 0: rank 1, interpolated 1/c of the way across the first
     *    occupied bucket (count c) — inside that bucket, never below
     *    its low edge nor above its high edge;
     *  - q = 1: rank n, exactly the high edge of the last occupied
     *    bucket (the tightest upper bound the buckets can state);
     *  - single sample: every q has rank 1 in the sample's bucket and
     *    returns its high edge (for values < 8 buckets are unit-width,
     *    so a lone observe(3) reports 4 at every quantile) — the
     *    estimator answers at bucket resolution, not sample identity.
     */
    double valueAtQuantile(double q) const noexcept;

    /**
     * Fold another histogram's samples into this one (bucket-wise
     * addition). Lock-free on both sides; concurrent observe() calls
     * on either histogram are safe but may or may not be included.
     */
    void mergeFrom(const Histogram &other) noexcept;

    /** Observed sample count in one bucket (exposed for merge/tests). */
    uint64_t bucketCount(int index) const noexcept;

    /** Bucket index for a value (exposed for tests). */
    static int bucketIndex(uint64_t value) noexcept;

    /** Inclusive lower bound of a bucket (exposed for tests). */
    static uint64_t bucketLo(int index) noexcept;

    /** Exclusive upper bound of a bucket (exposed for tests). */
    static uint64_t bucketHi(int index) noexcept;

  private:
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/**
 * Point-in-time copy of a registry's contents, in stable
 * (lexicographic) name order. This is the read side external
 * exporters (the Prometheus writer, run reports) consume so they
 * never hold the registry lock while formatting.
 */
struct MetricsSnapshot {
    struct HistogramStats {
        std::string name;
        uint64_t count = 0;
        uint64_t sum = 0;
        double mean = 0;
        double p50 = 0;
        double p90 = 0;
        double p99 = 0;
    };

    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<HistogramStats> histograms;
};

/**
 * Thread-safe name -> metric registry. Lookup takes a lock; the
 * returned references stay valid for the registry's lifetime, so hot
 * paths resolve once and then add lock-free.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** `counter <name> <value>` / `histogram <name> ...` lines, sorted. */
    void writeText(std::ostream &out) const;

    /** One JSON object: {"counters":{...},"histograms":{...}}. */
    void writeJson(std::ostream &out) const;

    /** Copy out every metric's current value (see MetricsSnapshot). */
    MetricsSnapshot snapshot() const;

    /**
     * Fold every metric of `other` into this registry, creating
     * missing names. This is the shard-merge primitive the parallel
     * scheduler uses: each worker records into a private registry and
     * the batch merges the shards when it completes, so per-run
     * counters never interleave mid-transcode. `other` must not be
     * concurrently destroyed; concurrent writers on either side are
     * safe (their updates land in whichever side they hit first).
     */
    void mergeFrom(const MetricsRegistry &other);

    /** Drop all metrics (test isolation). */
    void reset();

    size_t size() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace vbench::obs
