#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/json.h"

namespace vbench::obs {

void
Tracer::addSpan(Track track, Stage stage, int32_t frame,
                uint64_t start_ns, uint64_t end_ns)
{
    const uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(TraceEvent{stage, track, frame, false, start_ns, dur});
    if (isLeafStage(stage))
        totals_ns_[static_cast<int>(stage)] += dur;
}

void
Tracer::addFrame(Track track, int32_t frame, uint64_t start_ns,
                 uint64_t end_ns, const StageAccum &accum)
{
    const uint64_t frame_dur = end_ns > start_ns ? end_ns - start_ns : 0;
    // Children tile the frame: accumulated stages in enum order, then
    // an `other` filler for loop glue the stage scopes didn't cover.
    uint64_t attributed = 0;
    for (int i = 0; i < kNumStages; ++i)
        if (isLeafStage(static_cast<Stage>(i)))
            attributed += accum.ns[i];
    attributed = std::min(attributed, frame_dur);
    const uint64_t other = frame_dur - attributed;

    std::lock_guard<std::mutex> lock(mu_);
    // The frame-long parent span (not a leaf: children carry the time).
    events_.push_back(
        TraceEvent{Stage::Other, track, frame, false, start_ns, frame_dur});
    events_.back().synthetic = false;
    // Overwrite the parent's stage marker: frames render by name only,
    // so reuse Other but mark it via frame>=0 + non-synthetic parent
    // position (the exporter names it "frame").
    uint64_t cursor = start_ns;
    auto child = [&](Stage stage, uint64_t ns) {
        if (ns == 0)
            return;
        events_.push_back(
            TraceEvent{stage, track, frame, true, cursor, ns});
        totals_ns_[static_cast<int>(stage)] += ns;
        cursor += ns;
    };
    for (int i = 0; i < kNumStages; ++i) {
        const Stage stage = static_cast<Stage>(i);
        if (isLeafStage(stage) && stage != Stage::Other)
            child(stage, std::min<uint64_t>(accum.ns[i],
                                            start_ns + frame_dur - cursor));
    }
    child(Stage::Other, other);
}

void
Tracer::addScope(ScopeEvent scope)
{
    if (!scope.span.valid())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    scopes_.push_back(std::move(scope));
}

void
Tracer::addFlow(FlowEvent flow)
{
    if (flow.flow_id == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    flows_.push_back(std::move(flow));
}

void
Tracer::nameRow(int32_t tid, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    row_names_[tid] = std::move(name);
}

void
Tracer::mergeFrom(const Tracer &other)
{
    // Snapshot under the source lock, append under ours: never holding
    // both, so concurrent cross-merges cannot deadlock.
    std::vector<TraceEvent> events;
    std::vector<ScopeEvent> scopes;
    std::vector<FlowEvent> flows;
    std::map<int32_t, std::string> row_names;
    uint64_t totals[kNumStages];
    {
        std::lock_guard<std::mutex> lock(other.mu_);
        events = other.events_;
        scopes = other.scopes_;
        flows = other.flows_;
        row_names = other.row_names_;
        for (int i = 0; i < kNumStages; ++i)
            totals[i] = other.totals_ns_[i];
    }
    std::lock_guard<std::mutex> lock(mu_);
    events_.insert(events_.end(), events.begin(), events.end());
    scopes_.insert(scopes_.end(),
                   std::make_move_iterator(scopes.begin()),
                   std::make_move_iterator(scopes.end()));
    flows_.insert(flows_.end(), std::make_move_iterator(flows.begin()),
                  std::make_move_iterator(flows.end()));
    for (auto &[tid, name] : row_names)
        row_names_[tid] = std::move(name);
    for (int i = 0; i < kNumStages; ++i)
        totals_ns_[i] += totals[i];
}

StageTotals
Tracer::stageTotals() const
{
    StageTotals t;
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < kNumStages; ++i)
        t.seconds[i] = static_cast<double>(totals_ns_[i]) * 1e-9;
    return t;
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size() + scopes_.size() + flows_.size();
}

std::vector<TraceEvent>
Tracer::traceEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::vector<ScopeEvent>
Tracer::scopeEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return scopes_;
}

std::vector<FlowEvent>
Tracer::flowEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return flows_;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    scopes_.clear();
    flows_.clear();
    row_names_.clear();
    for (uint64_t &v : totals_ns_)
        v = 0;
}

void
Tracer::writeChromeTrace(std::ostream &out) const
{
    std::vector<TraceEvent> events;
    std::vector<ScopeEvent> scopes;
    std::vector<FlowEvent> flows;
    std::map<int32_t, std::string> row_names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        events = events_;
        scopes = scopes_;
        flows = flows_;
        row_names = row_names_;
    }
    uint64_t origin = UINT64_MAX;
    for (const TraceEvent &e : events)
        origin = std::min(origin, e.start_ns);
    for (const ScopeEvent &s : scopes)
        origin = std::min(origin, s.start_ns);
    for (const FlowEvent &f : flows)
        origin = std::min(origin, f.ts_ns);
    if (origin == UINT64_MAX)
        origin = 0;
    const auto micros = [origin](uint64_t ns) {
        return jsonNumber(static_cast<double>(ns - origin) / 1e3);
    };

    out << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",";
        first = false;
    };
    // Name the track rows, then any registered service / worker /
    // request rows.
    for (int t = 0; t < kNumTracks; ++t) {
        sep();
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
            << t + 1 << ",\"args\":{\"name\":"
            << jsonString(toString(static_cast<Track>(t))) << "}}";
    }
    for (const auto &[tid, name] : row_names) {
        sep();
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
            << tid << ",\"args\":{\"name\":" << jsonString(name) << "}}";
    }
    for (const TraceEvent &e : events) {
        sep();
        // A frame parent is the non-synthetic frame-keyed event a
        // stage-accumulating track commits; render it as "frame".
        const bool is_frame_parent =
            !e.synthetic && e.frame >= 0 && e.stage == Stage::Other;
        const char *name =
            is_frame_parent ? "frame" : toString(e.stage);
        const char *cat = is_frame_parent
            ? "frame"
            : (isLeafStage(e.stage) ? "stage" : "phase");
        out << "{\"name\":" << jsonString(name) << ",\"cat\":\"" << cat
            << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
            << static_cast<int>(e.track) + 1 << ",\"ts\":"
            << micros(e.start_ns) << ",\"dur\":"
            << jsonNumber(static_cast<double>(e.dur_ns) / 1e3);
        if (e.frame >= 0)
            out << ",\"args\":{\"frame\":" << e.frame << "}";
        out << "}";
    }
    // Request-scoped spans carry their SpanContext in args so tooling
    // (and humans grepping for an exemplar's trace_id) can reconnect
    // the tree.
    for (const ScopeEvent &s : scopes) {
        sep();
        out << "{\"name\":" << jsonString(s.name)
            << ",\"cat\":\"request\",\"ph\":\"X\",\"pid\":1,\"tid\":"
            << s.tid << ",\"ts\":" << micros(s.start_ns) << ",\"dur\":"
            << jsonNumber(static_cast<double>(s.dur_ns) / 1e3)
            << ",\"args\":{\"trace_id\":" << s.span.trace_id
            << ",\"span_id\":" << s.span.span_id << ",\"parent_id\":"
            << s.span.parent_id << "}}";
    }
    // Flow arrows: the begin/end pair shares `id`; Perfetto binds each
    // end to the slice enclosing its (tid, ts).
    for (const FlowEvent &f : flows) {
        sep();
        out << "{\"name\":" << jsonString(f.name)
            << ",\"cat\":\"flow\",\"ph\":\"" << (f.begin ? "s" : "f")
            << "\"" << (f.begin ? "" : ",\"bp\":\"e\"")
            << ",\"id\":" << f.flow_id << ",\"pid\":1,\"tid\":" << f.tid
            << ",\"ts\":" << micros(f.ts_ns) << "}";
    }
    out << "]}";
}

bool
Tracer::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writeChromeTrace(out);
    out << "\n";
    return static_cast<bool>(out);
}

} // namespace vbench::obs
