#pragma once

/**
 * @file
 * Process-wide observability configuration, read once from the
 * environment:
 *
 *   VBENCH_TRACE=<path>        enable tracing; Chrome trace JSON is
 *                              written to <path> at process exit (or
 *                              at an explicit flushGlobal()).
 *   VBENCH_METRICS_OUT=<path>  enable run reports; each transcode /
 *                              bench run appends one JSON document per
 *                              line to <path> ("-" for stdout).
 *
 * When neither variable is set, globalTracer() is null and every
 * instrumentation point costs one predictable branch.
 */

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vbench::obs {

struct ObsConfig {
    bool trace_enabled = false;
    std::string trace_path;
    std::string metrics_path;
};

/** Parse the observability environment (pure read, no caching). */
ObsConfig parseEnvConfig();

/** The cached process-wide configuration (parsed on first call). */
const ObsConfig &config();

/**
 * The process-wide tracer, or nullptr when VBENCH_TRACE is unset.
 * First call with tracing enabled registers an atexit flush.
 */
Tracer *globalTracer();

/** The process-wide metrics registry (always available). */
MetricsRegistry &globalMetrics();

/** True when VBENCH_METRICS_OUT is set. */
bool metricsEnabled();

/** Write the global trace file now (no-op when tracing is off). */
void flushGlobal();

} // namespace vbench::obs
