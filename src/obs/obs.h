#pragma once

/**
 * @file
 * Process-wide observability configuration, read once from the
 * environment:
 *
 *   VBENCH_TRACE=<path>        enable tracing; Chrome trace JSON is
 *                              written to <path> at process exit (or
 *                              at an explicit flushGlobal()).
 *   VBENCH_METRICS_OUT=<path>  enable run reports; each transcode /
 *                              bench run appends one JSON document per
 *                              line to <path> ("-" for stdout).
 *
 * When neither variable is set, globalTracer() is null and every
 * instrumentation point costs one predictable branch.
 *
 * Concurrency contract: recording into the global tracer / registry is
 * thread-safe (mutex / atomics), but *attribution* via totals deltas —
 * the pattern core::transcode() uses to carve its leaf-stage share out
 * of a shared tracer — assumes a single writer: two transcodes
 * recording into the same tracer concurrently would each see the
 * other's leaf time in their delta. Code that runs encoders in
 * parallel must therefore give every worker its own Tracer /
 * MetricsRegistry and fold the shards into the globals afterwards with
 * mergeFrom() (this is exactly what sched::Scheduler does). The global
 * fallback remains correct for the serial, single-writer case only.
 */

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vbench::obs {

struct ObsConfig {
    bool trace_enabled = false;
    std::string trace_path;
    std::string metrics_path;
};

/** Parse the observability environment (pure read, no caching). */
ObsConfig parseEnvConfig();

/** The cached process-wide configuration (parsed on first call). */
const ObsConfig &config();

/**
 * The process-wide tracer, or nullptr when VBENCH_TRACE is unset.
 * First call with tracing enabled registers an atexit flush.
 */
Tracer *globalTracer();

/** The process-wide metrics registry (always available). */
MetricsRegistry &globalMetrics();

/** True when VBENCH_METRICS_OUT is set. */
bool metricsEnabled();

/** Write the global trace file now (no-op when tracing is off). */
void flushGlobal();

} // namespace vbench::obs
