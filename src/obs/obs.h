#pragma once

/**
 * @file
 * Process-wide observability configuration, read once from the
 * environment:
 *
 *   VBENCH_TRACE=<path>        enable tracing; Chrome trace JSON is
 *                              written to <path> at process exit (or
 *                              at an explicit flushGlobal()).
 *   VBENCH_METRICS_OUT=<path>  enable run reports; each transcode /
 *                              bench run appends one JSON document per
 *                              line to <path> ("-" for stdout).
 *   VBENCH_PROM_OUT=<path>     enable Prometheus snapshots; the
 *                              service (and flushGlobal()) writes an
 *                              OpenMetrics text exposition of the
 *                              global metrics to <path>.
 *
 * When neither variable is set, globalTracer() is null and every
 * instrumentation point costs one predictable branch.
 *
 * Concurrency contract: recording into the global tracer / registry is
 * thread-safe (mutex / atomics), but *attribution* via totals deltas —
 * the pattern core::transcode() uses to carve its leaf-stage share out
 * of a shared tracer — assumes a single writer: two transcodes
 * recording into the same tracer concurrently would each see the
 * other's leaf time in their delta. Code that runs encoders in
 * parallel must therefore give every worker its own Tracer /
 * MetricsRegistry and fold the shards into the globals afterwards with
 * mergeFrom() (this is exactly what sched::Scheduler does). The global
 * fallback remains correct for the serial, single-writer case only.
 */

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vbench::obs {

struct ObsConfig {
    bool trace_enabled = false;
    std::string trace_path;
    std::string metrics_path;
    std::string prom_path;
};

/** Parse the observability environment (pure read, no caching). */
ObsConfig parseEnvConfig();

/** The cached process-wide configuration (parsed on first call). */
const ObsConfig &config();

/**
 * The process-wide tracer, or nullptr when VBENCH_TRACE is unset.
 * First call with tracing enabled registers an atexit flush.
 */
Tracer *globalTracer();

/** The process-wide metrics registry (always available). */
MetricsRegistry &globalMetrics();

/** True when VBENCH_METRICS_OUT is set. */
bool metricsEnabled();

/** True when VBENCH_PROM_OUT is set. */
bool promEnabled();

/**
 * Note that a Prometheus snapshot was already written to the
 * VBENCH_PROM_OUT path this process. The service calls this after
 * writing its exposition (which includes live gauge samples) so the
 * atexit flushGlobal() doesn't clobber it with the gauge-less global
 * registry.
 */
void markPromWritten();

/**
 * Write the global trace file and Prometheus snapshot now (each a
 * no-op when its variable is off; the prom write also defers to a
 * snapshot already written via markPromWritten()).
 */
void flushGlobal();

/**
 * Scoped claim on the global single-writer attribution channel (see
 * the concurrency contract above). core::transcode() enters it while
 * attributing leaf-stage deltas against the global tracer / registry;
 * a second concurrent claimant means two encoders are racing the
 * global fallback, so the guard records `obs.fallback_contended` in
 * the global registry and reports the contention. The guard never
 * blocks — detection, not exclusion — because the racy numbers are
 * still bounded garbage while an added lock would serialize encoders.
 */
class GlobalAttributionGuard
{
  public:
    /** `active` = this scope really uses the global fallback. */
    explicit GlobalAttributionGuard(bool active);
    ~GlobalAttributionGuard();

    GlobalAttributionGuard(const GlobalAttributionGuard &) = delete;
    GlobalAttributionGuard &operator=(const GlobalAttributionGuard &) =
        delete;

    /** True when another claimant was already inside on entry. */
    bool contended() const { return contended_; }

    /** Claimants currently inside (exposed for tests). */
    static int activeClaimants();

  private:
    bool active_ = false;
    bool contended_ = false;
};

} // namespace vbench::obs
