file(REMOVE_RECURSE
  "CMakeFiles/vbench_uarch.dir/branch.cc.o"
  "CMakeFiles/vbench_uarch.dir/branch.cc.o.d"
  "CMakeFiles/vbench_uarch.dir/cache.cc.o"
  "CMakeFiles/vbench_uarch.dir/cache.cc.o.d"
  "CMakeFiles/vbench_uarch.dir/kernels.cc.o"
  "CMakeFiles/vbench_uarch.dir/kernels.cc.o.d"
  "CMakeFiles/vbench_uarch.dir/simd.cc.o"
  "CMakeFiles/vbench_uarch.dir/simd.cc.o.d"
  "CMakeFiles/vbench_uarch.dir/topdown.cc.o"
  "CMakeFiles/vbench_uarch.dir/topdown.cc.o.d"
  "CMakeFiles/vbench_uarch.dir/tracesim.cc.o"
  "CMakeFiles/vbench_uarch.dir/tracesim.cc.o.d"
  "libvbench_uarch.a"
  "libvbench_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
