file(REMOVE_RECURSE
  "libvbench_uarch.a"
)
