
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cc" "src/uarch/CMakeFiles/vbench_uarch.dir/branch.cc.o" "gcc" "src/uarch/CMakeFiles/vbench_uarch.dir/branch.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/vbench_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/vbench_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/kernels.cc" "src/uarch/CMakeFiles/vbench_uarch.dir/kernels.cc.o" "gcc" "src/uarch/CMakeFiles/vbench_uarch.dir/kernels.cc.o.d"
  "/root/repo/src/uarch/simd.cc" "src/uarch/CMakeFiles/vbench_uarch.dir/simd.cc.o" "gcc" "src/uarch/CMakeFiles/vbench_uarch.dir/simd.cc.o.d"
  "/root/repo/src/uarch/topdown.cc" "src/uarch/CMakeFiles/vbench_uarch.dir/topdown.cc.o" "gcc" "src/uarch/CMakeFiles/vbench_uarch.dir/topdown.cc.o.d"
  "/root/repo/src/uarch/tracesim.cc" "src/uarch/CMakeFiles/vbench_uarch.dir/tracesim.cc.o" "gcc" "src/uarch/CMakeFiles/vbench_uarch.dir/tracesim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
