src/uarch/CMakeFiles/vbench_uarch.dir/topdown.cc.o: \
 /root/repo/src/uarch/topdown.cc /usr/include/stdc-predef.h \
 /root/repo/src/uarch/topdown.h
