# Empty dependencies file for vbench_uarch.
# This may be replaced when dependencies are built.
