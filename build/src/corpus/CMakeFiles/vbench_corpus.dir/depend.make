# Empty dependencies file for vbench_corpus.
# This may be replaced when dependencies are built.
