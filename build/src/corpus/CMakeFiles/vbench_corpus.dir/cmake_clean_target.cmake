file(REMOVE_RECURSE
  "libvbench_corpus.a"
)
