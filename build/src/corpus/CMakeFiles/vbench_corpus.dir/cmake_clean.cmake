file(REMOVE_RECURSE
  "CMakeFiles/vbench_corpus.dir/category.cc.o"
  "CMakeFiles/vbench_corpus.dir/category.cc.o.d"
  "CMakeFiles/vbench_corpus.dir/coverage.cc.o"
  "CMakeFiles/vbench_corpus.dir/coverage.cc.o.d"
  "CMakeFiles/vbench_corpus.dir/generator.cc.o"
  "CMakeFiles/vbench_corpus.dir/generator.cc.o.d"
  "CMakeFiles/vbench_corpus.dir/kmeans.cc.o"
  "CMakeFiles/vbench_corpus.dir/kmeans.cc.o.d"
  "libvbench_corpus.a"
  "libvbench_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
