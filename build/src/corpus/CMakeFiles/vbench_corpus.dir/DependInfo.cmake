
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/category.cc" "src/corpus/CMakeFiles/vbench_corpus.dir/category.cc.o" "gcc" "src/corpus/CMakeFiles/vbench_corpus.dir/category.cc.o.d"
  "/root/repo/src/corpus/coverage.cc" "src/corpus/CMakeFiles/vbench_corpus.dir/coverage.cc.o" "gcc" "src/corpus/CMakeFiles/vbench_corpus.dir/coverage.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/vbench_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/vbench_corpus.dir/generator.cc.o.d"
  "/root/repo/src/corpus/kmeans.cc" "src/corpus/CMakeFiles/vbench_corpus.dir/kmeans.cc.o" "gcc" "src/corpus/CMakeFiles/vbench_corpus.dir/kmeans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vbench_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
