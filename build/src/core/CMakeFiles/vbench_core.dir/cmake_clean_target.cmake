file(REMOVE_RECURSE
  "libvbench_core.a"
)
