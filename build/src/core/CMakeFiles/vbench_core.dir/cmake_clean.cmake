file(REMOVE_RECURSE
  "CMakeFiles/vbench_core.dir/reference.cc.o"
  "CMakeFiles/vbench_core.dir/reference.cc.o.d"
  "CMakeFiles/vbench_core.dir/report.cc.o"
  "CMakeFiles/vbench_core.dir/report.cc.o.d"
  "CMakeFiles/vbench_core.dir/scoring.cc.o"
  "CMakeFiles/vbench_core.dir/scoring.cc.o.d"
  "CMakeFiles/vbench_core.dir/transcoder.cc.o"
  "CMakeFiles/vbench_core.dir/transcoder.cc.o.d"
  "libvbench_core.a"
  "libvbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
