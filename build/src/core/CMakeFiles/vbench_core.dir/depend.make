# Empty dependencies file for vbench_core.
# This may be replaced when dependencies are built.
