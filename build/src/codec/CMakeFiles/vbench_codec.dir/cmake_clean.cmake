file(REMOVE_RECURSE
  "CMakeFiles/vbench_codec.dir/deblock.cc.o"
  "CMakeFiles/vbench_codec.dir/deblock.cc.o.d"
  "CMakeFiles/vbench_codec.dir/decoder.cc.o"
  "CMakeFiles/vbench_codec.dir/decoder.cc.o.d"
  "CMakeFiles/vbench_codec.dir/encoder.cc.o"
  "CMakeFiles/vbench_codec.dir/encoder.cc.o.d"
  "CMakeFiles/vbench_codec.dir/interp.cc.o"
  "CMakeFiles/vbench_codec.dir/interp.cc.o.d"
  "CMakeFiles/vbench_codec.dir/intra.cc.o"
  "CMakeFiles/vbench_codec.dir/intra.cc.o.d"
  "CMakeFiles/vbench_codec.dir/me.cc.o"
  "CMakeFiles/vbench_codec.dir/me.cc.o.d"
  "CMakeFiles/vbench_codec.dir/preset.cc.o"
  "CMakeFiles/vbench_codec.dir/preset.cc.o.d"
  "CMakeFiles/vbench_codec.dir/ratecontrol.cc.o"
  "CMakeFiles/vbench_codec.dir/ratecontrol.cc.o.d"
  "CMakeFiles/vbench_codec.dir/transform.cc.o"
  "CMakeFiles/vbench_codec.dir/transform.cc.o.d"
  "libvbench_codec.a"
  "libvbench_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
