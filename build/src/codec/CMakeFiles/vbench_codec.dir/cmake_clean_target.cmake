file(REMOVE_RECURSE
  "libvbench_codec.a"
)
