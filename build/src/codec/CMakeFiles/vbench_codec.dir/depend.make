# Empty dependencies file for vbench_codec.
# This may be replaced when dependencies are built.
