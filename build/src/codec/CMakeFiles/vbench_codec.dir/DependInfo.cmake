
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/deblock.cc" "src/codec/CMakeFiles/vbench_codec.dir/deblock.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/deblock.cc.o.d"
  "/root/repo/src/codec/decoder.cc" "src/codec/CMakeFiles/vbench_codec.dir/decoder.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/decoder.cc.o.d"
  "/root/repo/src/codec/encoder.cc" "src/codec/CMakeFiles/vbench_codec.dir/encoder.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/encoder.cc.o.d"
  "/root/repo/src/codec/interp.cc" "src/codec/CMakeFiles/vbench_codec.dir/interp.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/interp.cc.o.d"
  "/root/repo/src/codec/intra.cc" "src/codec/CMakeFiles/vbench_codec.dir/intra.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/intra.cc.o.d"
  "/root/repo/src/codec/me.cc" "src/codec/CMakeFiles/vbench_codec.dir/me.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/me.cc.o.d"
  "/root/repo/src/codec/preset.cc" "src/codec/CMakeFiles/vbench_codec.dir/preset.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/preset.cc.o.d"
  "/root/repo/src/codec/ratecontrol.cc" "src/codec/CMakeFiles/vbench_codec.dir/ratecontrol.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/ratecontrol.cc.o.d"
  "/root/repo/src/codec/transform.cc" "src/codec/CMakeFiles/vbench_codec.dir/transform.cc.o" "gcc" "src/codec/CMakeFiles/vbench_codec.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vbench_video.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/vbench_uarch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
