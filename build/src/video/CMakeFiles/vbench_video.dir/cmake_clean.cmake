file(REMOVE_RECURSE
  "CMakeFiles/vbench_video.dir/suite.cc.o"
  "CMakeFiles/vbench_video.dir/suite.cc.o.d"
  "CMakeFiles/vbench_video.dir/synth.cc.o"
  "CMakeFiles/vbench_video.dir/synth.cc.o.d"
  "CMakeFiles/vbench_video.dir/y4m.cc.o"
  "CMakeFiles/vbench_video.dir/y4m.cc.o.d"
  "libvbench_video.a"
  "libvbench_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
