# Empty dependencies file for vbench_video.
# This may be replaced when dependencies are built.
