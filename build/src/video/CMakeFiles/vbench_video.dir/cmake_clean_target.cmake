file(REMOVE_RECURSE
  "libvbench_video.a"
)
