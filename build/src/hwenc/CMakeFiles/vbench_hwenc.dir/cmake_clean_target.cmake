file(REMOVE_RECURSE
  "libvbench_hwenc.a"
)
