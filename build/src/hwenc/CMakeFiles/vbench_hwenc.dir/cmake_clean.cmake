file(REMOVE_RECURSE
  "CMakeFiles/vbench_hwenc.dir/hwenc.cc.o"
  "CMakeFiles/vbench_hwenc.dir/hwenc.cc.o.d"
  "libvbench_hwenc.a"
  "libvbench_hwenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_hwenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
