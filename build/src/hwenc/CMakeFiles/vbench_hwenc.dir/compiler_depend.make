# Empty compiler generated dependencies file for vbench_hwenc.
# This may be replaced when dependencies are built.
