
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ngc/ngc_decoder.cc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_decoder.cc.o" "gcc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_decoder.cc.o.d"
  "/root/repo/src/ngc/ngc_encoder.cc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_encoder.cc.o" "gcc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_encoder.cc.o.d"
  "/root/repo/src/ngc/ngc_intra.cc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_intra.cc.o" "gcc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_intra.cc.o.d"
  "/root/repo/src/ngc/ngc_profile.cc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_profile.cc.o" "gcc" "src/ngc/CMakeFiles/vbench_ngc.dir/ngc_profile.cc.o.d"
  "/root/repo/src/ngc/transform8.cc" "src/ngc/CMakeFiles/vbench_ngc.dir/transform8.cc.o" "gcc" "src/ngc/CMakeFiles/vbench_ngc.dir/transform8.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/vbench_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vbench_video.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/vbench_uarch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
