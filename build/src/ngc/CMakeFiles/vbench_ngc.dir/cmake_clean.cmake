file(REMOVE_RECURSE
  "CMakeFiles/vbench_ngc.dir/ngc_decoder.cc.o"
  "CMakeFiles/vbench_ngc.dir/ngc_decoder.cc.o.d"
  "CMakeFiles/vbench_ngc.dir/ngc_encoder.cc.o"
  "CMakeFiles/vbench_ngc.dir/ngc_encoder.cc.o.d"
  "CMakeFiles/vbench_ngc.dir/ngc_intra.cc.o"
  "CMakeFiles/vbench_ngc.dir/ngc_intra.cc.o.d"
  "CMakeFiles/vbench_ngc.dir/ngc_profile.cc.o"
  "CMakeFiles/vbench_ngc.dir/ngc_profile.cc.o.d"
  "CMakeFiles/vbench_ngc.dir/transform8.cc.o"
  "CMakeFiles/vbench_ngc.dir/transform8.cc.o.d"
  "libvbench_ngc.a"
  "libvbench_ngc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_ngc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
