# Empty compiler generated dependencies file for vbench_ngc.
# This may be replaced when dependencies are built.
