file(REMOVE_RECURSE
  "libvbench_ngc.a"
)
