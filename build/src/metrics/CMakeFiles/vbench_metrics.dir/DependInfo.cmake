
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/bdrate.cc" "src/metrics/CMakeFiles/vbench_metrics.dir/bdrate.cc.o" "gcc" "src/metrics/CMakeFiles/vbench_metrics.dir/bdrate.cc.o.d"
  "/root/repo/src/metrics/psnr.cc" "src/metrics/CMakeFiles/vbench_metrics.dir/psnr.cc.o" "gcc" "src/metrics/CMakeFiles/vbench_metrics.dir/psnr.cc.o.d"
  "/root/repo/src/metrics/ssim.cc" "src/metrics/CMakeFiles/vbench_metrics.dir/ssim.cc.o" "gcc" "src/metrics/CMakeFiles/vbench_metrics.dir/ssim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vbench_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
