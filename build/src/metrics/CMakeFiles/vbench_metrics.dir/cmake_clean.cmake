file(REMOVE_RECURSE
  "CMakeFiles/vbench_metrics.dir/bdrate.cc.o"
  "CMakeFiles/vbench_metrics.dir/bdrate.cc.o.d"
  "CMakeFiles/vbench_metrics.dir/psnr.cc.o"
  "CMakeFiles/vbench_metrics.dir/psnr.cc.o.d"
  "CMakeFiles/vbench_metrics.dir/ssim.cc.o"
  "CMakeFiles/vbench_metrics.dir/ssim.cc.o.d"
  "libvbench_metrics.a"
  "libvbench_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbench_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
