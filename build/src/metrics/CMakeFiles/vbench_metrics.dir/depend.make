# Empty dependencies file for vbench_metrics.
# This may be replaced when dependencies are built.
