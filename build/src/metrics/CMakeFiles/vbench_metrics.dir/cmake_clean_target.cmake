file(REMOVE_RECURSE
  "libvbench_metrics.a"
)
