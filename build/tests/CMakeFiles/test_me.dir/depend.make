# Empty dependencies file for test_me.
# This may be replaced when dependencies are built.
