file(REMOVE_RECURSE
  "CMakeFiles/test_me.dir/codec/test_me.cc.o"
  "CMakeFiles/test_me.dir/codec/test_me.cc.o.d"
  "test_me"
  "test_me.pdb"
  "test_me[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_me.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
