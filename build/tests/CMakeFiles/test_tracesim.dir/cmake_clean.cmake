file(REMOVE_RECURSE
  "CMakeFiles/test_tracesim.dir/uarch/test_tracesim.cc.o"
  "CMakeFiles/test_tracesim.dir/uarch/test_tracesim.cc.o.d"
  "test_tracesim"
  "test_tracesim.pdb"
  "test_tracesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
