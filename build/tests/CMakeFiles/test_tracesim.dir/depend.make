# Empty dependencies file for test_tracesim.
# This may be replaced when dependencies are built.
