file(REMOVE_RECURSE
  "CMakeFiles/test_plane.dir/video/test_plane.cc.o"
  "CMakeFiles/test_plane.dir/video/test_plane.cc.o.d"
  "test_plane"
  "test_plane.pdb"
  "test_plane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
