# Empty dependencies file for test_plane.
# This may be replaced when dependencies are built.
