# Empty compiler generated dependencies file for test_deblock.
# This may be replaced when dependencies are built.
