file(REMOVE_RECURSE
  "CMakeFiles/test_deblock.dir/codec/test_deblock.cc.o"
  "CMakeFiles/test_deblock.dir/codec/test_deblock.cc.o.d"
  "test_deblock"
  "test_deblock.pdb"
  "test_deblock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
