# Empty compiler generated dependencies file for test_codec_quality.
# This may be replaced when dependencies are built.
