file(REMOVE_RECURSE
  "CMakeFiles/test_codec_quality.dir/codec/test_codec_quality.cc.o"
  "CMakeFiles/test_codec_quality.dir/codec/test_codec_quality.cc.o.d"
  "test_codec_quality"
  "test_codec_quality.pdb"
  "test_codec_quality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
