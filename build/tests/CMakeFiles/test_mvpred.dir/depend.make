# Empty dependencies file for test_mvpred.
# This may be replaced when dependencies are built.
