file(REMOVE_RECURSE
  "CMakeFiles/test_mvpred.dir/codec/test_mvpred.cc.o"
  "CMakeFiles/test_mvpred.dir/codec/test_mvpred.cc.o.d"
  "test_mvpred"
  "test_mvpred.pdb"
  "test_mvpred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mvpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
