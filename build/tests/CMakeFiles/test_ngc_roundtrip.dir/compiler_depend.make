# Empty compiler generated dependencies file for test_ngc_roundtrip.
# This may be replaced when dependencies are built.
