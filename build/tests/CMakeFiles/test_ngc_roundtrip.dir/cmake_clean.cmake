file(REMOVE_RECURSE
  "CMakeFiles/test_ngc_roundtrip.dir/ngc/test_ngc_roundtrip.cc.o"
  "CMakeFiles/test_ngc_roundtrip.dir/ngc/test_ngc_roundtrip.cc.o.d"
  "test_ngc_roundtrip"
  "test_ngc_roundtrip.pdb"
  "test_ngc_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ngc_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
