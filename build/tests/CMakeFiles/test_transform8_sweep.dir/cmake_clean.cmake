file(REMOVE_RECURSE
  "CMakeFiles/test_transform8_sweep.dir/ngc/test_transform8_sweep.cc.o"
  "CMakeFiles/test_transform8_sweep.dir/ngc/test_transform8_sweep.cc.o.d"
  "test_transform8_sweep"
  "test_transform8_sweep.pdb"
  "test_transform8_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform8_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
