# Empty compiler generated dependencies file for test_transform8_sweep.
# This may be replaced when dependencies are built.
