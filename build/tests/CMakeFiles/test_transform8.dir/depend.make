# Empty dependencies file for test_transform8.
# This may be replaced when dependencies are built.
