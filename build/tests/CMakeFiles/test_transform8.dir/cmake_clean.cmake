file(REMOVE_RECURSE
  "CMakeFiles/test_transform8.dir/ngc/test_transform8.cc.o"
  "CMakeFiles/test_transform8.dir/ngc/test_transform8.cc.o.d"
  "test_transform8"
  "test_transform8.pdb"
  "test_transform8[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
