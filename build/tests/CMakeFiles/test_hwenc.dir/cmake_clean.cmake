file(REMOVE_RECURSE
  "CMakeFiles/test_hwenc.dir/hwenc/test_hwenc.cc.o"
  "CMakeFiles/test_hwenc.dir/hwenc/test_hwenc.cc.o.d"
  "test_hwenc"
  "test_hwenc.pdb"
  "test_hwenc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
