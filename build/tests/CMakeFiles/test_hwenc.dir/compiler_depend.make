# Empty compiler generated dependencies file for test_hwenc.
# This may be replaced when dependencies are built.
