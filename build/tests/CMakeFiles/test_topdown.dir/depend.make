# Empty dependencies file for test_topdown.
# This may be replaced when dependencies are built.
