# Empty dependencies file for test_ngc_residual.
# This may be replaced when dependencies are built.
