file(REMOVE_RECURSE
  "CMakeFiles/test_ngc_residual.dir/ngc/test_ngc_residual.cc.o"
  "CMakeFiles/test_ngc_residual.dir/ngc/test_ngc_residual.cc.o.d"
  "test_ngc_residual"
  "test_ngc_residual.pdb"
  "test_ngc_residual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ngc_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
