file(REMOVE_RECURSE
  "CMakeFiles/test_intra.dir/codec/test_intra.cc.o"
  "CMakeFiles/test_intra.dir/codec/test_intra.cc.o.d"
  "test_intra"
  "test_intra.pdb"
  "test_intra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
