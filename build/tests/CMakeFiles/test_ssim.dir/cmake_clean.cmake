file(REMOVE_RECURSE
  "CMakeFiles/test_ssim.dir/metrics/test_ssim.cc.o"
  "CMakeFiles/test_ssim.dir/metrics/test_ssim.cc.o.d"
  "test_ssim"
  "test_ssim.pdb"
  "test_ssim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
