# Empty dependencies file for test_rates.
# This may be replaced when dependencies are built.
