file(REMOVE_RECURSE
  "CMakeFiles/test_rates.dir/metrics/test_rates.cc.o"
  "CMakeFiles/test_rates.dir/metrics/test_rates.cc.o.d"
  "test_rates"
  "test_rates.pdb"
  "test_rates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
