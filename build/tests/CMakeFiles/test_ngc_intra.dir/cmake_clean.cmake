file(REMOVE_RECURSE
  "CMakeFiles/test_ngc_intra.dir/ngc/test_ngc_intra.cc.o"
  "CMakeFiles/test_ngc_intra.dir/ngc/test_ngc_intra.cc.o.d"
  "test_ngc_intra"
  "test_ngc_intra.pdb"
  "test_ngc_intra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ngc_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
