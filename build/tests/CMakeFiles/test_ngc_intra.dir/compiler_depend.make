# Empty compiler generated dependencies file for test_ngc_intra.
# This may be replaced when dependencies are built.
