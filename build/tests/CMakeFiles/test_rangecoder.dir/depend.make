# Empty dependencies file for test_rangecoder.
# This may be replaced when dependencies are built.
