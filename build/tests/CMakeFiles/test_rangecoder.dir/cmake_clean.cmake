file(REMOVE_RECURSE
  "CMakeFiles/test_rangecoder.dir/codec/test_rangecoder.cc.o"
  "CMakeFiles/test_rangecoder.dir/codec/test_rangecoder.cc.o.d"
  "test_rangecoder"
  "test_rangecoder.pdb"
  "test_rangecoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rangecoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
