file(REMOVE_RECURSE
  "CMakeFiles/test_syntax.dir/codec/test_syntax.cc.o"
  "CMakeFiles/test_syntax.dir/codec/test_syntax.cc.o.d"
  "test_syntax"
  "test_syntax.pdb"
  "test_syntax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syntax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
