file(REMOVE_RECURSE
  "CMakeFiles/test_rc_convergence.dir/codec/test_rc_convergence.cc.o"
  "CMakeFiles/test_rc_convergence.dir/codec/test_rc_convergence.cc.o.d"
  "test_rc_convergence"
  "test_rc_convergence.pdb"
  "test_rc_convergence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
