# Empty compiler generated dependencies file for test_rc_convergence.
# This may be replaced when dependencies are built.
