# Empty dependencies file for test_bdrate.
# This may be replaced when dependencies are built.
