file(REMOVE_RECURSE
  "CMakeFiles/test_bdrate.dir/metrics/test_bdrate.cc.o"
  "CMakeFiles/test_bdrate.dir/metrics/test_bdrate.cc.o.d"
  "test_bdrate"
  "test_bdrate.pdb"
  "test_bdrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
