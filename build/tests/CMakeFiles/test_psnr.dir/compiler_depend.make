# Empty compiler generated dependencies file for test_psnr.
# This may be replaced when dependencies are built.
