file(REMOVE_RECURSE
  "CMakeFiles/test_psnr.dir/metrics/test_psnr.cc.o"
  "CMakeFiles/test_psnr.dir/metrics/test_psnr.cc.o.d"
  "test_psnr"
  "test_psnr.pdb"
  "test_psnr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
