# Empty compiler generated dependencies file for test_preset.
# This may be replaced when dependencies are built.
