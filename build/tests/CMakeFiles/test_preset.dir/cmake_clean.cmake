file(REMOVE_RECURSE
  "CMakeFiles/test_preset.dir/codec/test_preset.cc.o"
  "CMakeFiles/test_preset.dir/codec/test_preset.cc.o.d"
  "test_preset"
  "test_preset.pdb"
  "test_preset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
