# Empty compiler generated dependencies file for test_ratecontrol.
# This may be replaced when dependencies are built.
