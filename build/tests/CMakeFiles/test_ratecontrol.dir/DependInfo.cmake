
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codec/test_ratecontrol.cc" "tests/CMakeFiles/test_ratecontrol.dir/codec/test_ratecontrol.cc.o" "gcc" "tests/CMakeFiles/test_ratecontrol.dir/codec/test_ratecontrol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vbench_video.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vbench_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/vbench_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/vbench_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/ngc/CMakeFiles/vbench_ngc.dir/DependInfo.cmake"
  "/root/repo/build/src/hwenc/CMakeFiles/vbench_hwenc.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/vbench_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vbench_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
