file(REMOVE_RECURSE
  "CMakeFiles/test_ratecontrol.dir/codec/test_ratecontrol.cc.o"
  "CMakeFiles/test_ratecontrol.dir/codec/test_ratecontrol.cc.o.d"
  "test_ratecontrol"
  "test_ratecontrol.pdb"
  "test_ratecontrol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ratecontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
