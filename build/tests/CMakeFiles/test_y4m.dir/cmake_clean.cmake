file(REMOVE_RECURSE
  "CMakeFiles/test_y4m.dir/video/test_y4m.cc.o"
  "CMakeFiles/test_y4m.dir/video/test_y4m.cc.o.d"
  "test_y4m"
  "test_y4m.pdb"
  "test_y4m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_y4m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
