# Empty dependencies file for test_y4m.
# This may be replaced when dependencies are built.
