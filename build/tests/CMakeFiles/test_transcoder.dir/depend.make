# Empty dependencies file for test_transcoder.
# This may be replaced when dependencies are built.
