file(REMOVE_RECURSE
  "CMakeFiles/test_transcoder.dir/core/test_transcoder.cc.o"
  "CMakeFiles/test_transcoder.dir/core/test_transcoder.cc.o.d"
  "test_transcoder"
  "test_transcoder.pdb"
  "test_transcoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transcoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
