# Empty dependencies file for bench_fig8_simd_isa.
# This may be replaced when dependencies are built.
