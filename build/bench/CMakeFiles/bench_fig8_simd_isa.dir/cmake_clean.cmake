file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_simd_isa.dir/bench_fig8_simd_isa.cc.o"
  "CMakeFiles/bench_fig8_simd_isa.dir/bench_fig8_simd_isa.cc.o.d"
  "bench_fig8_simd_isa"
  "bench_fig8_simd_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_simd_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
