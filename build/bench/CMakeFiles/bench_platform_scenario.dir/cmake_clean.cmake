file(REMOVE_RECURSE
  "CMakeFiles/bench_platform_scenario.dir/bench_platform_scenario.cc.o"
  "CMakeFiles/bench_platform_scenario.dir/bench_platform_scenario.cc.o.d"
  "bench_platform_scenario"
  "bench_platform_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_platform_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
