# Empty dependencies file for bench_platform_scenario.
# This may be replaced when dependencies are built.
