file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_growth.dir/bench_fig1_growth.cc.o"
  "CMakeFiles/bench_fig1_growth.dir/bench_fig1_growth.cc.o.d"
  "bench_fig1_growth"
  "bench_fig1_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
