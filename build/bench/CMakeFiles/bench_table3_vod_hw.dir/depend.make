# Empty dependencies file for bench_table3_vod_hw.
# This may be replaced when dependencies are built.
