# Empty dependencies file for bench_table4_live_hw.
# This may be replaced when dependencies are built.
