file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_live_hw.dir/bench_table4_live_hw.cc.o"
  "CMakeFiles/bench_table4_live_hw.dir/bench_table4_live_hw.cc.o.d"
  "bench_table4_live_hw"
  "bench_table4_live_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_live_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
