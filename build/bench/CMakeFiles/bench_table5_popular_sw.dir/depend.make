# Empty dependencies file for bench_table5_popular_sw.
# This may be replaced when dependencies are built.
