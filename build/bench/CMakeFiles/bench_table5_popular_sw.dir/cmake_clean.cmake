file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_popular_sw.dir/bench_table5_popular_sw.cc.o"
  "CMakeFiles/bench_table5_popular_sw.dir/bench_table5_popular_sw.cc.o.d"
  "bench_table5_popular_sw"
  "bench_table5_popular_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_popular_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
