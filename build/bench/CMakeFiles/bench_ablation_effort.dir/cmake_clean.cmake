file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_effort.dir/bench_ablation_effort.cc.o"
  "CMakeFiles/bench_ablation_effort.dir/bench_ablation_effort.cc.o.d"
  "bench_ablation_effort"
  "bench_ablation_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
