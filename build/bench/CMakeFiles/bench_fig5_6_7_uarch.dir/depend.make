# Empty dependencies file for bench_fig5_6_7_uarch.
# This may be replaced when dependencies are built.
