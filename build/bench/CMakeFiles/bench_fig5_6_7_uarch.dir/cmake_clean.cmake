file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_6_7_uarch.dir/bench_fig5_6_7_uarch.cc.o"
  "CMakeFiles/bench_fig5_6_7_uarch.dir/bench_fig5_6_7_uarch.cc.o.d"
  "bench_fig5_6_7_uarch"
  "bench_fig5_6_7_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_6_7_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
