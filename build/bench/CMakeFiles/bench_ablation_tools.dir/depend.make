# Empty dependencies file for bench_ablation_tools.
# This may be replaced when dependencies are built.
