file(REMOVE_RECURSE
  "CMakeFiles/uarch_profile.dir/uarch_profile.cpp.o"
  "CMakeFiles/uarch_profile.dir/uarch_profile.cpp.o.d"
  "uarch_profile"
  "uarch_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
