# Empty dependencies file for uarch_profile.
# This may be replaced when dependencies are built.
