# Empty compiler generated dependencies file for popular_pipeline.
# This may be replaced when dependencies are built.
