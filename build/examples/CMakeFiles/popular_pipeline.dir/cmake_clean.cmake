file(REMOVE_RECURSE
  "CMakeFiles/popular_pipeline.dir/popular_pipeline.cpp.o"
  "CMakeFiles/popular_pipeline.dir/popular_pipeline.cpp.o.d"
  "popular_pipeline"
  "popular_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popular_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
