# Empty compiler generated dependencies file for corpus_curation.
# This may be replaced when dependencies are built.
