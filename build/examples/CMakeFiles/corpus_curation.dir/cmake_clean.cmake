file(REMOVE_RECURSE
  "CMakeFiles/corpus_curation.dir/corpus_curation.cpp.o"
  "CMakeFiles/corpus_curation.dir/corpus_curation.cpp.o.d"
  "corpus_curation"
  "corpus_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
