#!/bin/sh
# Final artifact generation: rebuild, full tests, full bench sweep.
set -e
cd /root/repo
cmake -B build -G Ninja > /dev/null
cmake --build build 2>&1 | grep -E "error|FAILED" || true
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt | tail -3
for b in build/bench/*; do echo "===== $b ====="; $b; done > /root/repo/bench_output.txt 2>&1
echo FINALIZE_DONE
